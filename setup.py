"""Setuptools shim.

The offline environment has setuptools but no `wheel` package, so PEP-517
editable installs (which require bdist_wheel) fail.  Keeping a setup.py and
omitting [build-system] from pyproject.toml lets `pip install -e .` take the
legacy `setup.py develop` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cryogenic embedded-system design flow: 5-nm FinFET compact model "
        "to full RISC-V SoC at 10 K"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
