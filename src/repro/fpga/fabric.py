"""SRAM-based embedded FPGA fabric model (paper Section VII proposal).

"An SRAM-based FPGA fabric could be an interesting addition to [the] SoC.
The SRAM's leakage power is very low at 10 K, and FPGAs offer a large
degree of flexibility yet consume comparatively little power."

The model prices a K-LUT fabric from the same device physics as the rest
of the flow:

* **configuration storage** -- truth-table + routing bits per LUT, held in
  the same ultra-low-Vth SRAM bitcells as the caches, so its leakage
  collapses at 10 K exactly like the Fig.-6 arrays;
* **LUT timing** -- a K-LUT reads as a 2^K:1 mux tree; its delay is K
  MUX2 stages from the characterized library plus a routing hop, and it
  scales across temperature with the library corner;
* **dynamic energy** -- per-LUT switching energy from the mux-tree's cell
  energies plus routing wire capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.mapping import LUTMapping
from repro.power.sram import SRAMPowerModel

__all__ = ["FPGAFabric", "AcceleratorReport"]

#: Configuration bits per LUT: 2^k truth bits plus routing mux state.
ROUTING_BITS_PER_LUT = 120

#: Routing wire capacitance per LUT-to-LUT hop (F); fabric routing is
#: long programmable wire, far heavier than ASIC nets.
ROUTING_CAP = 10.0e-15

#: Programmable-interconnect hops per LUT level.
ROUTING_HOPS = 2

#: Flop setup+clk2q overhead per pipeline stage (s).
SEQUENCING_OVERHEAD = 50e-12

#: Fabric clock ceiling (Hz): clock distribution and configuration-mux
#: margins cap embedded fabrics well below the raw logic speed.
MAX_CLOCK_HZ = 2.0e9


@dataclass(frozen=True)
class AcceleratorReport:
    """Cost/performance of one mapped accelerator on the fabric."""

    n_luts: int
    depth: int
    frequency_hz: float
    config_bits: int
    leakage_w: float
    dynamic_w: float
    items_per_second: float
    """Throughput with one result per cycle (fully pipelined)."""

    @property
    def total_power_w(self) -> float:
        return self.leakage_w + self.dynamic_w

    def time_for(self, n_items: int) -> float:
        """Latency to process ``n_items`` (pipelined, s)."""
        fill = self.depth / self.frequency_hz
        return fill + n_items / self.items_per_second


class FPGAFabric:
    """A fabric instance at one temperature corner.

    ``library`` supplies the MUX2 timing/energy at the corner;
    ``models`` supplies the SRAM bitcell physics for the config memory.
    """

    def __init__(self, library, models, lut_inputs: int = 4):
        if not 2 <= lut_inputs <= 6:
            raise ValueError("lut_inputs must be between 2 and 6")
        self.library = library
        self.models = models
        self.lut_inputs = lut_inputs
        self._sram = SRAMPowerModel(models, library.temperature_k,
                                    vdd=library.vdd)
        self._mux = library["MUX2_X1"]

    # ------------------------------------------------------------------ #
    @property
    def bits_per_lut(self) -> int:
        return (1 << self.lut_inputs) + ROUTING_BITS_PER_LUT

    def lut_delay(self) -> float:
        """One LUT + routing hop delay at this corner (s)."""
        arc = self._mux.arc_from("S")
        mux_delay = arc.worst_delay(16e-12, 2e-15)
        return self.lut_inputs * mux_delay + ROUTING_HOPS * self._routing_delay()

    def _routing_delay(self) -> float:
        # A routing hop: a MUX2 driving the routing wire capacitance.
        arc = self._mux.arc_from("A")
        return arc.worst_delay(16e-12, ROUTING_CAP)

    def max_frequency(self, depth: int) -> float:
        """Clock with one pipeline register per ``depth`` LUT levels."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        raw = 1.0 / (depth * self.lut_delay() + SEQUENCING_OVERHEAD)
        return min(raw, MAX_CLOCK_HZ)

    # ------------------------------------------------------------------ #
    def config_leakage(self, n_luts: int) -> float:
        """Configuration-SRAM hold leakage (W)."""
        return self._sram.total_leakage(n_luts * self.bits_per_lut)

    def lut_dynamic_energy(self) -> float:
        """Switching energy of one active LUT evaluation (J)."""
        mux_energy = self._mux.switching_energy
        wire = ROUTING_CAP * self.library.vdd**2
        return (1 << (self.lut_inputs - 1)) / 4 * mux_energy + wire

    # ------------------------------------------------------------------ #
    def deploy(
        self,
        mapping: LUTMapping,
        activity: float = 0.25,
        pipeline_stages: int | None = None,
    ) -> AcceleratorReport:
        """Price a mapped design on the fabric.

        ``pipeline_stages`` registers are inserted evenly; ``None``
        pipelines every LUT level (max frequency, the "high-power
        low-latency" configuration of the paper's reconfiguration story;
        pass 1 for the combinational "low-power high-latency" one).
        """
        stages = mapping.depth if pipeline_stages is None else pipeline_stages
        stages = max(min(stages, mapping.depth), 1)
        levels_per_stage = -(-mapping.depth // stages)  # ceil
        frequency = self.max_frequency(levels_per_stage)
        leakage = self.config_leakage(mapping.n_luts)
        dynamic = (
            mapping.n_luts * activity * self.lut_dynamic_energy() * frequency
        )
        return AcceleratorReport(
            n_luts=mapping.n_luts,
            depth=mapping.depth,
            frequency_hz=frequency,
            config_bits=mapping.n_luts * self.bits_per_lut,
            leakage_w=leakage,
            dynamic_w=dynamic,
            items_per_second=frequency,
        )
