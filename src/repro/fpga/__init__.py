"""Embedded FPGA fabric: the paper's Section-VII extension, built out.

An SRAM-configured K-LUT fabric priced from the same device physics as
the rest of the flow, a depth-optimal LUT mapper, and an HDC-classifier
accelerator showing how reconfigurable hardware moves the Fig.-7
bottleneck.
"""

from repro.fpga.accel import build_hdc_accelerator, build_popcount_network
from repro.fpga.fabric import AcceleratorReport, FPGAFabric
from repro.fpga.mapping import LUT, LUTMapping, lut_map

__all__ = [
    "AcceleratorReport",
    "FPGAFabric",
    "LUT",
    "LUTMapping",
    "build_hdc_accelerator",
    "build_popcount_network",
    "lut_map",
]
