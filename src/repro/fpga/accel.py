"""Classifier accelerators as boolean networks for the FPGA fabric.

The HDC classifier is the natural fabric candidate ("the FPGA fabric can
be reconfigured to select between a high-power low-latency or a low-power
high-latency classification algorithm"): its datapath is pure bit logic --
XOR binding, popcount, compare -- exactly what the software profile showed
to be popcount-bound on the CPU.

:func:`build_hdc_accelerator` constructs the combinational network

    label = [ popcount(m ^ c1) < popcount(m ^ c0) ]

over a ``dimension``-bit measurement hypervector ``m`` and the two class
prototypes, as an AIG ready for :func:`repro.fpga.mapping.lut_map`.
"""

from __future__ import annotations

from repro.synth.aig import AIG

__all__ = ["build_hdc_accelerator", "build_popcount_network"]


def _ripple_add(aig: AIG, a: list[int], b: list[int]) -> list[int]:
    """Add two little-endian literal vectors; result is one bit wider."""
    n = max(len(a), len(b))
    a = a + [aig.const0] * (n - len(a))
    b = b + [aig.const0] * (n - len(b))
    out: list[int] = []
    carry = aig.const0
    for x, y in zip(a, b):
        out.append(aig.xor_(aig.xor_(x, y), carry))
        carry = aig.or_(
            aig.and_(x, y),
            aig.and_(carry, aig.or_(x, y)),
        )
    out.append(carry)
    return out


def _less_than(aig: AIG, a: list[int], b: list[int]) -> int:
    """Literal for (a < b), unsigned little-endian vectors."""
    n = max(len(a), len(b))
    a = a + [aig.const0] * (n - len(a))
    b = b + [aig.const0] * (n - len(b))
    lt = aig.const0
    for x, y in zip(a, b):  # LSB to MSB; later bits dominate
        eq = aig.negate(aig.xor_(x, y))
        lt = aig.or_(aig.and_(aig.negate(x), y), aig.and_(eq, lt))
    return lt


def build_popcount_network(aig: AIG, bits: list[int]) -> list[int]:
    """Adder-tree population count of a list of literals.

    Returns the count as a little-endian literal vector -- the hardware
    the RISC-V ISA lacks, in ~2*n AND-gates of log-depth tree.
    """
    if not bits:
        return [aig.const0]
    numbers: list[list[int]] = [[b] for b in bits]
    while len(numbers) > 1:
        nxt = []
        for i in range(0, len(numbers) - 1, 2):
            nxt.append(_ripple_add(aig, numbers[i], numbers[i + 1]))
        if len(numbers) % 2:
            nxt.append(numbers[-1])
        numbers = nxt
    return numbers[0]


def build_hdc_accelerator(dimension: int = 128) -> AIG:
    """The one-cycle HDC distance comparator.

    Inputs: ``m<i>`` (encoded measurement hypervector), ``c0<i>`` and
    ``c1<i>`` (per-qubit class prototypes, streamed from SRAM each cycle).
    Output: ``label`` = 1 when the measurement is closer to class 1.
    """
    if dimension < 2:
        raise ValueError("dimension must be >= 2")
    aig = AIG()
    m = [aig.pi(f"m{i}") for i in range(dimension)]
    c0 = [aig.pi(f"c0_{i}") for i in range(dimension)]
    c1 = [aig.pi(f"c1_{i}") for i in range(dimension)]
    diff0 = [aig.xor_(a, b) for a, b in zip(m, c0)]
    diff1 = [aig.xor_(a, b) for a, b in zip(m, c1)]
    d0 = build_popcount_network(aig, diff0)
    d1 = build_popcount_network(aig, diff1)
    aig.po("label", _less_than(aig, d1, d0))
    return aig
