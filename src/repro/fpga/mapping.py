"""K-LUT technology mapping for the embedded FPGA fabric.

Reuses the cut-enumeration machinery of the ASIC mapper
(:mod:`repro.synth.techmap`) but covers the AIG with generic K-input
lookup tables instead of library cells, minimizing depth first (the
fabric's critical path is depth * LUT delay) and LUT count second.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.aig import AIG
from repro.synth.techmap import _cut_truth, _enumerate_cuts

__all__ = ["LUT", "LUTMapping", "lut_map"]


@dataclass(frozen=True)
class LUT:
    """One mapped lookup table."""

    output_node: int
    leaves: tuple[int, ...]  # AIG node ids (PIs or other LUT outputs)
    truth: int

    @property
    def n_inputs(self) -> int:
        return len(self.leaves)


@dataclass
class LUTMapping:
    """A complete K-LUT cover of an AIG."""

    k: int
    luts: list[LUT] = field(default_factory=list)
    output_phase: dict[str, tuple[int, bool]] = field(default_factory=dict)
    """PO name -> (node, inverted) -- inversions are absorbed for free in
    the driving LUT's truth table at realization time; tracked here for
    evaluation."""

    depth: int = 0

    @property
    def n_luts(self) -> int:
        return len(self.luts)

    def evaluate(self, aig: AIG, assignment: dict[str, bool]) -> dict[str, bool]:
        """Evaluate the mapped network (for equivalence tests)."""
        values: dict[int, bool] = {0: False}
        for name, node in aig.inputs.items():
            values[node] = bool(assignment[name])
        for lut in self.luts:  # topological by construction
            idx = 0
            for pos, leaf in enumerate(lut.leaves):
                if values[leaf]:
                    idx |= 1 << pos
            values[lut.output_node] = bool((lut.truth >> idx) & 1)
        out = {}
        for name, (node, inverted) in self.output_phase.items():
            out[name] = values[node] ^ inverted
        return out


def lut_map(aig: AIG, k: int = 4) -> LUTMapping:
    """Depth-optimal K-LUT mapping by dynamic programming over cuts."""
    if not 2 <= k <= 6:
        raise ValueError("k must be between 2 and 6")
    cuts = _enumerate_cuts(aig)

    depth: dict[int, int] = {0: 0}
    for node in aig.inputs.values():
        depth[node] = 0
    best_cut: dict[int, tuple[int, ...]] = {}

    for node in aig.topological_nodes():
        best = None
        for cut in cuts[node]:
            if cut == (node,) or len(cut) > k:
                continue
            d = 1 + max(depth.get(leaf, 0) for leaf in cut)
            cost = (d, len(cut))
            if best is None or cost < best[0]:
                best = (cost, cut)
        if best is None:
            # The trivial fanin cut always fits (2 <= k).
            f0, f1 = aig.fanins(node)
            cut = tuple(sorted({aig.node_of(f0), aig.node_of(f1)}))
            d = 1 + max(depth.get(leaf, 0) for leaf in cut)
            best = ((d, len(cut)), cut)
        depth[node] = best[0][0]
        best_cut[node] = best[1]

    # Realize only the LUTs reachable from the outputs.
    mapping = LUTMapping(k=k)
    realized: set[int] = set()

    def realize(node: int) -> None:
        if node in realized or not aig.is_and(node):
            return
        cut = best_cut[node]
        for leaf in cut:
            realize(leaf)
        mapping.luts.append(
            LUT(output_node=node, leaves=cut,
                truth=_cut_truth(aig, node, cut))
        )
        realized.add(node)

    max_depth = 0
    for name, lit in aig.outputs.items():
        node = aig.node_of(lit)
        realize(node)
        mapping.output_phase[name] = (node, bool(aig.phase_of(lit)))
        max_depth = max(max_depth, depth.get(node, 0))
    mapping.depth = max_depth
    return mapping
