"""Text reports: the paper's tables and figure data as printable rows.

Every experiment bench prints through these helpers so the regenerated
artifacts read like the paper's own tables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "histogram_rows"]


def format_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Monospace table with a title line."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def histogram_rows(
    values: np.ndarray,
    bins: np.ndarray | int = 20,
    label: str = "",
    bar_width: int = 40,
) -> str:
    """ASCII histogram (the Fig.-5 renderer)."""
    counts, edges = np.histogram(values, bins=bins)
    peak = max(counts.max(), 1)
    lines = [label] if label else []
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(bar_width * count / peak))
        lines.append(f"{lo:10.3e} - {hi:10.3e} |{bar} {count}")
    return "\n".join(lines)
