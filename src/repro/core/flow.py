"""CryoStudy: the paper's full stack as one orchestrated flow (Fig. 1).

Chains every layer exactly as the paper's outline does::

    measurements -> compact-model calibration -> cell libraries (300 K,
    10 K) -> SoC synthesis + placement -> timing signoff (Table 1) ->
    workload simulation (Table 2) -> power signoff (Fig. 6) ->
    qubit-scaling feasibility (Fig. 7)

Each stage is computed lazily and cached, so an experiment that needs
only Table 1 does not pay for the ISS runs.  ``fast=True`` skips the
calibration stage and characterizes against the golden device directly
(useful for quick examples; the default runs the honest flow where the
libraries are built from *calibrated* -- not oracle -- parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.cells import (
    CharacterizationConfig,
    CellLibrary,
    TechModels,
    build_library,
)
from repro.classify import HDCEncoder, get_classifier
from repro.core.feasibility import (
    COOLING_BUDGET_10K,
    ScalingPoint,
    ScalingStudy,
)
from repro.device import (
    Calibrator,
    FinFET,
    MeasurementCampaign,
    default_nfet,
    default_pfet,
    golden_nfet,
    golden_pfet,
)
from repro.power import UncoreModel, activity_from_profile, analyze_power
from repro.quantum import falcon_backend, generate_dataset
from repro.soc import RocketSoC, cycles_per_classification
from repro.soc.programs import pack_hdc_tables
from repro.sta import analyze as sta_analyze
from repro.synth import place, upsize_for_load
from repro.synth.opt import buffer_high_fanout
from repro.synth.soc_builder import SoCConfig, build_soc

__all__ = ["CryoStudy", "StudyConfig", "flow_stage"]

T_ROOM = 300.0
T_CRYO = 10.0


class flow_stage:  # noqa: N801 - decorator, lowercase like cached_property
    """``cached_property`` with per-stage telemetry.

    Semantically identical to :func:`functools.cached_property` (compute
    once per instance, cache forever), but implemented as a *data*
    descriptor so every attribute access runs ``__get__`` -- which is
    what lets it count cache hits as well as misses.  Each stage access
    is recorded two ways:

    * always-on: the owning instance's ``stage_cache_stats()`` ledger;
    * when telemetry is enabled: a ``flow.<stage>`` span around the
      compute plus ``flow.cache_hit/<stage>`` counters, so a traced run
      shows exactly which stages were built, in what order, and which
      were served from cache.
    """

    def __init__(self, func):
        self.func = func
        self.__doc__ = func.__doc__
        self.name = func.__name__

    def __set_name__(self, owner, name):
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        cache = obj.__dict__.setdefault("_stage_cache", {})
        events = obj.__dict__.setdefault("_stage_events", {})
        ev = events.setdefault(self.name, [0, 0])  # [hits, misses]
        if self.name in cache:
            ev[0] += 1
            telemetry.count(f"flow.cache_hit.{self.name}")
            return cache[self.name]
        ev[1] += 1
        telemetry.count(f"flow.cache_miss.{self.name}")
        with telemetry.span(f"flow.{self.name}"):
            value = self.func(obj)
        cache[self.name] = value
        return value

    def __set__(self, obj, value):
        # Keep cached_property's injectability (tests pre-seed stages).
        obj.__dict__.setdefault("_stage_cache", {})[self.name] = value


@dataclass(frozen=True, kw_only=True)
class StudyConfig:
    """Knobs of the end-to-end study."""

    seed: int = 2023
    fast: bool = False
    """Skip the calibration stage and characterize against the golden
    device parameters directly (the honest flow calibrates first)."""

    soc: SoCConfig = field(default_factory=SoCConfig)
    shots: int = 40
    """Shots per qubit for workload simulation."""

    cooling_budget_w: float = COOLING_BUDGET_10K

    jobs: int | None = None
    """Worker count for the flow's parallel fan-outs (library builds);
    ``None`` defers to ``REPRO_JOBS`` / serial."""

    def __post_init__(self) -> None:
        from repro.errors import ConfigError

        if self.shots < 1:
            raise ConfigError(f"shots must be >= 1 (got {self.shots!r})",
                              field="shots")
        if not np.isfinite(self.cooling_budget_w) \
                or self.cooling_budget_w <= 0:
            raise ConfigError(
                f"cooling_budget_w must be finite and > 0 "
                f"(got {self.cooling_budget_w!r})", field="cooling_budget_w")

    # -- provenance / cache identity ---------------------------------- #
    def to_dict(self) -> dict:
        """Plain-data view; round-trips through :meth:`from_dict`."""
        from repro.runtime.digest import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StudyConfig":
        from repro.runtime.digest import config_from_dict

        return config_from_dict(cls, data, nested={"soc": SoCConfig})

    def config_digest(self) -> str:
        """Stable content hash: the canonical provenance of a run.

        ``jobs`` is excluded: it is an execution knob, and parallel
        runs are bit-identical to serial ones by contract.
        """
        from repro.runtime.digest import stable_digest

        data = self.to_dict()
        data.pop("jobs")
        return stable_digest({"__config__": type(self).__qualname__, **data})


class CryoStudy:
    """Lazily-evaluated full-stack study; see module docstring."""

    def __init__(self, config: StudyConfig | None = None):
        self.config = config or StudyConfig()

    def stage_cache_stats(self) -> dict[str, dict[str, int]]:
        """Per-stage cache accounting: ``{stage: {hits, misses}}``.

        Always on (no telemetry needed); a stage that was never touched
        does not appear.
        """
        events = self.__dict__.get("_stage_events", {})
        return {
            name: {"hits": ev[0], "misses": ev[1]}
            for name, ev in events.items()
        }

    # ------------------------------------------------------------------ #
    # Stage 1-2: measurements and compact-model calibration
    # ------------------------------------------------------------------ #
    @flow_stage
    def iv_datasets(self):
        """Synthetic probe-station campaign (Section III inputs)."""
        return MeasurementCampaign(seed=self.config.seed).run(n_points=61)

    @flow_stage
    def calibration(self):
        """Staged calibration of both polarities (Section III-A)."""
        return {
            "n": Calibrator(self.iv_datasets["n"], default_nfet()).calibrate(),
            "p": Calibrator(self.iv_datasets["p"], default_pfet()).calibrate(),
        }

    @flow_stage
    def models(self) -> TechModels:
        """The device models the libraries characterize against."""
        if self.config.fast:
            return TechModels(golden_nfet(), golden_pfet())
        cal = self.calibration
        return TechModels(cal["n"].params, cal["p"].params)

    # ------------------------------------------------------------------ #
    # Stage 3: standard-cell libraries (Section IV)
    # ------------------------------------------------------------------ #
    @flow_stage
    def libraries(self) -> dict[float, CellLibrary]:
        # The SoC netlist needs the full catalog's drive variants; fast
        # mode saves time by skipping calibration, not the catalog.
        catalog = None
        return {
            t: build_library(
                self.models,
                CharacterizationConfig(temperature_k=t),
                catalog=catalog,
                jobs=self.config.jobs,
            )
            for t in (T_ROOM, T_CRYO)
        }

    @flow_stage
    def coverage_reports(self):
        """Per-corner characterization coverage (reliability surfacing).

        The resilient library build quarantines irrecoverable cells
        instead of aborting the flow; downstream stages (and operators)
        read the damage here.  ``flow_health()`` aggregates the same
        information into one verdict.
        """
        return {t: lib.coverage for t, lib in self.libraries.items()}

    def flow_health(self) -> dict:
        """One-line reliability verdict over every built corner."""
        reports = {
            t: r for t, r in self.coverage_reports.items() if r is not None
        }
        return {
            "complete": all(r.complete for r in reports.values()),
            "coverage": {t: r.coverage for t, r in reports.items()},
            "quarantined": {
                t: sorted(r.quarantined) for t, r in reports.items()
                if r.quarantined
            },
        }

    # ------------------------------------------------------------------ #
    # Stage 4: SoC synthesis, placement, timing (Section V-A, Table 1)
    # ------------------------------------------------------------------ #
    @flow_stage
    def soc_model(self):
        """Synthesized + optimized + placed SoC (built at 300 K, like the
        paper's baseline flow)."""
        lib = self.libraries[T_ROOM]
        model = build_soc(lib, self.config.soc)
        buffer_high_fanout(model.netlist, lib)
        upsize_for_load(model.netlist, lib)
        return model

    @flow_stage
    def placement(self):
        return place(self.soc_model.netlist, self.libraries[T_ROOM])

    def macro_delay_scale(self, temperature_k: float) -> float:
        """SRAM macro timing scale: transistors inside macros track the
        same effective-current shift as the logic."""
        n = FinFET(self.models.nfet)
        p = FinFET(self.models.pfet)
        base = n.effective_current(T_ROOM) + p.effective_current(T_ROOM)
        now = n.effective_current(temperature_k) + p.effective_current(
            temperature_k
        )
        return base / now

    @flow_stage
    def timing(self):
        """Table 1: STA at both corners on the same physical design."""
        return {
            t: sta_analyze(
                self.soc_model.netlist,
                self.libraries[t],
                self.placement,
                macro_delay_scale=self.macro_delay_scale(t),
            )
            for t in (T_ROOM, T_CRYO)
        }

    def frequency(self, temperature_k: float) -> float:
        """Achievable clock at a corner (Hz)."""
        return self.timing[temperature_k].fmax_hz

    # ------------------------------------------------------------------ #
    # Stage 5: workloads on the ISS (Section V-B, Table 2)
    # ------------------------------------------------------------------ #
    def classification_setup(self, n_qubits: int):
        """Backend + calibrated classifiers for a given system size."""
        backend = falcon_backend(n_qubits=n_qubits, seed=self.config.seed)
        dataset = generate_dataset(
            backend, n_shots=self.config.shots,
            n_calibration_shots=256, seed=self.config.seed + 1,
        )
        encoder = HDCEncoder.random(seed=self.config.seed)
        knn = get_classifier("knn").from_centers(dataset.calibration_centers)
        hdc = get_classifier("hdc").from_centers(
            dataset.calibration_centers, encoder=encoder)
        return backend, dataset, knn, hdc

    def knn_cycles(self, n_qubits: int, with_sqrt: bool = False):
        """Run the kNN kernel; returns (cycles/measurement, result)."""
        _, dataset, knn, _ = self.classification_setup(n_qubits)
        _, _, pts = dataset.interleaved()
        result = RocketSoC().run_knn(
            dataset.calibration_centers, pts, n_qubits, with_sqrt=with_sqrt
        )
        return cycles_per_classification(result, len(pts)), result

    def hdc_cycles(
        self,
        n_qubits: int,
        hardware_popcount: bool = False,
        precomputed_xor: bool = True,
    ):
        """Run the HDC kernel; returns (cycles/measurement, result)."""
        _, dataset, _, hdc = self.classification_setup(n_qubits)
        _, _, pts = dataset.interleaved()
        if precomputed_xor:
            tables = pack_hdc_tables(
                hdc.encoder.y_items,
                xc0=hdc.xc_tables[:, 0],
                xc1=hdc.xc_tables[:, 1],
            )
        else:
            tables = pack_hdc_tables(
                hdc.encoder.y_items,
                x_items=hdc.encoder.x_items,
                c0=hdc.prototypes[:, 0],
                c1=hdc.prototypes[:, 1],
            )
        result = RocketSoC(popcount_extension=hardware_popcount).run_hdc(
            tables, pts, n_qubits,
            hardware_popcount=hardware_popcount,
            precomputed_xor=precomputed_xor,
        )
        return cycles_per_classification(result, len(pts)), result

    @flow_stage
    def table2(self) -> dict[str, dict[int, float]]:
        """Average cycles per classification (paper Table 2)."""
        out: dict[str, dict[int, float]] = {"knn": {}, "hdc": {}}
        for nq in (20, 400):
            out["knn"][nq], _ = self.knn_cycles(nq)
            out["hdc"][nq], _ = self.hdc_cycles(nq)
        return out

    # ------------------------------------------------------------------ #
    # Stage 6: power signoff (Fig. 6)
    # ------------------------------------------------------------------ #
    def power_report(self, temperature_k: float, workload: str = "knn"):
        """Average SoC power for a workload at one corner."""
        if workload == "knn":
            _, result = self.knn_cycles(100)
        elif workload == "hdc":
            _, result = self.hdc_cycles(100)
        elif workload == "dhrystone":
            result = RocketSoC().run_dhrystone(iterations=100)
        else:
            raise ValueError(f"unknown workload {workload!r}")
        activity = activity_from_profile(workload, result.stats.profile())
        return analyze_power(
            self.soc_model.netlist,
            self.libraries[temperature_k],
            activity,
            self.frequency(temperature_k),
            self.models,
            self.placement,
            uncore=UncoreModel(),
        )

    @flow_stage
    def fig6(self):
        """Fig. 6: kNN power at both corners + feasibility verdicts."""
        reports = {t: self.power_report(t, "knn") for t in (T_ROOM, T_CRYO)}
        return {
            "reports": reports,
            "feasible": {
                t: r.fits_budget(self.config.cooling_budget_w)
                for t, r in reports.items()
            },
        }

    # ------------------------------------------------------------------ #
    # Artifact export (the Fig.-4 outputs as files)
    # ------------------------------------------------------------------ #
    def export_artifacts(self, directory) -> dict[str, str]:
        """Write the flow's file artifacts: modelcards, Liberty libraries
        and a signoff summary.  Returns {artifact name: path}.

        These are the tangible outputs of the paper's Fig. 4 ("outputs are
        highlighted in red (300 K) and blue (10 K)"): one calibrated
        modelcard per polarity and one Liberty library per corner.
        """
        from pathlib import Path

        from repro.cells import write_liberty
        from repro.device import modelcard
        from repro.experiments import fig6_power, table1_timing

        out = Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, str] = {}

        for pol, params in (("n", self.models.nfet), ("p", self.models.pfet)):
            path = out / f"{pol}fet_calibrated.mdl"
            modelcard.save(params, path, name=f"{pol}fet_cal")
            paths[f"modelcard_{pol}"] = str(path)

        for t, library in self.libraries.items():
            path = out / f"repro5nm_{t:g}K.lib"
            write_liberty(library, path)
            paths[f"liberty_{t:g}K"] = str(path)

        from repro.synth import write_verilog

        netlist_path = out / "rocket_soc.v"
        write_verilog(self.soc_model.netlist, netlist_path,
                      module_name="rocket_soc")
        paths["netlist"] = str(netlist_path)

        summary = out / "signoff_summary.txt"
        summary.write_text(
            table1_timing.report(table1_timing.run(self))
            + "\n\n"
            + fig6_power.report(fig6_power.run(self))
            + "\n"
        )
        paths["summary"] = str(summary)
        return paths

    # ------------------------------------------------------------------ #
    # Stage 7: scaling study (Fig. 7, Section VII)
    # ------------------------------------------------------------------ #
    def scaling_study(
        self,
        method: str = "knn",
        qubit_counts: tuple[int, ...] = (20, 100, 200, 400, 800, 1200),
        temperature_k: float = T_CRYO,
    ) -> ScalingStudy:
        """Classification time vs. qubit count against the 110 us budget."""
        frequency = self.frequency(temperature_k)
        budget = falcon_backend(n_qubits=1).time_budget()
        study = ScalingStudy(method=method)
        for nq in qubit_counts:
            if method == "knn":
                cpm, _ = self.knn_cycles(nq)
            elif method == "hdc":
                cpm, _ = self.hdc_cycles(nq)
            else:
                raise ValueError(f"unknown method {method!r}")
            study.points.append(
                ScalingPoint(
                    n_qubits=nq,
                    cycles_per_measurement=cpm,
                    frequency_hz=frequency,
                    time_budget_s=budget,
                )
            )
        return study
