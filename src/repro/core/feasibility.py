"""Feasibility analysis: time and power budgets (Figs. 6-7, Section VII).

Two budgets govern the cryogenic SoC:

* **cooling**: 100 mW at 10 K (10 mW at 0.1 K) -- paper ref. [5];
* **time**: all qubits must be classified within the decoherence time
  (~110 us on the Falcon), or the classifier stalls the quantum computer
  (Fig. 2(c)).

This module turns per-measurement cycle counts into classification times,
finds the qubit count at which the SoC becomes the bottleneck, and builds
the Fig. 7 sweep series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "COOLING_BUDGET_10K",
    "COOLING_BUDGET_100MK",
    "ScalingPoint",
    "ScalingStudy",
    "classification_time",
    "bottleneck_qubits",
]

COOLING_BUDGET_10K = 0.100
"""Cooling capacity at 10 K in W (paper ref. [5])."""

COOLING_BUDGET_100MK = 0.010
"""Cooling capacity at 0.1 K in W."""


def classification_time(
    n_qubits: int, cycles_per_measurement: float, frequency_hz: float
) -> float:
    """Time to classify one measurement per qubit (s)."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return n_qubits * cycles_per_measurement / frequency_hz


def bottleneck_qubits(
    cycles_per_measurement: float,
    frequency_hz: float,
    time_budget_s: float,
) -> int:
    """Largest qubit count classifiable within the time budget."""
    # The epsilon keeps exact integer ratios from truncating down by one.
    return int(time_budget_s * frequency_hz / cycles_per_measurement + 1e-9)


@dataclass(frozen=True)
class ScalingPoint:
    """One Fig.-7 sample: a qubit count and its measured cost."""

    n_qubits: int
    cycles_per_measurement: float
    frequency_hz: float
    time_budget_s: float

    @property
    def classification_time_s(self) -> float:
        return classification_time(
            self.n_qubits, self.cycles_per_measurement, self.frequency_hz
        )

    @property
    def budget_fraction(self) -> float:
        """Share of the decoherence budget consumed (1.0 = bottleneck)."""
        return self.classification_time_s / self.time_budget_s

    @property
    def feasible(self) -> bool:
        return self.budget_fraction <= 1.0


@dataclass
class ScalingStudy:
    """A full Fig.-7 series for one classification method."""

    method: str
    points: list[ScalingPoint] = field(default_factory=list)

    def qubit_counts(self) -> np.ndarray:
        return np.array([p.n_qubits for p in self.points])

    def times_us(self) -> np.ndarray:
        return np.array([p.classification_time_s * 1e6 for p in self.points])

    def crossover_qubits(self) -> int | None:
        """Interpolated qubit count where the budget is exhausted.

        ``None`` when every sampled point is still feasible.
        """
        fractions = np.array([p.budget_fraction for p in self.points])
        counts = self.qubit_counts().astype(float)
        above = np.nonzero(fractions >= 1.0)[0]
        if len(above) == 0:
            # Extrapolate from the last point's per-qubit cost.
            last = self.points[-1]
            return bottleneck_qubits(
                last.cycles_per_measurement,
                last.frequency_hz,
                last.time_budget_s,
            )
        k = above[0]
        if k == 0:
            return int(counts[0])
        # Linear interpolation between the straddling samples.
        f0, f1 = fractions[k - 1], fractions[k]
        n0, n1 = counts[k - 1], counts[k]
        return int(n0 + (1.0 - f0) * (n1 - n0) / (f1 - f0))
