"""Core orchestration: the end-to-end cryogenic plausibility study."""

from repro.core.feasibility import (
    COOLING_BUDGET_10K,
    COOLING_BUDGET_100MK,
    ScalingPoint,
    ScalingStudy,
    bottleneck_qubits,
    classification_time,
)
from repro.core.flow import CryoStudy, StudyConfig
from repro.core.report import format_table, histogram_rows

__all__ = [
    "COOLING_BUDGET_100MK",
    "COOLING_BUDGET_10K",
    "CryoStudy",
    "ScalingPoint",
    "ScalingStudy",
    "StudyConfig",
    "bottleneck_qubits",
    "classification_time",
    "format_table",
    "histogram_rows",
]
