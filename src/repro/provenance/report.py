"""Regression reporting over the run ledger.

Two consumers, one data model:

* ``repro report`` -- for every experiment with ledger history, the
  *latest-vs-paper* fidelity table (replayed from the stored
  :class:`~repro.provenance.fidelity.FidelityReport`, no re-running)
  and the *latest-vs-previous* drift table (per-metric deltas plus
  wall-time regressions), rendered as text, ``--markdown``, or
  ``--json``;
* ``repro compare A B`` -- the same per-metric delta machinery between
  two explicit runs (id or unambiguous prefix), including ingested
  benchmark records, so "did commit X make fig6 slower or less
  faithful" is one command.

Everything here is pure: ledger in, plain-dict report out, string
renderings on top.  :func:`build_report` is the single source of truth;
the renderers never recompute.
"""

from __future__ import annotations

import json

from repro.provenance.fidelity import FAIL, PASS, WARN, worst
from repro.provenance.records import RunRecord
from repro.provenance.store import RunLedger

__all__ = [
    "build_report",
    "compare_records",
    "render_compare",
    "render_report",
]

#: Latest-vs-previous wall time growing by more than this fraction is
#: flagged as a performance regression (and the same threshold drives
#: ``repro compare``'s wall-time column).
WALL_REGRESSION_THRESHOLD = 0.25


def _pct(new: float, old: float) -> float | None:
    """Relative change new-vs-old in percent (None when old is ~0)."""
    if abs(old) < 1e-12:
        return None
    return (new - old) / abs(old) * 100.0


def _metric_drift(latest: RunRecord, previous: RunRecord) -> list[dict]:
    rows = []
    for name, value in latest.metrics.items():
        if name not in previous.metrics:
            continue
        prev = previous.metrics[name]
        rows.append({
            "metric": name,
            "previous": prev,
            "latest": value,
            "delta": value - prev,
            "pct": _pct(value, prev),
        })
    return rows


def _wall_drift(latest: RunRecord, previous: RunRecord,
                threshold: float) -> dict:
    pct = _pct(latest.wall_s, previous.wall_s)
    return {
        "previous_s": previous.wall_s,
        "latest_s": latest.wall_s,
        "pct": pct,
        "regression": pct is not None and pct > threshold * 100.0,
    }


# ---------------------------------------------------------------------- #
# The report data model
# ---------------------------------------------------------------------- #
def build_report(ledger: RunLedger,
                 wall_threshold: float = WALL_REGRESSION_THRESHOLD) -> dict:
    """Everything ``repro report`` shows, as one plain dict."""
    # One pass over the ledger file (so a corrupt line warns once),
    # grouped in memory by experiment.
    by_experiment: dict[str, list[RunRecord]] = {}
    bench_records: list[RunRecord] = []
    serve_records: list[RunRecord] = []
    for record in ledger.records():
        if record.kind == "bench" and record.experiment == "bench_summary":
            bench_records.append(record)
        elif record.kind == "serve":
            serve_records.append(record)
        elif record.kind == "experiment":
            by_experiment.setdefault(record.experiment, []).append(record)

    experiments = []
    verdicts = []
    for name, history in by_experiment.items():
        latest = history[-1]
        previous = history[-2] if len(history) > 1 else None
        entry = {
            "experiment": name,
            "run_id": latest.run_id,
            "start_ts": latest.start_ts,
            "wall_s": latest.wall_s,
            "config_digest": latest.config_digest,
            "verdict": latest.verdict,
            "checks": (latest.fidelity or {}).get("checks", []),
            "resources": dict(latest.resources),
            "previous": None,
        }
        if latest.verdict:
            verdicts.append(latest.verdict)
        if previous is not None:
            entry["previous"] = {
                "run_id": previous.run_id,
                "start_ts": previous.start_ts,
                "metrics": _metric_drift(latest, previous),
                "wall": _wall_drift(latest, previous, wall_threshold),
            }
        experiments.append(entry)

    bench = None
    bench_history = bench_records[-2:]
    if bench_history:
        latest = bench_history[-1]
        bench = {
            "run_id": latest.run_id,
            "start_ts": latest.start_ts,
            "benches": len(latest.metrics),
            # Per-bench p50/p95/p99 wall times, recorded at ingestion
            # (repro.provenance.store.ingest_bench_summary).
            "percentiles": latest.telemetry.get("bench_percentiles", {}),
            "previous": None,
        }
        if len(bench_history) > 1:
            rows = _metric_drift(latest, bench_history[0])
            bench["previous"] = {
                "run_id": bench_history[0].run_id,
                "metrics": rows,
                "regressions": [
                    r for r in rows
                    if r["pct"] is not None
                    and r["pct"] > wall_threshold * 100.0
                ],
            }

    # Serving SLO: the latest session's burn-rate report folds into the
    # overall verdict, so --strict gates on an SLO burn exactly as it
    # gates on fidelity drift.
    serve = None
    if serve_records:
        latest = serve_records[-1]
        slo = latest.fidelity or {}
        serve = {
            "run_id": latest.run_id,
            "start_ts": latest.start_ts,
            "wall_s": latest.wall_s,
            "verdict": latest.verdict,
            "checks": slo.get("checks", []),
            "requests": latest.metrics.get("serve.requests", 0),
            "rejected": latest.metrics.get("serve.rejected", 0),
            "shots_per_sec": latest.metrics.get("serve.shots_per_sec", 0),
            "latency_p99_ms": latest.metrics.get("serve.latency_p99_ms"),
            "sessions": len(serve_records),
        }
        if latest.verdict:
            verdicts.append(latest.verdict)

    wall_regressions = [
        e["experiment"] for e in experiments
        if e["previous"] and e["previous"]["wall"]["regression"]
    ]
    return {
        "runs_dir": str(ledger.runs_dir),
        "experiments": experiments,
        "bench": bench,
        "serve": serve,
        "wall_regressions": wall_regressions,
        "verdict": worst(verdicts) if verdicts else None,
        "empty": not experiments and bench is None and serve is None,
    }


# ---------------------------------------------------------------------- #
# Renderings
# ---------------------------------------------------------------------- #
def _fmt(value, digits: int = 6) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def render_report(report: dict, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(report, indent=2, sort_keys=True)
    if fmt == "markdown":
        return _render_report_tables(report, markdown=True)
    return _render_report_tables(report, markdown=False)


def _render_report_tables(report: dict, markdown: bool) -> str:
    from repro.core.report import format_table

    def table(headers, rows, title):
        if markdown:
            return _markdown_table(headers, rows, title)
        return format_table(headers, rows, title=title)

    if report["empty"]:
        return (
            f"no runs recorded yet under {report['runs_dir']} -- "
            "run `repro run <experiment>` (or `repro all`) first"
        )
    sections = []

    fidelity_rows = []
    for entry in report["experiments"]:
        for check in entry["checks"]:
            fidelity_rows.append([
                entry["experiment"],
                check.get("name", "?"),
                check.get("status", "?"),
                _fmt(check.get("actual")),
                f"{_fmt(check.get('expected'))} "
                f"+/- {_fmt(check.get('tolerance'), 3)}",
                check.get("source", ""),
            ])
        if not entry["checks"]:
            fidelity_rows.append([
                entry["experiment"], "-", entry["verdict"] or "-",
                "-", "-", "no fidelity spec recorded",
            ])
    sections.append(table(
        ["experiment", "metric", "status", "latest", "paper", "source"],
        fidelity_rows,
        f"Latest vs paper (verdict: {report['verdict'] or 'n/a'})",
    ))

    drift_rows = []
    for entry in report["experiments"]:
        prev = entry["previous"]
        if prev is None:
            drift_rows.append([entry["experiment"], "-", "-", "-", "-",
                               "no prior run"])
            continue
        wall = prev["wall"]
        drift_rows.append([
            entry["experiment"],
            "(wall time)",
            f"{wall['previous_s']:.2f} s",
            f"{wall['latest_s']:.2f} s",
            f"{wall['pct']:+.1f} %" if wall["pct"] is not None else "-",
            "REGRESSION" if wall["regression"] else "",
        ])
        for row in prev["metrics"]:
            drift_rows.append([
                entry["experiment"],
                row["metric"],
                _fmt(row["previous"]),
                _fmt(row["latest"]),
                f"{row['pct']:+.2f} %" if row["pct"] is not None else "-",
                "",
            ])
    sections.append(table(
        ["experiment", "metric", "previous", "latest", "change", ""],
        drift_rows,
        "Latest vs previous run (drift)",
    ))

    resource_rows = []
    for entry in report["experiments"]:
        res = entry.get("resources") or {}
        if not res:
            continue
        resource_rows.append([
            entry["experiment"],
            f"{res.get('peak_rss_bytes', 0) / 1e6:.1f} MB",
            f"{res.get('cpu_utilization', 0.0):.2f}",
            str(res.get("peak_threads", "-")),
            str(res.get("peak_fds", "-")),
            str(res.get("samples", "-")),
        ])
    if resource_rows:
        sections.append(table(
            ["experiment", "peak RSS", "CPU util", "threads", "fds",
             "samples"],
            resource_rows,
            "Latest run resources (repro.observe sampler)",
        ))

    serve = report.get("serve")
    if serve is not None:
        slo_rows = [[
            check.get("name", "?"),
            check.get("objective", ""),
            str(check.get("bad", 0)),
            _fmt(check.get("fraction"), 4),
            f"{check.get('burn_rate', 0.0):.2f}x",
            check.get("status", "?"),
        ] for check in serve["checks"]]
        title = (
            f"Serving SLO, latest session {serve['run_id']} "
            f"(verdict: {serve['verdict'] or 'n/a'}; "
            f"{serve['requests']} requests, {serve['rejected']} rejected"
            + (f", p99 {serve['latency_p99_ms']:g} ms"
               if serve.get("latency_p99_ms") is not None else "")
            + ")")
        sections.append(table(
            ["objective", "target", "bad", "fraction", "burn", "status"],
            slo_rows, title))

    bench = report["bench"]
    if bench is not None:
        percentiles = bench.get("percentiles", {})

        def pcts(name: str) -> list[str]:
            p = percentiles.get(name, {})
            return [f"{p[q]:.3f}" if q in p else "-"
                    for q in ("p50", "p95", "p99")]

        if bench["previous"] is None:
            sections.append(
                f"bench ledger: {bench['benches']} benches in run "
                f"{bench['run_id']} (no prior bench run to compare)"
            )
        else:
            rows = [
                [r["metric"], f"{r['previous']:.3f}", f"{r['latest']:.3f}",
                 *pcts(r["metric"]),
                 f"{r['pct']:+.1f} %" if r["pct"] is not None else "-",
                 "REGRESSION" if r in bench["previous"]["regressions"]
                 else ""]
                for r in bench["previous"]["metrics"]
            ]
            sections.append(table(
                ["bench", "previous (s)", "latest (s)", "p50", "p95",
                 "p99", "change", ""],
                rows,
                "Benchmark wall times, latest vs previous",
            ))
    return "\n\n".join(sections)


def _markdown_table(headers, rows, title: str) -> str:
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# repro compare A B
# ---------------------------------------------------------------------- #
def compare_records(a: RunRecord, b: RunRecord,
                    wall_threshold: float = WALL_REGRESSION_THRESHOLD
                    ) -> dict:
    """Per-metric deltas between two runs (B relative to A)."""
    return {
        "a": {"run_id": a.run_id, "experiment": a.experiment,
              "start_ts": a.start_ts, "wall_s": a.wall_s,
              "config_digest": a.config_digest, "verdict": a.verdict,
              "metrics": dict(a.metrics)},
        "b": {"run_id": b.run_id, "experiment": b.experiment,
              "start_ts": b.start_ts, "wall_s": b.wall_s,
              "config_digest": b.config_digest, "verdict": b.verdict,
              "metrics": dict(b.metrics)},
        "same_experiment": a.experiment == b.experiment,
        "same_config": (a.config_digest == b.config_digest
                        and a.config_digest is not None),
        "metrics": _metric_drift(b, a),
        "only_a": sorted(set(a.metrics) - set(b.metrics)),
        "only_b": sorted(set(b.metrics) - set(a.metrics)),
        "wall": _wall_drift(b, a, wall_threshold),
    }


def render_compare(cmp: dict, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps(cmp, indent=2, sort_keys=True)
    from repro.core.report import format_table

    a, b = cmp["a"], cmp["b"]
    head = (
        f"comparing {a['experiment']} run {a['run_id']} ({a['start_ts']})"
        f" -> {b['experiment']} run {b['run_id']} ({b['start_ts']})"
    )
    if not cmp["same_experiment"]:
        head += "\nwarning: runs are from different experiments"
    elif not cmp["same_config"]:
        head += "\nnote: config digests differ (not like-for-like)"
    wall = cmp["wall"]
    rows = [[
        "(wall time)", f"{wall['previous_s']:.3f} s",
        f"{wall['latest_s']:.3f} s",
        f"{wall['pct']:+.1f} %" if wall["pct"] is not None else "-",
        "REGRESSION" if wall["regression"] else "",
    ]]
    for row in cmp["metrics"]:
        rows.append([
            row["metric"], _fmt(row["previous"]), _fmt(row["latest"]),
            f"{row['pct']:+.2f} %" if row["pct"] is not None else "-",
            "",
        ])
    for name in cmp["only_a"]:
        rows.append([name, _fmt(a.get("metrics", {}).get(name)), "-", "-",
                     "only in A"])
    for name in cmp["only_b"]:
        rows.append([name, "-", _fmt(b.get("metrics", {}).get(name)), "-",
                     "only in B"])
    table = format_table(
        ["metric", "run A", "run B", "change", ""],
        rows,
        title="Per-metric comparison",
    )
    return head + "\n\n" + table


# Re-exported severity names so CLI code imports one module.
__all__ += ["FAIL", "PASS", "WARN"]
