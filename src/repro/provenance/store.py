"""The persistent run ledger: append-only JSONL under the runs dir.

One file (``ledger.jsonl``), one :class:`RunRecord` per line, appended
atomically: the encoded line is written with a single ``os.write`` to a
descriptor opened ``O_APPEND``, which POSIX guarantees lands as one
contiguous write -- so concurrent appenders (parallel CLI runs, the
benchmark harness, CI) interleave whole records, never torn ones.

Reads are forgiving by design: a corrupt or foreign line (power loss,
hand edits, newer schema) is skipped with a logged warning, never a
crash -- the ledger is an operational record, and losing one line must
not take the reporting layer down with it.

The directory is resolved once per call from ``--runs-dir`` /
``REPRO_RUNS_DIR`` / the default ``.repro/runs`` (see
:func:`default_runs_dir`), mirroring the runtime cache's
``REPRO_CACHE_DIR`` convention.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.provenance.records import SCHEMA_VERSION, RunRecord

__all__ = ["RunLedger", "default_runs_dir", "ingest_bench_summary"]

_LOG = logging.getLogger(__name__)

#: Ledger filename inside the runs directory.
LEDGER_NAME = "ledger.jsonl"


def default_runs_dir() -> Path:
    """``REPRO_RUNS_DIR`` if set, else ``.repro/runs`` under the cwd."""
    env = os.environ.get("REPRO_RUNS_DIR", "").strip()
    return Path(env) if env else Path(".repro") / "runs"


class RunLedger:
    """Append-only record store; see the module docstring."""

    def __init__(self, runs_dir: str | os.PathLike | None = None):
        self.runs_dir = Path(runs_dir) if runs_dir is not None \
            else default_runs_dir()

    @property
    def path(self) -> Path:
        return self.runs_dir / LEDGER_NAME

    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, record: RunRecord) -> RunRecord:
        """Durably add one record; returns it for chaining."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        payload = record.to_json_line().encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        return record

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def records(self, kind: str | None = None,
                experiment: str | None = None) -> list[RunRecord]:
        """Every readable record, in append (chronological) order."""
        if not self.path.exists():
            return []
        out: list[RunRecord] = []
        # errors="replace": raw binary junk in the file (power loss over
        # reused blocks) must degrade to a skipped line, not abort the
        # whole read with UnicodeDecodeError.  The replacement chars
        # make the line fail JSON parsing, which _parse_line tolerates.
        with open(self.path, encoding="utf-8", errors="replace") as fh:
            for lineno, line in enumerate(fh, start=1):
                record = self._parse_line(line, lineno)
                if record is None:
                    continue
                if kind is not None and record.kind != kind:
                    continue
                if experiment is not None \
                        and record.experiment != experiment:
                    continue
                out.append(record)
        return out

    def _parse_line(self, line: str, lineno: int) -> RunRecord | None:
        line = line.strip()
        if not line:
            return None
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise ValueError("not a JSON object")
            if int(data.get("schema", SCHEMA_VERSION)) > SCHEMA_VERSION:
                raise ValueError(
                    f"schema {data['schema']} is newer than this reader"
                )
            return RunRecord.from_dict(data)
        except (ValueError, KeyError, TypeError) as exc:
            _LOG.warning(
                "skipping corrupt ledger line %s:%d (%s)",
                self.path, lineno, exc,
            )
            return None

    # ------------------------------------------------------------------ #
    # Queries the reporting layer needs
    # ------------------------------------------------------------------ #
    def experiments(self) -> list[str]:
        """Distinct experiment names seen, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records(kind="experiment"):
            seen.setdefault(record.experiment, None)
        return list(seen)

    def latest(self, experiment: str,
               kind: str = "experiment") -> RunRecord | None:
        """The most recent record for an experiment, if any."""
        records = self.records(kind=kind, experiment=experiment)
        return records[-1] if records else None

    def history(self, experiment: str, kind: str = "experiment",
                n: int = 2) -> list[RunRecord]:
        """The last ``n`` records for an experiment, oldest first."""
        return self.records(kind=kind, experiment=experiment)[-n:]

    def find(self, run_id: str) -> RunRecord:
        """Resolve a run id (or unambiguous prefix) to its record."""
        matches = [r for r in self.records()
                   if r.run_id == run_id or r.run_id.startswith(run_id)]
        exact = [r for r in matches if r.run_id == run_id]
        if exact:
            return exact[-1]
        if not matches:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        ids = {r.run_id for r in matches}
        if len(ids) > 1:
            raise KeyError(
                f"run id prefix {run_id!r} is ambiguous: {sorted(ids)}"
            )
        return matches[-1]


# ---------------------------------------------------------------------- #
# Benchmark ingestion: perf and fidelity share one regression story.
# ---------------------------------------------------------------------- #
def ingest_bench_summary(source, ledger: RunLedger,
                         start_ts: str = "") -> RunRecord:
    """Fold a ``bench_summary.json`` into the ledger as one record.

    ``source`` is a path or an already-parsed ``{bench.name: stats}``
    dict (the :mod:`benchmarks.conftest` histogram summaries).  Each
    bench's mean wall time becomes a ``metrics`` entry, so
    ``repro report`` / ``repro compare`` treat bench regressions with
    the same machinery as paper-fidelity drift.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, encoding="utf-8") as fh:
            summary = json.load(fh)
    else:
        summary = source
    metrics: dict[str, float] = {}
    percentiles: dict[str, dict] = {}
    total = 0.0
    for name, stats in summary.items():
        if isinstance(stats, dict) and "mean" in stats:
            value = float(stats["mean"])
            tail = {q: float(stats[q]) for q in ("p50", "p95", "p99")
                    if q in stats}
            if tail:
                percentiles[name] = tail
        else:
            value = float(stats)
        metrics[name] = value
        total += value * (stats.get("count", 1)
                          if isinstance(stats, dict) else 1)
    record = RunRecord(
        experiment="bench_summary",
        kind="bench",
        start_ts=start_ts,
        wall_s=total,
        # The percentile tails ride in the telemetry dict (they are
        # observations about the run, not figures of merit), where
        # `repro report` renders them as p50/p95/p99 columns.
        telemetry={"bench_percentiles": percentiles} if percentiles else {},
        metrics=metrics,
    )
    return ledger.append(record)
