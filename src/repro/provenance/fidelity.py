"""Paper-fidelity checks: is a run still reproducing the paper?

Every registered experiment declares a :class:`FidelitySpec`: a handful
of named scalar figures of merit pulled out of its ``run()`` result
dict, each anchored to the value the paper publishes (Fig. 2/3/5/6/7,
Tables 1-2, or a Section-VII claim) with an explicit tolerance.  After
a run the spec is evaluated into a :class:`FidelityReport` whose
per-metric checks grade as

* ``PASS`` -- within tolerance of the paper value;
* ``WARN`` -- outside tolerance but within ``warn_ratio`` times it
  (drifting, worth a look, not yet a regression);
* ``FAIL`` -- beyond the warn band, or the metric could not be
  extracted at all (missing key, exception, non-finite value).

The report's overall verdict is the worst of its checks.  Checks
serialize to plain dicts so :class:`~repro.provenance.records.RunRecord`
can persist them in the run ledger, and ``repro report`` can replay
them without re-running anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "FAIL",
    "FidelityCheck",
    "FidelityMetric",
    "FidelityReport",
    "FidelitySpec",
    "PASS",
    "WARN",
    "metric",
    "worst",
]

PASS = "PASS"
WARN = "WARN"
FAIL = "FAIL"

#: Severity order for combining verdicts (index = badness).
_ORDER = (PASS, WARN, FAIL)


def worst(verdicts) -> str:
    """The most severe of an iterable of verdict strings."""
    rank = max((_ORDER.index(v) for v in verdicts), default=0)
    return _ORDER[rank]


@dataclass(frozen=True)
class FidelityMetric:
    """One named scalar figure of merit anchored to a paper value."""

    name: str
    expected: float
    """The paper's published value (the anchor)."""
    extract: Callable
    """``extract(result_dict) -> float`` -- pulls the measured value."""
    rel_tol: float | None = None
    """Relative tolerance (fraction of ``expected``)."""
    abs_tol: float | None = None
    """Absolute tolerance, in the metric's own unit."""
    source: str = ""
    """Where the anchor comes from (e.g. ``"Table 1"``)."""

    def tolerance(self) -> float:
        """The acceptance half-width around ``expected``."""
        tol = 0.0
        if self.rel_tol is not None:
            tol = abs(self.expected) * self.rel_tol
        if self.abs_tol is not None:
            tol = max(tol, self.abs_tol)
        return tol


def metric(
    name: str,
    expected: float,
    extract: Callable,
    *,
    rel: float | None = None,
    abs: float | None = None,  # noqa: A002 - mirrors math.isclose
    source: str = "",
) -> FidelityMetric:
    """Terse constructor used by the experiment modules."""
    if rel is None and abs is None:
        raise ValueError(f"metric {name!r} needs rel= and/or abs= tolerance")
    return FidelityMetric(name=name, expected=expected, extract=extract,
                          rel_tol=rel, abs_tol=abs, source=source)


@dataclass(frozen=True)
class FidelityCheck:
    """One evaluated metric: measured vs. paper, graded."""

    name: str
    status: str
    expected: float
    actual: float | None
    tolerance: float
    source: str = ""
    note: str = ""

    @property
    def deviation(self) -> float | None:
        """Signed measured-minus-paper distance (None if unmeasured)."""
        if self.actual is None:
            return None
        return self.actual - self.expected

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "expected": self.expected,
            "actual": self.actual,
            "tolerance": self.tolerance,
            "source": self.source,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FidelityCheck":
        return cls(
            name=data.get("name", "?"),
            status=data.get("status", FAIL),
            expected=data.get("expected", 0.0),
            actual=data.get("actual"),
            tolerance=data.get("tolerance", 0.0),
            source=data.get("source", ""),
            note=data.get("note", ""),
        )


@dataclass(frozen=True)
class FidelityReport:
    """All of one run's checks plus the combined verdict."""

    experiment: str
    checks: tuple[FidelityCheck, ...]

    @property
    def verdict(self) -> str:
        return worst(c.status for c in self.checks)

    @property
    def metrics(self) -> dict[str, float]:
        """The successfully measured values, by metric name."""
        return {c.name: c.actual for c in self.checks if c.actual is not None}

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "verdict": self.verdict,
            "checks": [c.to_dict() for c in self.checks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FidelityReport":
        return cls(
            experiment=data.get("experiment", "?"),
            checks=tuple(FidelityCheck.from_dict(c)
                         for c in data.get("checks", [])),
        )

    def summary_lines(self) -> list[str]:
        """Human-readable one-liner per check (what ``repro run`` prints)."""
        lines = []
        for c in self.checks:
            actual = "unmeasured" if c.actual is None else f"{c.actual:.6g}"
            anchor = f"paper {c.expected:.6g} +/- {c.tolerance:.3g}"
            src = f" [{c.source}]" if c.source else ""
            note = f" ({c.note})" if c.note else ""
            lines.append(
                f"  {c.status:<4} {c.name}: {actual} vs {anchor}{src}{note}"
            )
        return lines


@dataclass(frozen=True)
class FidelitySpec:
    """An experiment's declared figures of merit (see module docstring)."""

    metrics: tuple[FidelityMetric, ...] = field(default_factory=tuple)
    warn_ratio: float = 2.0
    """Checks within ``warn_ratio * tolerance`` grade WARN, not FAIL."""

    def __post_init__(self):
        names = [m.name for m in self.metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fidelity metric names in {names}")

    def evaluate(self, experiment: str, result) -> FidelityReport:
        """Grade every metric against ``result`` (an experiment's dict)."""
        checks = []
        for m in self.metrics:
            checks.append(self._check(m, result))
        return FidelityReport(experiment=experiment, checks=tuple(checks))

    def _check(self, m: FidelityMetric, result) -> FidelityCheck:
        tol = m.tolerance()
        try:
            actual = float(m.extract(result))
        except Exception as exc:  # noqa: BLE001 - graded, not raised
            return FidelityCheck(
                name=m.name, status=FAIL, expected=m.expected, actual=None,
                tolerance=tol, source=m.source,
                note=f"extraction failed: {type(exc).__name__}: {exc}",
            )
        if not math.isfinite(actual):
            return FidelityCheck(
                name=m.name, status=FAIL, expected=m.expected, actual=None,
                tolerance=tol, source=m.source, note="non-finite value",
            )
        err = abs(actual - m.expected)
        if err <= tol:
            status = PASS
        elif err <= tol * self.warn_ratio:
            status = WARN
        else:
            status = FAIL
        return FidelityCheck(
            name=m.name, status=status, expected=m.expected, actual=actual,
            tolerance=tol, source=m.source,
        )
