"""repro.provenance: the run ledger and paper-fidelity regression layer.

PR 2 gave the flow live telemetry and PR 3 gave configs stable content
digests; this package makes runs *persist and compare*:

* :mod:`~repro.provenance.records` -- :class:`RunRecord`, the structured
  account of one experiment invocation (identity, host, wall time,
  telemetry snapshot, figures of merit, fidelity verdict);
* :mod:`~repro.provenance.store` -- :class:`RunLedger`, the append-only
  JSONL store under ``REPRO_RUNS_DIR``/``--runs-dir`` (atomic appends,
  corrupt-line-tolerant reads) plus benchmark-summary ingestion;
* :mod:`~repro.provenance.fidelity` -- :class:`FidelitySpec` /
  :class:`FidelityReport`, the per-experiment paper-anchored metric
  checks graded PASS/WARN/FAIL;
* :mod:`~repro.provenance.report` -- ``repro report`` (latest-vs-paper
  and latest-vs-previous drift) and ``repro compare`` (run-vs-run
  deltas, wall-time regressions).

Experiments declare their spec through the registry::

    @experiment("table1", ..., fidelity=FidelitySpec(metrics=(
        metric("delay_10k_ns", 1.09,
               lambda r: r["corners"][10.0]["delay_ns"],
               rel=0.05, source="Table 1"),
    )))

and every CLI invocation then appends a record and prints the verdict;
``repro report`` / ``repro compare`` read the ledger back without
re-running anything.
"""

from repro.provenance.fidelity import (
    FAIL,
    PASS,
    WARN,
    FidelityCheck,
    FidelityMetric,
    FidelityReport,
    FidelitySpec,
    metric,
    worst,
)
from repro.provenance.records import (
    RunRecord,
    host_info,
    new_run_id,
    telemetry_snapshot,
)
from repro.provenance.report import (
    build_report,
    compare_records,
    render_compare,
    render_report,
)
from repro.provenance.store import (
    RunLedger,
    default_runs_dir,
    ingest_bench_summary,
)

__all__ = [
    "FAIL",
    "PASS",
    "WARN",
    "FidelityCheck",
    "FidelityMetric",
    "FidelityReport",
    "FidelitySpec",
    "RunLedger",
    "RunRecord",
    "build_report",
    "compare_records",
    "default_runs_dir",
    "host_info",
    "ingest_bench_summary",
    "metric",
    "new_run_id",
    "render_compare",
    "render_report",
    "telemetry_snapshot",
    "worst",
]
