"""The run ledger's unit of account: one :class:`RunRecord` per run.

A record is everything needed to answer, months later, "what did this
invocation produce, on what, and was it still the paper?":

* identity -- a random ``run_id``, the experiment name, the config's
  content digest (PR 3's :func:`~repro.runtime.digest.stable_digest`),
  the package version;
* context -- ISO-8601 UTC start timestamp, wall time, host info
  (platform/python/cpu count);
* telemetry -- a compact snapshot of the spans/counters/stage-cache
  state collected while the run executed (empty when telemetry is off);
* resources -- the :mod:`repro.observe` sampler's peaks (peak RSS, CPU
  utilization, thread/FD high-water marks; empty when no sampler ran);
* science -- the experiment's numeric figures of merit and the
  serialized :class:`~repro.provenance.fidelity.FidelityReport`.

Records are plain data end to end: they serialize to one JSON line
(:meth:`RunRecord.to_json_line`) and rebuild from a parsed dict
(:meth:`RunRecord.from_dict`), so they cross process boundaries (the
parallel CLI fan-out builds them in workers) and survive in the
append-only ledger (:mod:`repro.provenance.store`).
"""

from __future__ import annotations

import json
import os
import platform
import secrets
from dataclasses import dataclass, field

from repro import __version__, telemetry

__all__ = ["RunRecord", "host_info", "new_run_id", "telemetry_snapshot"]

#: Bumped when the record layout changes incompatibly; readers skip
#: newer-schema lines with a warning instead of misparsing them.
SCHEMA_VERSION = 1


def new_run_id() -> str:
    """A short collision-resistant id (no counters, no clocks)."""
    return secrets.token_hex(6)


def host_info() -> dict:
    """Where a run happened, for cross-machine comparisons."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def telemetry_snapshot(study=None) -> dict:
    """A compact, JSON-able view of the live telemetry state.

    Not the full trace (that is what ``--trace FILE`` is for): span
    count, per-root durations, the flat metrics summary, and -- when the
    run had a study -- its stage-cache hit/miss ledger.
    """
    spans = list(telemetry.tracer.all_spans())
    snap = {
        "enabled": telemetry.enabled(),
        "span_count": len(spans),
        "roots": [
            {"name": root.name, "duration_s": root.duration_s}
            for root in telemetry.trace_roots()
        ],
        "metrics": telemetry.metrics_summary(),
    }
    if study is not None:
        snap["stage_cache"] = study.stage_cache_stats()
    return snap


@dataclass(frozen=True)
class RunRecord:
    """One ledger line; see the module docstring for the field story."""

    experiment: str
    kind: str = "experiment"
    """``"experiment"`` for registry runs, ``"bench"`` for ingested
    benchmark summaries, ``"profile"`` for ``repro profile`` runs."""
    run_id: str = field(default_factory=new_run_id)
    start_ts: str = ""
    """ISO-8601 UTC wall-clock time the run started."""
    wall_s: float = 0.0
    config_digest: str | None = None
    package_version: str = __version__
    host: dict = field(default_factory=host_info)
    telemetry: dict = field(default_factory=dict)
    resources: dict = field(default_factory=dict)
    """Resource-sampler peaks (:mod:`repro.observe.sampler`): peak RSS,
    CPU utilization and friends; empty when the run was unsampled."""
    metrics: dict = field(default_factory=dict)
    """Numeric figures of merit, by metric name."""
    fidelity: dict | None = None
    """Serialized :class:`~repro.provenance.fidelity.FidelityReport`."""
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------ #
    @property
    def verdict(self) -> str | None:
        """The fidelity verdict carried by the record, if any."""
        if not self.fidelity:
            return None
        return self.fidelity.get("verdict")

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "experiment": self.experiment,
            "start_ts": self.start_ts,
            "wall_s": self.wall_s,
            "config_digest": self.config_digest,
            "package_version": self.package_version,
            "host": self.host,
            "telemetry": self.telemetry,
            "resources": self.resources,
            "metrics": self.metrics,
            "fidelity": self.fidelity,
        }

    def to_json_line(self) -> str:
        """One newline-terminated JSON document (the ledger encoding)."""
        return json.dumps(self.to_dict(), sort_keys=True, default=_jsonify) \
            + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            experiment=data["experiment"],
            kind=data.get("kind", "experiment"),
            run_id=data.get("run_id", "?"),
            start_ts=data.get("start_ts", ""),
            wall_s=float(data.get("wall_s", 0.0)),
            config_digest=data.get("config_digest"),
            package_version=data.get("package_version", "?"),
            host=data.get("host", {}),
            telemetry=data.get("telemetry", {}),
            resources=data.get("resources", {}),
            metrics=data.get("metrics", {}),
            fidelity=data.get("fidelity"),
            schema=int(data.get("schema", SCHEMA_VERSION)),
        )


def _jsonify(value):
    """Last-resort encoder for numpy scalars and other item()-ables."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)
