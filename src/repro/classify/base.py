"""The unified classifier contract: one public API for every readout model.

Before this module existed, every consumer of the classification layer
(the experiments, the SoC kernels, the examples) reached for the
concrete classes with ad-hoc constructor calls -- ``KNNClassifier(
centers)`` here, ``HDCClassifier.calibrate(encoder, centers)`` there.
The service layer (:mod:`repro.serve`) needs the opposite: a stateless,
serializable, versioned *protocol* it can load once, share read-only
across worker threads, and ship across process or wire boundaries.

:class:`Classifier` is that protocol.  Every implementation provides:

``calibrate(shots_0, shots_1)``
    Train from per-qubit calibration shots -- two ``(n_qubits,
    n_shots, 2)`` arrays measured with every qubit prepared in |0> /
    |1> (the paper's Section-II calibration procedure).  Inputs are
    validated *up front*: wrong rank, empty shot sets, or non-finite
    I/Q raise a typed :class:`~repro.errors.ValidationError` naming the
    offending field instead of failing deep inside numpy.
``predict(iq, qubit=None)``
    Vectorized labels for a batch of I/Q measurements.  ``qubit=None``
    means the shot-major interleaved layout (qubit index cycles
    fastest) -- the layout the SoC kernels and the serving path
    consume.  Row-wise independent by construction, so a micro-batcher
    may concatenate many requests into one call and split the labels
    without changing a single bit.
``to_dict()`` / ``from_dict(data)``
    A plain-data round trip (JSON-able scalars and lists only), so a
    calibrated model crosses process and wire boundaries and lands in
    provenance records.
``model_digest``
    A stable content digest of the serialized model
    (:func:`~repro.runtime.digest.stable_digest`), the model *version*
    the service reports: two calibrations agree on their digest exactly
    when they would emit identical labels forever.

Concrete models register by name in :mod:`repro.classify.registry`
(``get_classifier("knn" | "hdc")``), the same single-step plug-in
pattern :mod:`repro.experiments.registry` uses for experiments.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ValidationError

__all__ = ["Classifier", "validate_points", "validate_shots"]


def validate_shots(field: str, shots) -> np.ndarray:
    """Validate one calibration-shot array; returns it as float ndarray.

    The contract is shape ``(n_qubits, n_shots, 2)`` with at least one
    qubit and one shot and every I/Q component finite.  Violations
    raise :class:`~repro.errors.ValidationError` naming ``field`` --
    the up-front rejection the assault harness's edge tier expects,
    instead of a shape/NaN surprise deep inside ``mean()``.
    """
    try:
        arr = np.asarray(shots, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{field} is not a numeric array: {exc}") from exc
    if arr.ndim != 3 or arr.shape[2] != 2:
        raise ValidationError(
            f"{field} must have shape (n_qubits, n_shots, 2), "
            f"got {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValidationError(
            f"{field} is empty: shape {arr.shape} has no "
            f"{'qubits' if arr.shape[0] == 0 else 'shots'}")
    if not np.isfinite(arr).all():
        bad = int(np.size(arr) - np.isfinite(arr).sum())
        raise ValidationError(
            f"{field} contains {bad} non-finite I/Q component(s)")
    return arr


def validate_points(field: str, points) -> np.ndarray:
    """Validate a measurement batch; returns it as a float (n, 2) array.

    Accepts one point ``(2,)`` or a batch ``(n, 2)``; anything else --
    including NaN/inf I/Q -- raises a typed
    :class:`~repro.errors.ValidationError` naming ``field``.
    """
    try:
        arr = np.atleast_2d(np.asarray(points, dtype=float))
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"{field} is not a numeric array: {exc}") from exc
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValidationError(
            f"{field} must have shape (n, 2) I/Q pairs, got "
            f"{np.asarray(points).shape}")
    if not np.isfinite(arr).all():
        bad = int(np.size(arr) - np.isfinite(arr).sum())
        raise ValidationError(
            f"{field} contains {bad} non-finite I/Q component(s)")
    return arr


class Classifier(abc.ABC):
    """The public readout-classifier protocol (see module docstring)."""

    #: Registry name of the concrete model ("knn", "hdc", ...).
    kind: str = ""

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    @classmethod
    @abc.abstractmethod
    def calibrate(cls, shots_0, shots_1, **kwargs) -> "Classifier":
        """Train from |0>/|1> calibration shots (validated up front)."""

    @classmethod
    @abc.abstractmethod
    def from_centers(cls, centers, **kwargs) -> "Classifier":
        """Build from already-estimated (n_qubits, 2, 2) centers."""

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def predict(self, iq, qubit=None) -> np.ndarray:
        """Labels (0/1 ints) for a batch of I/Q points.

        ``qubit`` maps each row to its qubit index; ``None`` selects
        the interleaved layout (``arange(n) % n_qubits``).
        """

    @property
    @abc.abstractmethod
    def n_qubits(self) -> int:
        """How many qubits this model was calibrated for."""

    # ------------------------------------------------------------------ #
    # Serialization + versioning
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def to_dict(self) -> dict:
        """Plain-data (JSON-able) form; ``from_dict`` inverts it."""

    @classmethod
    @abc.abstractmethod
    def from_dict(cls, data: dict) -> "Classifier":
        """Rebuild a model serialized by :meth:`to_dict`."""

    @property
    def model_digest(self) -> str:
        """Stable content digest of the serialized model (its version)."""
        from repro.runtime.digest import stable_digest

        return stable_digest(self.to_dict())

    # ------------------------------------------------------------------ #
    def resolve_qubit(self, iq: np.ndarray, qubit) -> np.ndarray:
        """Per-row qubit indices, defaulting to the interleaved layout."""
        if qubit is None:
            return np.arange(len(iq)) % self.n_qubits
        q = np.asarray(qubit, dtype=int)
        if q.shape != (len(iq),):
            raise ValidationError(
                f"qubit must have one index per point: got shape "
                f"{q.shape} for {len(iq)} point(s)")
        if len(q) and (q.min() < 0 or q.max() >= self.n_qubits):
            raise ValidationError(
                f"qubit indices must be in [0, {self.n_qubits}), got "
                f"[{q.min()}, {q.max()}]")
        return q
