"""Classification-accuracy evaluation against known prepared states."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccuracyReport", "evaluate_accuracy"]


@dataclass(frozen=True)
class AccuracyReport:
    """Aggregate and per-qubit assignment accuracy."""

    overall: float
    per_qubit: np.ndarray
    n_measurements: int

    @property
    def worst_qubit(self) -> int:
        return int(np.argmin(self.per_qubit))

    @property
    def error_rate(self) -> float:
        return 1.0 - self.overall


def evaluate_accuracy(
    predicted: np.ndarray,
    truth: np.ndarray,
    qubit: np.ndarray,
    n_qubits: int,
) -> AccuracyReport:
    """Compare predicted labels with prepared states.

    ``qubit`` assigns each measurement to its qubit for the per-qubit
    breakdown (readout fidelity varies across the device, Fig. 2(a)).
    """
    predicted = np.asarray(predicted, dtype=int)
    truth = np.asarray(truth, dtype=int)
    qubit = np.asarray(qubit, dtype=int)
    if predicted.shape != truth.shape or predicted.shape != qubit.shape:
        raise ValueError("predicted, truth and qubit must align")
    correct = predicted == truth
    per_qubit = np.empty(n_qubits)
    for q in range(n_qubits):
        mask = qubit == q
        per_qubit[q] = correct[mask].mean() if mask.any() else np.nan
    return AccuracyReport(
        overall=float(correct.mean()),
        per_qubit=per_qubit,
        n_measurements=len(predicted),
    )
