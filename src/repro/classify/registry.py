"""The classifier registry: name -> :class:`~repro.classify.base.Classifier`.

Mirrors :mod:`repro.experiments.registry`: registering a model class is
the single step that plugs it into everything downstream -- the serving
layer's warm model registry (:mod:`repro.serve.models`), the CLI, and
deserialization (:func:`classifier_from_dict` dispatches on the
``kind`` tag ``to_dict`` embeds).

    from repro.classify import get_classifier

    knn = get_classifier("knn").calibrate(shots_0, shots_1)
    hdc = get_classifier("hdc").calibrate(shots_0, shots_1)
"""

from __future__ import annotations

from repro.classify.base import Classifier
from repro.errors import ConfigError

__all__ = [
    "classifier_from_dict",
    "classifier_names",
    "get_classifier",
    "register_classifier",
]

_REGISTRY: dict[str, type[Classifier]] = {}


def register_classifier(cls: type[Classifier]) -> type[Classifier]:
    """Register a classifier class under its ``kind`` (decorator)."""
    if not cls.kind:
        raise ValueError(f"{cls.__name__} must declare a non-empty kind")
    if cls.kind in _REGISTRY:
        raise ValueError(f"classifier {cls.kind!r} already registered")
    _REGISTRY[cls.kind] = cls
    return cls


def get_classifier(name: str) -> type[Classifier]:
    """The registered classifier class for ``name`` ("knn", "hdc")."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"no classifier {name!r} registered (known: {known})",
            field="model",
        ) from None


def classifier_names() -> list[str]:
    """Registered model names, sorted."""
    return sorted(_REGISTRY)


def classifier_from_dict(data: dict) -> Classifier:
    """Rebuild any serialized classifier from its ``kind`` tag."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ConfigError(
            "serialized classifier needs a 'kind' tag", field="kind")
    return get_classifier(data["kind"]).from_dict(data)
