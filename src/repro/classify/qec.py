"""Repetition-code error correction: the paper's "other tasks" workload.

Section VII: beyond classification, the cryogenic SoC must run "complex
quantum error correction protocols".  As the simplest representative we
implement a distance-d repetition code: each logical qubit is encoded in
d physical qubits, and decoding is a majority vote over the d classified
measurement bits.  The same decoder runs:

* here as a numpy reference;
* on the RV64 ISS as machine code
  (:func:`repro.soc.programs.qec_majority_source`), extending the Fig.-7
  budget analysis with a classify-then-decode pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RepetitionDecoder", "logical_error_rate"]


@dataclass(frozen=True)
class RepetitionDecoder:
    """Majority-vote decoder for a distance-``d`` repetition code."""

    distance: int

    def __post_init__(self) -> None:
        if self.distance < 1 or self.distance % 2 == 0:
            raise ValueError("distance must be a positive odd number")

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Decode physical measurement bits into logical values.

        ``bits``: (n_logical, distance) or flat with length divisible by
        the distance (physical-qubit-major).  Returns (n_logical,) 0/1.
        """
        bits = np.asarray(bits, dtype=int)
        if bits.ndim == 1:
            if bits.size % self.distance:
                raise ValueError(
                    f"bit count {bits.size} not divisible by distance "
                    f"{self.distance}"
                )
            bits = bits.reshape(-1, self.distance)
        if bits.shape[1] != self.distance:
            raise ValueError("second axis must equal the code distance")
        return (bits.sum(axis=1) * 2 > self.distance).astype(int)

    def physical_qubits(self, n_logical: int) -> int:
        return n_logical * self.distance


def logical_error_rate(physical_error: float, distance: int) -> float:
    """Analytic logical error rate of majority voting.

    Sum of binomial tail terms: the decoder fails when more than half the
    physical bits flip.  Demonstrates the exponential suppression that
    motivates running QEC close to the qubits.
    """
    from math import comb

    if not 0 <= physical_error <= 1:
        raise ValueError("physical_error must be a probability")
    if distance < 1 or distance % 2 == 0:
        raise ValueError("distance must be a positive odd number")
    k_min = distance // 2 + 1
    return float(
        sum(
            comb(distance, k)
            * physical_error**k
            * (1 - physical_error) ** (distance - k)
            for k in range(k_min, distance + 1)
        )
    )
