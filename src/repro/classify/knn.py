"""Nearest-centroid kNN classifier (paper Eq. 2) -- Python reference.

The calibration phase returns per-qubit center points for |0> and |1>;
classification assigns each I/Q measurement the label of the nearer
center.  The radicand shortcut ("comparing the radicands is sufficient...
the computationally expensive square root operation is unnecessary and
removed") is exposed explicitly so the ABL-2 ablation can quantify it.

:class:`KNNClassifier` implements the unified
:class:`~repro.classify.base.Classifier` protocol (``calibrate`` /
``predict`` / ``to_dict`` / ``from_dict`` / ``model_digest``) and is
registered as ``"knn"`` in :mod:`repro.classify.registry`; the
per-qubit ``classify`` methods remain the kernel-facing API the SoC
tests pin bit-identical labels against.
"""

from __future__ import annotations

import numpy as np

from repro.classify.base import Classifier, validate_points, validate_shots
from repro.classify.registry import register_classifier
from repro.errors import ValidationError

__all__ = ["KNNClassifier"]


@register_classifier
class KNNClassifier(Classifier):
    """Per-qubit nearest-centroid classifier.

    Parameters
    ----------
    centers:
        Array of shape (n_qubits, 2, 2): [qubit][class][i/q component].
    """

    kind = "knn"

    def __init__(self, centers: np.ndarray):
        centers = np.asarray(centers, dtype=float)
        if centers.ndim != 3 or centers.shape[1:] != (2, 2):
            raise ValidationError(
                f"centers must have shape (n_qubits, 2, 2), "
                f"got {centers.shape}")
        if not np.isfinite(centers).all():
            raise ValidationError("centers contain non-finite components")
        self.centers = centers

    @property
    def n_qubits(self) -> int:
        return self.centers.shape[0]

    @classmethod
    def calibrate(
        cls, shots_0: np.ndarray, shots_1: np.ndarray
    ) -> "KNNClassifier":
        """Train from calibration shots.

        ``shots_0``/``shots_1``: arrays (n_qubits, n_shots, 2) measured
        with every qubit prepared in |0> / |1> -- exactly the paper's
        calibration procedure (Section II).  Malformed inputs (wrong
        rank, empty, non-finite I/Q) are rejected up front with a typed
        :class:`~repro.errors.ValidationError` naming the field.
        """
        s0 = validate_shots("shots_0", shots_0)
        s1 = validate_shots("shots_1", shots_1)
        if s0.shape[0] != s1.shape[0]:
            raise ValidationError(
                f"shots_0/shots_1 disagree on qubit count: "
                f"{s0.shape[0]} != {s1.shape[0]}")
        return cls(np.stack([s0.mean(axis=1), s1.mean(axis=1)], axis=1))

    @classmethod
    def from_centers(cls, centers) -> "KNNClassifier":
        """Build from already-estimated (n_qubits, 2, 2) centers."""
        return cls(centers)

    # ------------------------------------------------------------------ #
    # The unified Classifier protocol
    # ------------------------------------------------------------------ #
    def predict(self, iq, qubit=None) -> np.ndarray:
        """Vectorized labels; ``qubit=None`` = interleaved layout."""
        pts = validate_points("iq", iq)
        return self.classify(self.resolve_qubit(pts, qubit), pts)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "centers": self.centers.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "KNNClassifier":
        return cls(np.asarray(data["centers"], dtype=float))

    # ------------------------------------------------------------------ #
    # Kernel-facing per-qubit API (what the SoC programs mirror)
    # ------------------------------------------------------------------ #
    def distances(
        self, qubit: np.ndarray, points: np.ndarray, sqrt: bool = False
    ) -> np.ndarray:
        """Distances (or radicands) to both centers: shape (n, 2)."""
        qubit = np.asarray(qubit, dtype=int)
        points = np.asarray(points, dtype=float)
        diff = points[:, None, :] - self.centers[qubit]
        radicand = np.sum(diff * diff, axis=2)
        return np.sqrt(radicand) if sqrt else radicand

    def classify(
        self, qubit: np.ndarray, points: np.ndarray, sqrt: bool = False
    ) -> np.ndarray:
        """Labels (0/1) for measurements of the given qubits.

        ``sqrt=True`` takes the square root first; by monotonicity the
        labels are identical (the shortcut's correctness argument), which
        the property tests assert.
        """
        d = self.distances(qubit, points, sqrt=sqrt)
        return (d[:, 1] < d[:, 0]).astype(int)

    def classify_interleaved(self, points: np.ndarray) -> np.ndarray:
        """Classify shot-major interleaved measurements (qubit cycles
        fastest), the layout the SoC kernel consumes."""
        n = len(points)
        qubit = np.arange(n) % self.n_qubits
        return self.classify(qubit, points)
