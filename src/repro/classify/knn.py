"""Nearest-centroid kNN classifier (paper Eq. 2) -- Python reference.

The calibration phase returns per-qubit center points for |0> and |1>;
classification assigns each I/Q measurement the label of the nearer
center.  The radicand shortcut ("comparing the radicands is sufficient...
the computationally expensive square root operation is unnecessary and
removed") is exposed explicitly so the ABL-2 ablation can quantify it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Per-qubit nearest-centroid classifier.

    Parameters
    ----------
    centers:
        Array of shape (n_qubits, 2, 2): [qubit][class][i/q component].
    """

    def __init__(self, centers: np.ndarray):
        centers = np.asarray(centers, dtype=float)
        if centers.ndim != 3 or centers.shape[1:] != (2, 2):
            raise ValueError("centers must have shape (n_qubits, 2, 2)")
        self.centers = centers

    @property
    def n_qubits(self) -> int:
        return self.centers.shape[0]

    @classmethod
    def calibrate(
        cls, shots_0: np.ndarray, shots_1: np.ndarray
    ) -> "KNNClassifier":
        """Train from calibration shots.

        ``shots_0``/``shots_1``: arrays (n_qubits, n_shots, 2) measured
        with every qubit prepared in |0> / |1> -- exactly the paper's
        calibration procedure (Section II).
        """
        c0 = np.asarray(shots_0, dtype=float).mean(axis=1)
        c1 = np.asarray(shots_1, dtype=float).mean(axis=1)
        return cls(np.stack([c0, c1], axis=1))

    def distances(
        self, qubit: np.ndarray, points: np.ndarray, sqrt: bool = False
    ) -> np.ndarray:
        """Distances (or radicands) to both centers: shape (n, 2)."""
        qubit = np.asarray(qubit, dtype=int)
        points = np.asarray(points, dtype=float)
        diff = points[:, None, :] - self.centers[qubit]
        radicand = np.sum(diff * diff, axis=2)
        return np.sqrt(radicand) if sqrt else radicand

    def classify(
        self, qubit: np.ndarray, points: np.ndarray, sqrt: bool = False
    ) -> np.ndarray:
        """Labels (0/1) for measurements of the given qubits.

        ``sqrt=True`` takes the square root first; by monotonicity the
        labels are identical (the shortcut's correctness argument), which
        the property tests assert.
        """
        d = self.distances(qubit, points, sqrt=sqrt)
        return (d[:, 1] < d[:, 0]).astype(int)

    def classify_interleaved(self, points: np.ndarray) -> np.ndarray:
        """Classify shot-major interleaved measurements (qubit cycles
        fastest), the layout the SoC kernel consumes."""
        n = len(points)
        qubit = np.arange(n) % self.n_qubits
        return self.classify(qubit, points)
