"""Classification layer: kNN and HDC (paper Section V-B), plus accuracy.

Python reference implementations of the two classifiers the paper runs on
the SoC; the RV64 kernels in :mod:`repro.soc.programs` implement the same
algorithms and tests assert bit-identical labels.

Both models implement the unified :class:`~repro.classify.base.Classifier`
protocol -- ``calibrate(shots_0, shots_1)`` / ``predict(iq)`` /
``to_dict``/``from_dict`` / ``model_digest`` -- and are registered by
name (:func:`get_classifier`), which is what the serving layer
(:mod:`repro.serve`) and the experiments consume.
"""

from repro.classify.accuracy import AccuracyReport, evaluate_accuracy
from repro.classify.base import Classifier, validate_points, validate_shots
from repro.classify.hdc import (
    DIMENSION,
    HDCClassifier,
    HDCEncoder,
    LEVELS,
    popcount64,
)
from repro.classify.knn import KNNClassifier
from repro.classify.registry import (
    classifier_from_dict,
    classifier_names,
    get_classifier,
)

__all__ = [
    "AccuracyReport",
    "Classifier",
    "DIMENSION",
    "HDCClassifier",
    "HDCEncoder",
    "KNNClassifier",
    "LEVELS",
    "classifier_from_dict",
    "classifier_names",
    "evaluate_accuracy",
    "get_classifier",
    "popcount64",
    "validate_points",
    "validate_shots",
]
