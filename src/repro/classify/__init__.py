"""Classification layer: kNN and HDC (paper Section V-B), plus accuracy.

Python reference implementations of the two classifiers the paper runs on
the SoC; the RV64 kernels in :mod:`repro.soc.programs` implement the same
algorithms and tests assert bit-identical labels.
"""

from repro.classify.accuracy import AccuracyReport, evaluate_accuracy
from repro.classify.hdc import (
    DIMENSION,
    HDCClassifier,
    HDCEncoder,
    LEVELS,
    popcount64,
)
from repro.classify.knn import KNNClassifier

__all__ = [
    "AccuracyReport",
    "DIMENSION",
    "HDCClassifier",
    "HDCEncoder",
    "KNNClassifier",
    "LEVELS",
    "evaluate_accuracy",
    "popcount64",
]
