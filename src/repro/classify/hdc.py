"""Binary hyperdimensional-computing classifier (paper Eqs. 3-4).

128-bit hypervectors; a point P = (x, y) is encoded as the XOR bind of
its quantized coordinates' item hypervectors (Eq. 3).  Class prototypes
C0/C1 come from encoding the calibration centers; classification compares
Hamming distances, computed with one XOR + popcount after the
precomputation trick of Eq. 4 (the ``X_{C xor x-hat}`` tables that cost
"only 256 bytes" of extra footprint).

This module is the Python reference; :mod:`repro.soc.programs` runs the
same algorithm on the RV64 ISS, and tests assert label agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HDCClassifier", "HDCEncoder", "popcount64"]

DIMENSION = 128
"""Hypervector dimension in bits ("a size of 128 bits ... is sufficient")."""

WORDS = DIMENSION // 64
LEVELS = 16
"""Quantization levels per axis (2 x 16 = 32 item hypervectors total)."""

VALUE_RANGE = (-2.0, 2.0)
"""I/Q range covered by the level item hypervectors."""

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(65536)], dtype=np.int64
)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Population count of uint64 values (vectorized, 16-bit table)."""
    w = np.asarray(words, dtype=np.uint64)
    count = np.zeros(w.shape, dtype=np.int64)
    for shift in (0, 16, 32, 48):
        count += _POPCOUNT_TABLE[
            ((w >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.int64)
        ]
    return count


@dataclass(frozen=True)
class HDCEncoder:
    """Item memory: one random hypervector per quantization level/axis."""

    x_items: np.ndarray  # (LEVELS, WORDS) uint64
    y_items: np.ndarray

    @classmethod
    def random(cls, seed: int = 42) -> "HDCEncoder":
        """Generate the item memory ("constant and generated once during
        the program compilation").

        Level hypervectors are *linearly correlated*: the first level is
        random and each subsequent level flips a fresh slice of
        ``DIMENSION/2/(LEVELS-1)`` bits, so Hamming distance between two
        levels grows with their separation -- the standard HDC encoding
        for continuous quantities (without it, nearest-prototype
        classification of noisy I/Q points would be chance).
        """
        rng = np.random.default_rng(seed)

        def level_family() -> np.ndarray:
            base_bits = rng.integers(0, 2, DIMENSION).astype(np.uint8)
            order = rng.permutation(DIMENSION)
            flips_per_level = DIMENSION // 2 // (LEVELS - 1)
            items = np.empty((LEVELS, WORDS), dtype=np.uint64)
            bits = base_bits.copy()
            for level in range(LEVELS):
                if level:
                    start = (level - 1) * flips_per_level
                    positions = order[start : start + flips_per_level]
                    bits[positions] ^= 1
                words = np.zeros(WORDS, dtype=np.uint64)
                for k in range(DIMENSION):
                    if bits[k]:
                        words[k // 64] |= np.uint64(1) << np.uint64(k % 64)
                items[level] = words
            return items

        return cls(x_items=level_family(), y_items=level_family())

    @staticmethod
    def quantize(values: np.ndarray) -> np.ndarray:
        """Map I/Q values onto [0, LEVELS) level indices."""
        lo, hi = VALUE_RANGE
        scale = LEVELS / (hi - lo)
        idx = np.floor((np.asarray(values, dtype=float) - lo) * scale)
        return np.clip(idx, 0, LEVELS - 1).astype(int)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode points (n, 2) into hypervectors (n, WORDS) -- Eq. 3."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        xq = self.quantize(points[:, 0])
        yq = self.quantize(points[:, 1])
        return self.x_items[xq] ^ self.y_items[yq]


class HDCClassifier:
    """Per-qubit HDC classifier with the Eq.-4 precomputation."""

    def __init__(self, encoder: HDCEncoder, prototypes: np.ndarray):
        """``prototypes``: (n_qubits, 2, WORDS) class hypervectors."""
        prototypes = np.asarray(prototypes, dtype=np.uint64)
        if prototypes.ndim != 3 or prototypes.shape[1] != 2:
            raise ValueError("prototypes must have shape (n_qubits, 2, WORDS)")
        self.encoder = encoder
        self.prototypes = prototypes
        # Eq. 4: precompute X_{C xor x-hat} per class and x level.
        # Shape (n_qubits, 2, LEVELS, WORDS).
        self.xc_tables = (
            prototypes[:, :, None, :] ^ encoder.x_items[None, None, :, :]
        )

    @property
    def n_qubits(self) -> int:
        return self.prototypes.shape[0]

    @classmethod
    def calibrate(
        cls, encoder: HDCEncoder, centers: np.ndarray
    ) -> "HDCClassifier":
        """Encode the per-qubit calibration centers into prototypes."""
        centers = np.asarray(centers, dtype=float)
        protos = np.stack(
            [encoder.encode(centers[:, 0, :]), encoder.encode(centers[:, 1, :])],
            axis=1,
        )
        return cls(encoder, protos)

    # ------------------------------------------------------------------ #
    def hamming_distances(
        self, qubit: np.ndarray, points: np.ndarray,
        use_precomputed: bool = True,
    ) -> np.ndarray:
        """Hamming distances to both prototypes: (n, 2)."""
        qubit = np.asarray(qubit, dtype=int)
        points = np.atleast_2d(np.asarray(points, dtype=float))
        xq = self.encoder.quantize(points[:, 0])
        yq = self.encoder.quantize(points[:, 1])
        y_hat = self.encoder.y_items[yq]  # (n, WORDS)
        if use_precomputed:
            # d_i = popcount(X_{Ci xor x-hat} xor y-hat)      (Eq. 4)
            xc = self.xc_tables[qubit, :, xq, :]  # (n, 2, WORDS)
            diff = xc ^ y_hat[:, None, :]
        else:
            # d_i = popcount(Ci xor (x-hat xor y-hat))        (naive)
            m_hat = self.encoder.x_items[xq] ^ y_hat
            diff = self.prototypes[qubit] ^ m_hat[:, None, :]
        return popcount64(diff).sum(axis=2)

    def classify(
        self, qubit: np.ndarray, points: np.ndarray,
        use_precomputed: bool = True,
    ) -> np.ndarray:
        """Labels (0/1) by nearest prototype in Hamming distance."""
        d = self.hamming_distances(qubit, points,
                                   use_precomputed=use_precomputed)
        return (d[:, 1] < d[:, 0]).astype(int)

    def classify_interleaved(self, points: np.ndarray) -> np.ndarray:
        """Classify shot-major interleaved measurements."""
        n = len(points)
        qubit = np.arange(n) % self.n_qubits
        return self.classify(qubit, points)

    # ------------------------------------------------------------------ #
    def kernel_tables(self, qubit: int = 0) -> dict[str, np.ndarray]:
        """Tables for the RV64 kernel (single-qubit prototype form).

        The ISS kernel uses one prototype pair (the paper's footprint
        accounting: two 16-entry X_{C xor x-hat} tables = 512 B, "the
        memory footprint is increased by only 256 bytes" per class).
        """
        return {
            "xc0": self.xc_tables[qubit, 0],
            "xc1": self.xc_tables[qubit, 1],
            "y_items": self.encoder.y_items,
            "x_items": self.encoder.x_items,
            "c0": self.prototypes[qubit, 0],
            "c1": self.prototypes[qubit, 1],
        }

    def memory_overhead_bytes(self) -> int:
        """Extra executable footprint of the Eq.-4 precomputation."""
        # Two precomputed x tables replace the one x item table.
        return LEVELS * WORDS * 8
