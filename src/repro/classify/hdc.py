"""Binary hyperdimensional-computing classifier (paper Eqs. 3-4).

128-bit hypervectors; a point P = (x, y) is encoded as the XOR bind of
its quantized coordinates' item hypervectors (Eq. 3).  Class prototypes
C0/C1 come from encoding the calibration centers; classification compares
Hamming distances, computed with one XOR + popcount after the
precomputation trick of Eq. 4 (the ``X_{C xor x-hat}`` tables that cost
"only 256 bytes" of extra footprint).

This module is the Python reference; :mod:`repro.soc.programs` runs the
same algorithm on the RV64 ISS, and tests assert label agreement.
:class:`HDCClassifier` implements the unified
:class:`~repro.classify.base.Classifier` protocol and is registered as
``"hdc"``; the historical ``calibrate(encoder, centers)`` call form
still works behind a ``DeprecationWarning`` shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.classify.base import Classifier, validate_points, validate_shots
from repro.classify.registry import register_classifier
from repro.errors import ValidationError

__all__ = ["HDCClassifier", "HDCEncoder", "popcount64"]

DIMENSION = 128
"""Hypervector dimension in bits ("a size of 128 bits ... is sufficient")."""

WORDS = DIMENSION // 64
LEVELS = 16
"""Quantization levels per axis (2 x 16 = 32 item hypervectors total)."""

VALUE_RANGE = (-2.0, 2.0)
"""I/Q range covered by the level item hypervectors."""

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(65536)], dtype=np.int64
)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Population count of uint64 values (vectorized, 16-bit table)."""
    w = np.asarray(words, dtype=np.uint64)
    count = np.zeros(w.shape, dtype=np.int64)
    for shift in (0, 16, 32, 48):
        count += _POPCOUNT_TABLE[
            ((w >> np.uint64(shift)) & np.uint64(0xFFFF)).astype(np.int64)
        ]
    return count


@dataclass(frozen=True)
class HDCEncoder:
    """Item memory: one random hypervector per quantization level/axis."""

    x_items: np.ndarray  # (LEVELS, WORDS) uint64
    y_items: np.ndarray

    @classmethod
    def random(cls, seed: int = 42) -> "HDCEncoder":
        """Generate the item memory ("constant and generated once during
        the program compilation").

        Level hypervectors are *linearly correlated*: the first level is
        random and each subsequent level flips a fresh slice of
        ``DIMENSION/2/(LEVELS-1)`` bits, so Hamming distance between two
        levels grows with their separation -- the standard HDC encoding
        for continuous quantities (without it, nearest-prototype
        classification of noisy I/Q points would be chance).
        """
        rng = np.random.default_rng(seed)

        def level_family() -> np.ndarray:
            base_bits = rng.integers(0, 2, DIMENSION).astype(np.uint8)
            order = rng.permutation(DIMENSION)
            flips_per_level = DIMENSION // 2 // (LEVELS - 1)
            items = np.empty((LEVELS, WORDS), dtype=np.uint64)
            bits = base_bits.copy()
            for level in range(LEVELS):
                if level:
                    start = (level - 1) * flips_per_level
                    positions = order[start : start + flips_per_level]
                    bits[positions] ^= 1
                words = np.zeros(WORDS, dtype=np.uint64)
                for k in range(DIMENSION):
                    if bits[k]:
                        words[k // 64] |= np.uint64(1) << np.uint64(k % 64)
                items[level] = words
            return items

        return cls(x_items=level_family(), y_items=level_family())

    @staticmethod
    def quantize(values: np.ndarray) -> np.ndarray:
        """Map I/Q values onto [0, LEVELS) level indices."""
        lo, hi = VALUE_RANGE
        scale = LEVELS / (hi - lo)
        idx = np.floor((np.asarray(values, dtype=float) - lo) * scale)
        return np.clip(idx, 0, LEVELS - 1).astype(int)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode points (n, 2) into hypervectors (n, WORDS) -- Eq. 3.

        Malformed points (wrong shape, NaN/inf I/Q) are rejected with a
        typed :class:`~repro.errors.ValidationError` up front instead of
        quantizing garbage into silently wrong prototypes.
        """
        points = validate_points("points", points)
        xq = self.quantize(points[:, 0])
        yq = self.quantize(points[:, 1])
        return self.x_items[xq] ^ self.y_items[yq]

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "x_items": self.x_items.tolist(),
            "y_items": self.y_items.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HDCEncoder":
        return cls(
            x_items=np.asarray(data["x_items"], dtype=np.uint64),
            y_items=np.asarray(data["y_items"], dtype=np.uint64),
        )


@register_classifier
class HDCClassifier(Classifier):
    """Per-qubit HDC classifier with the Eq.-4 precomputation."""

    kind = "hdc"

    def __init__(self, encoder: HDCEncoder, prototypes: np.ndarray):
        """``prototypes``: (n_qubits, 2, WORDS) class hypervectors."""
        prototypes = np.asarray(prototypes, dtype=np.uint64)
        if prototypes.ndim != 3 or prototypes.shape[1] != 2:
            raise ValidationError(
                f"prototypes must have shape (n_qubits, 2, WORDS), "
                f"got {prototypes.shape}")
        self.encoder = encoder
        self.prototypes = prototypes
        # Eq. 4: precompute X_{C xor x-hat} per class and x level.
        # Shape (n_qubits, 2, LEVELS, WORDS).
        self.xc_tables = (
            prototypes[:, :, None, :] ^ encoder.x_items[None, None, :, :]
        )

    @property
    def n_qubits(self) -> int:
        return self.prototypes.shape[0]

    @classmethod
    def calibrate(cls, shots_0, shots_1=None, *, encoder: HDCEncoder
                  | None = None, seed: int = 42) -> "HDCClassifier":
        """Train from |0>/|1> calibration shots (the unified protocol).

        ``shots_0``/``shots_1``: (n_qubits, n_shots, 2) calibration
        shots; centers are their per-qubit means, encoded into
        prototypes.  The item memory defaults to the seeded
        :meth:`HDCEncoder.random` ("constant and generated once").

        The historical form ``calibrate(encoder, centers)`` still works
        but warns: pass the encoder by keyword and train from shots, or
        use :meth:`from_centers` for pre-estimated centers.
        """
        if isinstance(shots_0, HDCEncoder):
            warnings.warn(
                "HDCClassifier.calibrate(encoder, centers) is deprecated; "
                "use HDCClassifier.calibrate(shots_0, shots_1, "
                "encoder=...) or HDCClassifier.from_centers(centers, "
                "encoder=...)",
                DeprecationWarning, stacklevel=2)
            return cls.from_centers(shots_1, encoder=shots_0)
        s0 = validate_shots("shots_0", shots_0)
        s1 = validate_shots("shots_1", shots_1)
        if s0.shape[0] != s1.shape[0]:
            raise ValidationError(
                f"shots_0/shots_1 disagree on qubit count: "
                f"{s0.shape[0]} != {s1.shape[0]}")
        centers = np.stack([s0.mean(axis=1), s1.mean(axis=1)], axis=1)
        return cls.from_centers(centers, encoder=encoder, seed=seed)

    @classmethod
    def from_centers(cls, centers, *, encoder: HDCEncoder | None = None,
                     seed: int = 42) -> "HDCClassifier":
        """Encode per-qubit calibration centers into prototypes."""
        centers = np.asarray(centers, dtype=float)
        if centers.ndim != 3 or centers.shape[1:] != (2, 2):
            raise ValidationError(
                f"centers must have shape (n_qubits, 2, 2), "
                f"got {centers.shape}")
        if encoder is None:
            encoder = HDCEncoder.random(seed=seed)
        protos = np.stack(
            [encoder.encode(centers[:, 0, :]),
             encoder.encode(centers[:, 1, :])],
            axis=1,
        )
        return cls(encoder, protos)

    # ------------------------------------------------------------------ #
    # The unified Classifier protocol
    # ------------------------------------------------------------------ #
    def predict(self, iq, qubit=None) -> np.ndarray:
        """Vectorized labels; ``qubit=None`` = interleaved layout."""
        pts = validate_points("iq", iq)
        return self.classify(self.resolve_qubit(pts, qubit), pts)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "encoder": self.encoder.to_dict(),
            "prototypes": self.prototypes.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HDCClassifier":
        return cls(
            HDCEncoder.from_dict(data["encoder"]),
            np.asarray(data["prototypes"], dtype=np.uint64),
        )

    # ------------------------------------------------------------------ #
    def hamming_distances(
        self, qubit: np.ndarray, points: np.ndarray,
        use_precomputed: bool = True,
    ) -> np.ndarray:
        """Hamming distances to both prototypes: (n, 2)."""
        qubit = np.asarray(qubit, dtype=int)
        points = np.atleast_2d(np.asarray(points, dtype=float))
        xq = self.encoder.quantize(points[:, 0])
        yq = self.encoder.quantize(points[:, 1])
        y_hat = self.encoder.y_items[yq]  # (n, WORDS)
        if use_precomputed:
            # d_i = popcount(X_{Ci xor x-hat} xor y-hat)      (Eq. 4)
            xc = self.xc_tables[qubit, :, xq, :]  # (n, 2, WORDS)
            diff = xc ^ y_hat[:, None, :]
        else:
            # d_i = popcount(Ci xor (x-hat xor y-hat))        (naive)
            m_hat = self.encoder.x_items[xq] ^ y_hat
            diff = self.prototypes[qubit] ^ m_hat[:, None, :]
        return popcount64(diff).sum(axis=2)

    def classify(
        self, qubit: np.ndarray, points: np.ndarray,
        use_precomputed: bool = True,
    ) -> np.ndarray:
        """Labels (0/1) by nearest prototype in Hamming distance."""
        d = self.hamming_distances(qubit, points,
                                   use_precomputed=use_precomputed)
        return (d[:, 1] < d[:, 0]).astype(int)

    def classify_interleaved(self, points: np.ndarray) -> np.ndarray:
        """Classify shot-major interleaved measurements."""
        n = len(points)
        qubit = np.arange(n) % self.n_qubits
        return self.classify(qubit, points)

    # ------------------------------------------------------------------ #
    def kernel_tables(self, qubit: int = 0) -> dict[str, np.ndarray]:
        """Tables for the RV64 kernel (single-qubit prototype form).

        The ISS kernel uses one prototype pair (the paper's footprint
        accounting: two 16-entry X_{C xor x-hat} tables = 512 B, "the
        memory footprint is increased by only 256 bytes" per class).
        """
        return {
            "xc0": self.xc_tables[qubit, 0],
            "xc1": self.xc_tables[qubit, 1],
            "y_items": self.encoder.y_items,
            "x_items": self.encoder.x_items,
            "c0": self.prototypes[qubit, 0],
            "c1": self.prototypes[qubit, 1],
        }

    def memory_overhead_bytes(self) -> int:
        """Extra executable footprint of the Eq.-4 precomputation."""
        # Two precomputed x tables replace the one x item table.
        return LEVELS * WORDS * 8
