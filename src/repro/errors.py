"""Structured exception taxonomy shared by every repro package.

The seed code raised a zoo of bare ``RuntimeError``/``ValueError``
subclasses defined next to their call sites, which made flow-level
recovery impossible: a library build could not tell a solver
non-convergence (retryable, quarantineable) from a programming error.
Every recoverable failure now derives from :class:`ReproError` and is
tagged by layer:

``ReproError``
    Base class; still a ``RuntimeError`` so pre-existing ``except
    RuntimeError`` call sites keep working.
``SolverError``
    The SPICE layer could not produce a solution: Newton-Raphson
    non-convergence at every gmin/source step
    (:class:`~repro.spice.solver.ConvergenceError`), a singular MNA
    matrix, or an exhausted per-solve budget
    (:class:`SolverBudgetError`).
``CharacterizationError``
    A cell/arc could not be characterized.  Carries the cell and arc so
    the resilient library build can quarantine precisely.
``WorkloadError``
    An ISS workload failed: runaway execution
    (:class:`~repro.soc.cpu.HaltError`) or a cycle-budget watchdog trip
    (:class:`HangError`) -- the crash/hang buckets of a fault-injection
    campaign.
``ValidationError``
    A malformed *input* was rejected before any compute ran: a broken
    netlist (:class:`NetlistError`, naming the offending element or
    node) or an out-of-range configuration (:class:`ConfigError`,
    naming the field).  Both also derive from ``ValueError`` so
    pre-existing ``except ValueError`` call sites (and tests) keep
    working.
``ServeError``
    The classification service (:mod:`repro.serve`) could not serve a
    request: the bounded queue was full
    (:class:`ServeOverloadError`, the 429-style back-pressure signal)
    or the request's deadline expired before its labels were delivered
    (:class:`DeadlineError`, the 408 path).  A malformed wire request
    is a :class:`ServeProtocolError`, which stays under
    ``ValidationError`` like every other bad-input rejection.
"""

from __future__ import annotations

__all__ = [
    "CharacterizationError",
    "ConfigError",
    "DeadlineError",
    "HangError",
    "NetlistError",
    "ReproError",
    "ServeError",
    "ServeOverloadError",
    "ServeProtocolError",
    "SolverBudgetError",
    "SolverError",
    "ValidationError",
    "WorkloadError",
]


class ReproError(RuntimeError):
    """Base class for every recoverable failure raised by repro code."""


class SolverError(ReproError):
    """The circuit solver failed to produce a solution."""


class SolverBudgetError(SolverError):
    """A per-solve iteration or wall-clock budget was exhausted.

    Distinct from plain non-convergence so callers can tell "this solve
    is hopeless" from "this solve is too expensive" -- the
    characterization retry ladder treats them the same, a debugging
    session does not.
    """


class CharacterizationError(ReproError):
    """One cell (or one timing arc) could not be characterized."""

    def __init__(self, message: str, cell: str = "", arc: str = ""):
        super().__init__(message)
        self.cell = cell
        self.arc = arc


class ValidationError(ReproError, ValueError):
    """A malformed input was rejected before any compute ran.

    The dual ``ValueError`` base keeps the seed contract: call sites
    that guarded parse/validate paths with ``except ValueError`` still
    catch the typed form, while flow-level recovery can now tell "bad
    input" from "good input, failed compute".
    """


class NetlistError(ValidationError):
    """A circuit/netlist is structurally invalid (the assault harness's
    edge tier feeds these: dangling nodes, NaN parameters, zero-width
    devices, combinational loops...)."""

    def __init__(self, message: str, element: str = ""):
        super().__init__(message)
        self.element = element
        """The offending element, node, or net name (may be empty)."""


class ConfigError(ValidationError):
    """A configuration value is out of range or malformed."""

    def __init__(self, message: str, field: str = ""):
        super().__init__(message)
        self.field = field
        """The offending config field name (may be empty)."""


class ServeError(ReproError):
    """The classification service could not serve a request."""

    #: HTTP-style status code carried on the wire (subclasses override).
    code = 500


class ServeOverloadError(ServeError):
    """The bounded request queue was full; the request was rejected
    immediately (429-style back-pressure, never a hang)."""

    code = 429


class DeadlineError(ServeError):
    """A request's deadline expired before its labels were delivered
    (queued too long, or the client stalled reading its response)."""

    code = 408


class ServeProtocolError(ValidationError):
    """A malformed wire request was rejected before classification.

    Stays under :class:`ValidationError` (bad input, typed, names the
    offender) -- the 400 path of the service.
    """

    code = 400

    def __init__(self, message: str, field: str = ""):
        super().__init__(message)
        self.field = field
        """The offending request field name (may be empty)."""


class WorkloadError(ReproError):
    """An ISS workload run failed."""


class HangError(WorkloadError):
    """A cycle-budget watchdog expired before the workload halted."""
