"""Reliability layer: fault injection, resilience and coverage.

The umbrella project behind the source paper is "Intelligent Methods
for Test and Reliability"; this package supplies the reliability half
of that story for the reproduction:

* :mod:`~repro.reliability.faults`   -- seeded SEU fault models
  (register file, data memory, L1D data/tag arrays);
* :mod:`~repro.reliability.injector` -- applies flips to a live ISS and
  drives runs with scheduled injections;
* :mod:`~repro.reliability.campaign` -- the campaign runner: outcome
  buckets (masked / SDC / crash / hang), per-structure AVF, and a
  software-TMR mitigation knob;
* :mod:`~repro.reliability.coverage` -- :class:`CoverageReport` for
  resilient library characterization (graceful degradation instead of
  flow abort).

See ``docs/ARCHITECTURE.md`` ("Reliability & fault injection") for how
this layer hooks into the Fig. 1 stack.
"""

from repro.reliability.campaign import (
    CampaignConfig,
    CampaignResult,
    InjectionRecord,
    WorkloadSpec,
    hdc_workload,
    knn_workload,
    majority_vote,
    qec_workload,
    run_campaign,
)
from repro.reliability.coverage import CoverageReport
from repro.reliability.faults import ALL_STRUCTURES, BitFlip, FaultPlanner
from repro.reliability.injector import inject, run_with_faults

__all__ = [
    "ALL_STRUCTURES",
    "BitFlip",
    "CampaignConfig",
    "CampaignResult",
    "CoverageReport",
    "FaultPlanner",
    "InjectionRecord",
    "WorkloadSpec",
    "hdc_workload",
    "inject",
    "knn_workload",
    "majority_vote",
    "qec_workload",
    "run_campaign",
    "run_with_faults",
]
