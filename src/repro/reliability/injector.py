"""Applies :class:`~repro.reliability.faults.BitFlip` upsets to a live CPU.

The injector owns the mapping from abstract fault models to ISS state:
register flips respect RV64 two's-complement representation and the
hard-wired x0; cache strikes are resolved against the lines actually
resident at the injection instant; tag strikes use the cache's own
SEU hook (:meth:`repro.soc.cache.Cache.corrupt_tag`).

:func:`run_with_faults` is the campaign's inner loop: step the CPU,
firing each scheduled fault the first time the cycle counter reaches
its injection cycle, under the same instruction budget as a normal run
plus a cycle-count watchdog (see :meth:`repro.soc.cpu.CPU.run` for why
both are needed).
"""

from __future__ import annotations

from repro.errors import HangError
from repro.reliability.faults import BitFlip
from repro.soc.cpu import CPU, ExecutionStats, HaltError

__all__ = ["inject", "run_with_faults"]

_MASK64 = (1 << 64) - 1


def _flip_register(cpu: CPU, reg: int, bit: int) -> bool:
    """Flip one bit of one integer register; False when x0 (masked)."""
    reg %= 32
    if reg == 0:
        return False  # x0 is hard-wired zero: strike absorbed by design
    raw = (cpu.x[reg] & _MASK64) ^ (1 << (bit % 64))
    cpu.x[reg] = raw - (1 << 64) if raw >> 63 else raw
    return True


def _resolve_line(cpu: CPU, selector: int) -> tuple[int, int, bool] | None:
    """Pick a resident L1D line from a raw selector; None if cache empty."""
    lines = cpu.caches.l1d.lines()
    if not lines:
        return None
    return lines[selector % len(lines)]


def _line_base_address(cpu: CPU, set_idx: int, tag: int) -> int:
    """Invert :meth:`Cache._locate`: (set, tag) -> line base address."""
    cache = cpu.caches.l1d
    return (tag * cache.n_sets + set_idx) * cache.line_bytes


def inject(cpu: CPU, fault: BitFlip) -> bool:
    """Apply one fault to the CPU *now*; True if state actually changed.

    An un-applied fault (strike on x0, or on a cache with no resident
    victim line) is architecturally masked by construction and is
    reported as such by the campaign.
    """
    if fault.structure == "regfile":
        return _flip_register(cpu, fault.index, fault.bit)
    if fault.structure == "dmem":
        cpu.memory.flip_bit(fault.index, fault.bit % 8)
        return True
    if fault.structure == "l1d_data":
        line = _resolve_line(cpu, fault.index)
        if line is None:
            return False
        set_idx, tag, _dirty = line
        base = _line_base_address(cpu, set_idx, tag)
        # The ISS keeps a single coherent byte store, so a corrupted
        # cached copy is modeled by flipping the backing byte while the
        # line is resident: subsequent hits read the flipped value,
        # exactly as the physical data array would return it.
        cpu.memory.flip_bit(base + fault.offset % cpu.caches.l1d.line_bytes,
                            fault.bit % 8)
        return True
    if fault.structure == "l1d_tag":
        line = _resolve_line(cpu, fault.index)
        if line is None:
            return False
        set_idx, tag, _dirty = line
        return cpu.caches.l1d.corrupt_tag(set_idx, tag)
    raise ValueError(f"unknown structure {fault.structure!r}")


def run_with_faults(
    cpu: CPU,
    faults: list[BitFlip],
    max_instructions: int = 50_000_000,
    max_cycles: int | None = None,
) -> tuple[ExecutionStats, list[tuple[BitFlip, bool]]]:
    """Run to ECALL, firing faults as their cycles come up.

    Returns ``(stats, [(fault, applied), ...])``.  Faults scheduled past
    the actual halt cycle never fire (``applied=False``): the particle
    struck after the computation finished.  Raises
    :class:`~repro.soc.cpu.HaltError` /
    :class:`~repro.errors.HangError` exactly like
    :meth:`~repro.soc.cpu.CPU.run` -- classification into outcome
    buckets is the campaign's job.
    """
    pending = sorted(faults, key=lambda f: f.cycle)
    fired: list[tuple[BitFlip, bool]] = []
    i = 0
    while not cpu.halted:
        while i < len(pending) and cpu.stats.cycles >= pending[i].cycle:
            fired.append((pending[i], inject(cpu, pending[i])))
            i += 1
        if cpu.stats.instructions >= max_instructions:
            raise HaltError(
                f"exceeded {max_instructions} instructions without ECALL"
            )
        if max_cycles is not None and cpu.stats.cycles > max_cycles:
            raise HangError(
                f"cycle watchdog expired: {cpu.stats.cycles} > "
                f"{max_cycles} cycles without ECALL"
            )
        cpu.step()
    fired.extend((f, False) for f in pending[i:])
    return cpu.stats, fired
