"""SEU campaign runner: N seeded injections, four outcome buckets, AVF.

The methodology is the standard statistical fault-injection flow (one
fault per run against a golden reference):

1. run the workload once fault-free -> golden output + golden cycle
   count;
2. plan ``n_injections`` seeded :class:`~repro.reliability.faults.BitFlip`
   upsets over the target structures, uniformly across the golden
   cycle span;
3. re-run the workload once per fault and bucket the outcome:

   ``masked``
       run completed, output identical to golden (includes strikes
       that could not land: x0, empty cache victim, post-halt cycle);
   ``sdc``
       run completed, output *differs* -- silent data corruption, the
       reliability-critical bucket for a readout classifier (a
       misclassified qubit state poisons the QEC layer above);
   ``crash``
       the ISS raised (:class:`~repro.soc.cpu.HaltError`, decode error,
       misaligned PC...) -- detectable by an exception/trap handler;
   ``hang``
       the cycle-budget watchdog expired -- detectable by a timeout.

The architectural-vulnerability factor of a structure is the fraction
of its injections that are *not* masked.  The ``tmr`` knob models
task-level software triple-modular redundancy (the classic
mitigation): three independent executions with a majority vote on each
output word, so a single-run SDC is outvoted by the two clean replicas
and moves to ``masked``; crashes and hangs remain visible (they are
*detected* rather than silent, which is the point of TMR).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

from repro import telemetry
from repro.errors import HangError, ReproError
from repro.reliability.faults import ALL_STRUCTURES, BitFlip, FaultPlanner
from repro.reliability.injector import run_with_faults
from repro.runtime import (
    ResultCache,
    default_enabled,
    get_executor,
    stable_digest,
)
from repro.soc.cpu import CPU
from repro.soc.soc import RocketSoC

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "InjectionRecord",
    "WorkloadSpec",
    "hdc_workload",
    "knn_workload",
    "majority_vote",
    "qec_workload",
    "run_campaign",
]

OUTCOMES = ("masked", "sdc", "crash", "hang")


@dataclass(frozen=True)
class WorkloadSpec:
    """A re-runnable workload: the campaign's unit of execution.

    Built from :meth:`RocketSoC.setup_knn`-style triples (see the
    adapters below); every ``prepare()`` call must yield an identical
    initial machine state or determinism is lost.
    """

    name: str
    prepare: Callable[[], CPU]
    read_output: Callable[[CPU], np.ndarray]
    data_regions: list[tuple[int, int]] = field(default_factory=list)
    factory: tuple | None = None
    """Picklable recipe ``(builder, payload)`` that rebuilds this spec
    (see ``_BUILDERS``).  The adapters below set it; a spec without one
    still works but confines parallel campaigns to in-process backends
    (closures cannot cross a process boundary)."""


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign."""

    n_injections: int = 200
    seed: int = 2023
    structures: tuple[str, ...] = ALL_STRUCTURES
    tmr: bool = False
    watchdog_factor: float = 4.0
    """Hang threshold as a multiple of the golden cycle count."""
    max_instructions: int = 50_000_000

    # -- provenance / cache identity ---------------------------------- #
    def to_dict(self) -> dict:
        """Plain-data view; round-trips through :meth:`from_dict`."""
        from repro.runtime.digest import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        from repro.runtime.digest import config_from_dict

        return config_from_dict(cls, data)

    def config_digest(self) -> str:
        """Stable content hash: the cache key / provenance stamp."""
        return stable_digest(self)


@dataclass(frozen=True)
class InjectionRecord:
    """Outcome of one injection run."""

    fault: BitFlip
    outcome: str
    applied: bool
    cycles: int
    detail: str = ""


@dataclass
class CampaignResult:
    """All records of one campaign plus the golden reference."""

    workload: str
    config: CampaignConfig
    golden_cycles: int
    golden_output: np.ndarray
    records: list[InjectionRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    """Wall time of the whole campaign (golden run + injections)."""

    @property
    def injections_per_second(self) -> float:
        """Campaign throughput; 0.0 until the campaign has run."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return len(self.records) / self.wall_seconds

    # -------------------------------------------------------------- #
    def counts(self, structure: str | None = None) -> dict[str, int]:
        """Outcome histogram, optionally restricted to one structure."""
        out = dict.fromkeys(OUTCOMES, 0)
        for r in self.records:
            if structure is None or r.fault.structure == structure:
                out[r.outcome] += 1
        return out

    def structures(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.fault.structure, None)
        return list(seen)

    def avf(self, structure: str | None = None) -> float:
        """Architectural vulnerability factor: P(outcome != masked)."""
        c = self.counts(structure)
        n = sum(c.values())
        return (n - c["masked"]) / n if n else 0.0

    def rate(self, outcome: str, structure: str | None = None) -> float:
        c = self.counts(structure)
        n = sum(c.values())
        return c[outcome] / n if n else 0.0

    def bucket_signature(self) -> tuple:
        """Hashable full-campaign signature for determinism checks:
        every record's (structure, cycle, index, bit, outcome)."""
        return tuple(
            (r.fault.structure, r.fault.cycle, r.fault.index,
             r.fault.bit, r.fault.offset, r.outcome, r.applied)
            for r in self.records
        )

    def summary(self) -> str:
        """Human-readable per-structure table."""
        lines = [
            f"SEU campaign: {self.workload}  "
            f"(n={len(self.records)}, seed={self.config.seed}, "
            f"tmr={'on' if self.config.tmr else 'off'})",
            f"golden run: {self.golden_cycles} cycles",
            f"{'structure':<10} {'n':>5} {'masked':>7} {'sdc':>5} "
            f"{'crash':>6} {'hang':>5} {'AVF':>7}",
        ]
        for s in self.structures() + [None]:
            c = self.counts(s)
            n = sum(c.values())
            label = s if s is not None else "TOTAL"
            lines.append(
                f"{label:<10} {n:>5} {c['masked']:>7} {c['sdc']:>5} "
                f"{c['crash']:>6} {c['hang']:>5} {self.avf(s):>6.1%}"
            )
        return "\n".join(lines)


def majority_vote(replicas: list[np.ndarray]) -> np.ndarray:
    """Element-wise majority over an odd number of equal-length outputs.

    Generic over integer payloads (labels, packed words): each element
    takes the value that a strict majority of replicas agree on; with no
    majority (possible only for >=3 distinct values) the first replica
    wins, which is how a real voter with an ordered input bus breaks
    ties.
    """
    if not replicas or len(replicas) % 2 == 0:
        raise ValueError("need an odd, non-zero replica count")
    stacked = np.stack([np.asarray(r) for r in replicas])
    need = len(replicas) // 2 + 1
    out = stacked[0].copy()
    for k in range(1, len(replicas)):
        votes = (stacked == stacked[k]).sum(axis=0)
        out = np.where(votes >= need, stacked[k], out)
    return out


def _classify(
    spec: WorkloadSpec,
    fault: BitFlip,
    golden: np.ndarray,
    max_cycles: int,
    config: CampaignConfig,
) -> InjectionRecord:
    """Execute one injection run and bucket its outcome."""
    cpu = spec.prepare()
    try:
        stats, fired = run_with_faults(
            cpu, [fault],
            max_instructions=config.max_instructions,
            max_cycles=max_cycles,
        )
    except HangError as exc:
        return InjectionRecord(fault, "hang", True, max_cycles, str(exc))
    except ReproError as exc:
        return InjectionRecord(fault, "crash", True, cpu.stats.cycles,
                               str(exc))
    except Exception as exc:  # decode faults, misaligned accesses, ...
        return InjectionRecord(fault, "crash", True, cpu.stats.cycles,
                               f"{type(exc).__name__}: {exc}")
    applied = fired[0][1] if fired else False
    try:
        output = spec.read_output(cpu)
    except Exception as exc:
        return InjectionRecord(fault, "crash", applied, stats.cycles,
                               f"output unreadable: {exc}")
    if config.tmr:
        # Task-level TMR: the faulty replica is outvoted by two clean
        # ones.  The clean replicas are identical to the golden run by
        # determinism, so the vote is computed, not assumed.
        output = majority_vote([output, golden, golden])
    if np.array_equal(output, golden):
        return InjectionRecord(fault, "masked", applied, stats.cycles)
    mismatches = int(np.count_nonzero(output != golden))
    return InjectionRecord(fault, "sdc", applied, stats.cycles,
                           f"{mismatches} output word(s) corrupted")


# ------------------------------------------------------------------ #
# Worker-side plumbing for parallel campaigns.  A worker process gets a
# picklable *recipe* for the workload (``WorkloadSpec.factory``) rather
# than the spec itself (whose prepare/read_output are closures); the
# rebuilt spec is memoized per worker so the setup cost is paid once,
# not once per injection.
# ------------------------------------------------------------------ #
_SPEC_MEMO: dict[str, WorkloadSpec] = {}


def _resolve_spec(spec_ref) -> WorkloadSpec:
    if isinstance(spec_ref, WorkloadSpec):
        return spec_ref
    key, builder, payload = spec_ref
    spec = _SPEC_MEMO.get(key)
    if spec is None:
        spec = _BUILDERS[builder](**payload)
        _SPEC_MEMO[key] = spec
    return spec


def _injection_task(spec_ref, golden, max_cycles, config, fault):
    """One injection run: the campaign fan-out's unit of work."""
    spec = _resolve_spec(spec_ref)
    with telemetry.span("reliability.injection", structure=fault.structure,
                        cycle=fault.cycle) as sp:
        record = _classify(spec, fault, golden, max_cycles, config)
        sp.set(outcome=record.outcome)
    return record


def run_campaign(
    spec: WorkloadSpec,
    config: CampaignConfig | None = None,
    *,
    jobs: int | None = None,
    cache: bool | None = None,
) -> CampaignResult:
    """Run a full campaign; deterministic given (spec data, config).

    ``jobs`` distributes injections over the :mod:`repro.runtime`
    executor (``None`` defers to ``REPRO_JOBS``); the plan is drawn from
    the campaign seed *before* the fan-out and records merge in plan
    order, so outcome buckets and AVF are identical at any worker count.
    ``cache`` memoizes finished campaigns on disk keyed by the workload
    recipe + config digest (``None``: enabled iff ``REPRO_CACHE_DIR`` is
    set); specs without a ``factory`` recipe are never disk-cached.
    """
    config = config or CampaignConfig()
    use_cache = default_enabled() if cache is None else cache
    cache_store = cache_key = None
    if use_cache and spec.factory is not None:
        cache_store = ResultCache(namespace="campaign")
        cache_key = stable_digest({"factory": spec.factory,
                                   "config": config})
        cached = cache_store.get(cache_key)
        if cached is not None:
            return cached

    t0 = time.perf_counter()
    executor = get_executor(jobs)
    with telemetry.span("reliability.campaign", workload=spec.name,
                        n_injections=config.n_injections, tmr=config.tmr,
                        jobs=executor.jobs, backend=executor.backend) as sp:
        with telemetry.span("reliability.golden_run"):
            golden_cpu = spec.prepare()
            golden_stats = golden_cpu.run(
                max_instructions=config.max_instructions
            )
            golden = spec.read_output(golden_cpu)
        max_cycles = int(golden_stats.cycles * config.watchdog_factor) + 1000

        planner = FaultPlanner(config.seed)
        faults = planner.plan(
            config.n_injections,
            cycle_max=golden_stats.cycles,
            data_regions=spec.data_regions,
            structures=config.structures,
        )
        result = CampaignResult(
            workload=spec.name,
            config=config,
            golden_cycles=golden_stats.cycles,
            golden_output=golden,
        )
        if executor.jobs > 1 and spec.factory is not None:
            builder, payload = spec.factory
            spec_ref = (stable_digest(spec.factory), builder, payload)
        else:
            spec_ref = spec
        task = partial(_injection_task, spec_ref, golden, max_cycles, config)
        with telemetry.span("reliability.injections", n=len(faults)):
            for record in executor.map(task, faults):
                result.records.append(record)
                telemetry.count("reliability.injections")
                telemetry.count(f"reliability.outcome.{record.outcome}")
        result.wall_seconds = time.perf_counter() - t0
        if telemetry.enabled():
            telemetry.gauge("reliability.injections_per_sec",
                            result.injections_per_second)
            sp.set(golden_cycles=result.golden_cycles,
                   injections_per_sec=round(result.injections_per_second, 2),
                   **result.counts())
    if cache_store is not None and cache_key is not None:
        cache_store.put(cache_key, result)
    return result


# ------------------------------------------------------------------ #
# Workload adapters: RocketSoC setup triples -> WorkloadSpec.
# ------------------------------------------------------------------ #
def knn_workload(
    centers: np.ndarray,
    measurements: np.ndarray,
    n_qubits: int,
    soc: RocketSoC | None = None,
    with_sqrt: bool = False,
) -> WorkloadSpec:
    """The paper's kNN readout classifier as a campaign target."""
    factory = None
    if soc is None:
        factory = ("knn", {"centers": centers, "measurements": measurements,
                           "n_qubits": n_qubits, "with_sqrt": with_sqrt})
    soc = soc or RocketSoC()
    prepare, read_output, regions = soc.setup_knn(
        centers, measurements, n_qubits, with_sqrt=with_sqrt
    )
    return WorkloadSpec("knn", prepare, read_output, regions,
                        factory=factory)


def hdc_workload(
    tables: bytes,
    measurements: np.ndarray,
    n_qubits: int,
    soc: RocketSoC | None = None,
) -> WorkloadSpec:
    """The HDC readout classifier as a campaign target."""
    factory = None
    if soc is None:
        factory = ("hdc", {"tables": tables, "measurements": measurements,
                           "n_qubits": n_qubits})
    soc = soc or RocketSoC()
    prepare, read_output, regions = soc.setup_hdc(
        tables, measurements, n_qubits
    )
    return WorkloadSpec("hdc", prepare, read_output, regions,
                        factory=factory)


def qec_workload(
    bits: np.ndarray,
    distance: int,
    soc: RocketSoC | None = None,
) -> WorkloadSpec:
    """Repetition-code majority decoding as a campaign target."""
    factory = None
    if soc is None:
        factory = ("qec", {"bits": bits, "distance": distance})
    soc = soc or RocketSoC()
    prepare, read_output, regions = soc.setup_qec_decode(bits, distance)
    return WorkloadSpec("qec", prepare, read_output, regions,
                        factory=factory)


#: Registry the worker-side ``_resolve_spec`` rebuilds specs from; the
#: ``factory`` recipes above name entries here.
_BUILDERS: dict[str, Callable[..., WorkloadSpec]] = {
    "knn": knn_workload,
    "hdc": hdc_workload,
    "qec": qec_workload,
}
