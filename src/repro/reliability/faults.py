"""Single-event-upset fault models for the SoC ISS.

A fault is one :class:`BitFlip`: a structure, a scheduled injection
cycle, a location within the structure and a bit position.  Plans are
produced by :class:`FaultPlanner` from a seeded generator, so a campaign
is reproducible bit-for-bit from ``(seed, n_injections, structures)``
alone -- re-running a campaign with the same configuration must land
every flip in the same place at the same cycle.

Structures model the SEU-susceptible SRAM/flip-flop arrays of the
paper's Rocket-class SoC at 10 K:

``regfile``
    The 31 writable integer registers (x0 is hard-wired; a strike on it
    is architecturally masked and the planner still schedules it so AVF
    accounting stays unbiased).
``dmem``
    Workload data words in main memory (calibration centers,
    measurement buffers, HDC tables).
``l1d_data``
    The L1 data-cache data array: the flip lands in a byte of a
    *currently resident* line, visible to subsequent hits and
    writebacks.
``l1d_tag``
    The L1 data-cache tag array: the struck line stops matching its
    address and effectively vanishes (a timing fault, not a data
    fault, in a system whose backing store is coherent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ALL_STRUCTURES", "BitFlip", "FaultPlanner"]

#: Every structure the injector knows how to strike.
ALL_STRUCTURES = ("regfile", "dmem", "l1d_data", "l1d_tag")

_XLEN = 64
_N_REGS = 32


@dataclass(frozen=True)
class BitFlip:
    """One scheduled single-bit upset.

    ``index`` is structure-relative: a register number for ``regfile``,
    an absolute byte address for ``dmem``, and a raw selector for the
    cache structures (resolved against the set of resident lines at
    injection time, which is deterministic for a deterministic
    workload).  ``offset`` picks the byte within a cache line and is 0
    elsewhere.  ``bit`` is the bit within the 64-bit register
    (``regfile``) or within the byte (everything else).
    """

    structure: str
    cycle: int
    index: int
    bit: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.structure not in ALL_STRUCTURES:
            raise ValueError(f"unknown structure {self.structure!r}; "
                             f"expected one of {ALL_STRUCTURES}")


class FaultPlanner:
    """Seeded sampler of injection plans."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def plan(
        self,
        n_injections: int,
        cycle_max: int,
        data_regions: list[tuple[int, int]],
        structures: tuple[str, ...] = ALL_STRUCTURES,
    ) -> list[BitFlip]:
        """Sample ``n_injections`` flips over ``structures``.

        Injection cycles are uniform over ``[0, cycle_max)`` (the golden
        run's span); ``dmem`` addresses are uniform over the workload's
        live ``data_regions``.  Structures are assigned round-robin so
        per-structure sample counts differ by at most one -- AVF
        estimates then have comparable confidence across structures.
        """
        if n_injections <= 0:
            raise ValueError("need a positive injection count")
        if cycle_max <= 0:
            raise ValueError("need a positive cycle span")
        if not structures:
            raise ValueError("need at least one target structure")
        sizes = [max(1, size) for _base, size in data_regions] or [1]
        total = sum(sizes)
        rng = self._rng
        faults: list[BitFlip] = []
        for k in range(n_injections):
            structure = structures[k % len(structures)]
            cycle = int(rng.integers(0, cycle_max))
            if structure == "regfile":
                index = int(rng.integers(0, _N_REGS))
                bit = int(rng.integers(0, _XLEN))
                offset = 0
            elif structure == "dmem":
                # Area-weighted region choice, then a byte within it.
                pick = int(rng.integers(0, total))
                index = 0
                for (base, size), w in zip(data_regions, sizes):
                    if pick < w:
                        index = base + pick
                        break
                    pick -= w
                bit = int(rng.integers(0, 8))
                offset = 0
            else:  # l1d_data / l1d_tag: selector resolved at inject time
                index = int(rng.integers(0, 1 << 30))
                bit = int(rng.integers(0, 8))
                offset = int(rng.integers(0, 64))
            faults.append(BitFlip(structure=structure, cycle=cycle,
                                  index=index, bit=bit, offset=offset))
        return faults
