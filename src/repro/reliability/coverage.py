"""Coverage accounting for resilient characterization runs.

A library build used to be all-or-nothing: one unconverged transient in
~10^5 cell-characterization solves aborted the entire corner.  The
resilient build (:func:`repro.cells.library.build_library`) instead
records, per cell, whether it was characterized cleanly, recovered on
the retry ladder, or quarantined -- and returns this report alongside
the (possibly partial) library so flow stages can decide whether the
coverage is acceptable instead of dying on the first bad corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CoverageReport"]


@dataclass
class CoverageReport:
    """Per-cell outcome of one library characterization run."""

    library: str
    total: int = 0
    clean: list[str] = field(default_factory=list)
    degraded: dict[str, str] = field(default_factory=dict)
    """Cells that needed the retry ladder: name -> how they recovered."""
    quarantined: dict[str, str] = field(default_factory=dict)
    """Cells the build gave up on: name -> final failure."""
    build_seconds: dict[str, float] = field(default_factory=dict)
    """Per-cell characterization wall time: name -> seconds (includes
    quarantined cells -- the time was spent either way)."""
    total_seconds: float = 0.0
    """Wall time of the whole library build."""

    # -------------------------------------------------------------- #
    @property
    def characterized(self) -> int:
        return len(self.clean) + len(self.degraded)

    @property
    def coverage(self) -> float:
        """Fraction of the catalog that made it into the library."""
        return self.characterized / self.total if self.total else 1.0

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def require(self, min_coverage: float = 1.0) -> None:
        """Raise if coverage fell below a floor -- the hook for flow
        stages that cannot tolerate holes (e.g. technology mapping needs
        every logic footprint present)."""
        from repro.errors import CharacterizationError

        if self.coverage < min_coverage:
            worst = ", ".join(
                f"{name} ({reason})"
                for name, reason in list(self.quarantined.items())[:5]
            )
            raise CharacterizationError(
                f"library {self.library!r} coverage "
                f"{self.coverage:.1%} < required {min_coverage:.1%}; "
                f"quarantined: {worst}"
            )

    def slowest_cells(self, n: int = 5) -> list[tuple[str, float]]:
        """The ``n`` most expensive cells of the build, slowest first."""
        ranked = sorted(self.build_seconds.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def summary(self) -> str:
        lines = [
            f"coverage report: {self.library}",
            f"  catalog {self.total} cells | clean {len(self.clean)} | "
            f"degraded {len(self.degraded)} | "
            f"quarantined {len(self.quarantined)} "
            f"({self.coverage:.1%} coverage)",
        ]
        if self.total_seconds:
            lines.append(f"  build time {self.total_seconds:.2f} s")
        for name, how in self.degraded.items():
            lines.append(f"  degraded    {name}: {how}")
        for name, reason in self.quarantined.items():
            lines.append(f"  quarantined {name}: {reason}")
        return "\n".join(lines)
