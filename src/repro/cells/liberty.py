"""Liberty (.lib) writer and reader for characterized libraries.

The paper's flow emits "standard cell libraries ... in the industry-
standard Liberty format making them usable in most established EDA tools".
This module writes the NLDM subset our STA/power tools need and parses it
back, so libraries can be inspected, diffed and round-tripped through
files exactly like the real flow's artifacts.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.cells.characterize import CharacterizedCell, CharacterizedPin
from repro.cells.library import CellLibrary
from repro.cells.nldm import NLDMTable, TimingArc

__all__ = ["write_liberty", "read_liberty", "dumps", "loads"]

_TIME_UNIT = 1e-9  # ns
_CAP_UNIT = 1e-15  # fF
_POWER_UNIT = 1e-9  # nW


def _fmt_table(name: str, table: NLDMTable, indent: str) -> list[str]:
    lines = [f'{indent}{name} (tbl_7x7) {{']
    idx1 = ", ".join(f"{s / _TIME_UNIT:.6g}" for s in table.slews)
    idx2 = ", ".join(f"{c / _CAP_UNIT:.6g}" for c in table.loads)
    lines.append(f'{indent}  index_1 ("{idx1}");')
    lines.append(f'{indent}  index_2 ("{idx2}");')
    lines.append(f"{indent}  values ( \\")
    for row in table.values:
        vals = ", ".join(f"{v / _TIME_UNIT:.6g}" for v in row)
        lines.append(f'{indent}    "{vals}", \\')
    lines[-1] = lines[-1].rstrip(", \\") + '"'
    lines[-1] = lines[-1]  # keep the final row's closing quote
    lines.append(f"{indent}  );")
    lines.append(f"{indent}}}")
    return lines


def dumps(library: CellLibrary) -> str:
    """Serialize a library to Liberty text."""
    out: list[str] = []
    out.append(f"library ({library.name}) {{")
    out.append('  delay_model : "table_lookup";')
    out.append('  time_unit : "1ns";')
    out.append('  capacitive_load_unit (1, ff);')
    out.append('  leakage_power_unit : "1nW";')
    out.append(f"  nom_temperature : {library.temperature_k:g};")
    out.append(f"  nom_voltage : {library.vdd:g};")
    for cell in library.cells.values():
        out.append(f"  cell ({cell.name}) {{")
        out.append(f"    area : {cell.area_um2:.6g};")
        out.append(f'    footprint : "{cell.footprint}";')
        out.append(
            f"    cell_leakage_power : {cell.leakage_avg / _POWER_UNIT:.6g};"
        )
        out.append(
            f"    switching_energy : {cell.switching_energy:.6g};"
        )
        if cell.is_sequential:
            out.append(f'    ff_data_pin : "{cell.data_pin}";')
            out.append(f'    ff_clock_pin : "{cell.clock_pin}";')
            out.append(
                f"    setup_time : {cell.setup_time / _TIME_UNIT:.6g};"
            )
            out.append(f"    hold_time : {cell.hold_time / _TIME_UNIT:.6g};")
        if cell.truth is not None:
            out.append(f"    truth_table : {cell.truth};")
            order = " ".join(cell.input_order)
            out.append(f'    input_order : "{order}";')
        for state, leak in cell.leakage_by_state.items():
            out.append(
                f'    leakage_power () {{ when : "{state}"; '
                f"value : {leak / _POWER_UNIT:.6g}; }}"
            )
        for pin in cell.inputs:
            out.append(f"    pin ({pin.name}) {{")
            out.append("      direction : input;")
            out.append(
                f"      capacitance : {pin.capacitance / _CAP_UNIT:.6g};"
            )
            out.append("    }")
        out.append(f"    pin ({cell.output}) {{")
        out.append("      direction : output;")
        for arc in cell.arcs:
            out.append("      timing () {")
            out.append(f'        related_pin : "{arc.related_pin}";')
            out.append(f"        timing_sense : {arc.sense};")
            out.append(f"        timing_type : {arc.timing_type};")
            for key in ("cell_rise", "cell_fall", "rise_transition",
                        "fall_transition"):
                out.extend(_fmt_table(key, getattr(arc, key), "        "))
            out.append("      }")
        out.append("    }")
        out.append("  }")
    out.append("}")
    return "\n".join(out) + "\n"


def write_liberty(library: CellLibrary, path: str | Path) -> None:
    """Write a library to a .lib file."""
    Path(path).write_text(dumps(library))


# --------------------------------------------------------------------- #
# Parsing (supports exactly the subset the writer emits)
# --------------------------------------------------------------------- #
_NUM = r"[-+0-9.eE]+"


def _parse_table(block: str) -> NLDMTable:
    idx = re.findall(r'index_\d \("([^"]*)"\);', block)
    slews = np.array([float(x) for x in idx[0].split(",")]) * _TIME_UNIT
    loads = np.array([float(x) for x in idx[1].split(",")]) * _CAP_UNIT
    rows = re.findall(r'"([^"]*)"', block.split("values", 1)[1])
    values = (
        np.array([[float(x) for x in row.split(",")] for row in rows])
        * _TIME_UNIT
    )
    return NLDMTable(slews, loads, values)


def _extract_braced(text: str, start: int) -> tuple[str, int]:
    """Return the content of the brace block opening at/after ``start``."""
    open_idx = text.index("{", start)
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1 : i], i + 1
    raise ValueError("unbalanced braces in liberty text")


def loads(text: str) -> CellLibrary:
    """Parse Liberty text produced by :func:`dumps`."""
    m = re.search(r"library \(([^)]*)\)", text)
    if not m:
        raise ValueError("not a liberty file: no library() group")
    name = m.group(1)
    body, _ = _extract_braced(text, m.start())
    temp = float(re.search(rf"nom_temperature : ({_NUM});", body).group(1))
    vdd = float(re.search(rf"nom_voltage : ({_NUM});", body).group(1))
    library = CellLibrary(name=name, temperature_k=temp, vdd=vdd)

    pos = 0
    while True:
        m = re.search(r"cell \(([^)]*)\)", body[pos:])
        if not m:
            break
        cell_name = m.group(1)
        cell_body, end = _extract_braced(body, pos + m.start())
        pos = pos + m.start() + (end - (pos + m.start()))
        library.add(_parse_cell(cell_name, cell_body))
    return library


def _parse_cell(name: str, body: str) -> CharacterizedCell:
    def scalar(key: str, default: float = 0.0) -> float:
        m = re.search(rf"{key} : ({_NUM});", body)
        return float(m.group(1)) if m else default

    footprint = re.search(r'footprint : "([^"]*)";', body).group(1)
    is_seq = "ff_clock_pin" in body
    truth_m = re.search(r"truth_table : (\d+);", body)
    order_m = re.search(r'input_order : "([^"]*)";', body)

    leakage_by_state = {
        state: float(value) * _POWER_UNIT
        for state, value in re.findall(
            rf'when : "([01]+)"; value : ({_NUM});', body
        )
    }

    inputs: list[CharacterizedPin] = []
    output = ""
    arcs: list[TimingArc] = []
    pos = 0
    while True:
        m = re.search(r"pin \(([^)]*)\)", body[pos:])
        if not m:
            break
        pin_name = m.group(1)
        pin_body, end_rel = _extract_braced(body[pos:], m.start())
        pos += m.start() + len(pin_body) + 2
        if "direction : input;" in pin_body:
            cap = float(
                re.search(rf"capacitance : ({_NUM});", pin_body).group(1)
            ) * _CAP_UNIT
            inputs.append(CharacterizedPin(pin_name, cap))
        else:
            output = pin_name
            tpos = 0
            while True:
                tm = re.search(r"timing \(\)", pin_body[tpos:])
                if not tm:
                    break
                arc_body, _ = _extract_braced(pin_body[tpos:], tm.start())
                tpos += tm.start() + len(arc_body) + 2
                related = re.search(
                    r'related_pin : "([^"]*)";', arc_body
                ).group(1)
                sense = re.search(
                    r"timing_sense : (\w+);", arc_body
                ).group(1)
                ttype = re.search(r"timing_type : (\w+);", arc_body).group(1)
                tables = {}
                for key in ("cell_rise", "cell_fall", "rise_transition",
                            "fall_transition"):
                    tb = re.search(
                        rf"{key} \(tbl_7x7\)", arc_body
                    )
                    tbody, _ = _extract_braced(arc_body, tb.start())
                    tables[key] = _parse_table(tbody)
                arcs.append(
                    TimingArc(
                        related_pin=related,
                        sense=sense,
                        timing_type=ttype,
                        **tables,
                    )
                )

    cell = CharacterizedCell(
        name=name,
        footprint=footprint,
        area_um2=scalar("area"),
        is_sequential=is_seq,
        inputs=inputs,
        output=output,
        arcs=arcs,
        leakage_by_state=leakage_by_state,
        leakage_avg=scalar("cell_leakage_power") * _POWER_UNIT,
        switching_energy=scalar("switching_energy"),
        truth=int(truth_m.group(1)) if truth_m else None,
        input_order=tuple(order_m.group(1).split()) if order_m else (),
    )
    if is_seq:
        cell.setup_time = scalar("setup_time") * _TIME_UNIT
        cell.hold_time = scalar("hold_time") * _TIME_UNIT
        cell.clock_pin = re.search(
            r'ff_clock_pin : "([^"]*)";', body
        ).group(1)
        cell.data_pin = re.search(r'ff_data_pin : "([^"]*)";', body).group(1)
    if not leakage_by_state and not is_seq:
        cell.leakage_by_state = {}
    return cell


def read_liberty(path: str | Path) -> CellLibrary:
    """Read a .lib file written by :func:`write_liberty`."""
    return loads(Path(path).read_text())
