"""Standard-cell layer: catalog, characterization, libraries, Liberty I/O.

The PrimeLib-equivalent of the paper's flow (Section IV): a ~200-cell
ASAP7-flavoured catalog is characterized against the calibrated FinFET
models at any temperature, producing NLDM libraries consumed by synthesis,
STA and power analysis.
"""

from repro.cells.catalog import cell_by_name, core_catalog, full_catalog
from repro.cells.cell import SequentialCell, Stage, StandardCell
from repro.cells.characterize import (
    CellCharacterizer,
    CharacterizationConfig,
    CharacterizedCell,
    GridBatch,
    GridPoint,
    TechModels,
)
from repro.cells.library import CellLibrary, build_library
from repro.cells.liberty import read_liberty, write_liberty
from repro.cells.nldm import NLDMTable, TimingArc
from repro.cells.stacks import Stack, device, parallel, series

__all__ = [
    "CellCharacterizer",
    "CellLibrary",
    "CharacterizationConfig",
    "CharacterizedCell",
    "GridBatch",
    "GridPoint",
    "NLDMTable",
    "SequentialCell",
    "Stack",
    "Stage",
    "StandardCell",
    "TechModels",
    "TimingArc",
    "build_library",
    "cell_by_name",
    "core_catalog",
    "device",
    "full_catalog",
    "parallel",
    "read_liberty",
    "series",
    "write_liberty",
]
