"""Series/parallel transistor-network algebra for static CMOS cells.

A :class:`Stack` describes one rail network (pull-down or pull-up) as a
series/parallel tree of gate-controlled devices.  Static CMOS duality maps
a pull-down network onto its complementary pull-up by swapping series and
parallel -- :meth:`Stack.dual` -- so complex cells are specified once, as
their NMOS network.

The same tree answers the characterization flow's questions:

* :meth:`Stack.height` -- worst-case series depth (drive degradation);
* :meth:`Stack.device_count` -- transistor count (area, input load);
* :meth:`Stack.conduction` -- does the network conduct for a given input
  state (functional verification of generated netlists);
* :meth:`Stack.leakage_current` -- equivalent OFF current with the series
  stack effect (leakage characterization);
* :meth:`Stack.emit` -- instantiate actual transistors into a
  :class:`~repro.spice.netlist.Circuit` for SPICE characterization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.device.finfet import FinFET

__all__ = ["Stack", "device", "series", "parallel"]

#: Current-division factor applied per extra OFF device in series (the
#: classic "stack effect": two off transistors in series leak ~10x less).
STACK_EFFECT_FACTOR = 0.1


@dataclass(frozen=True)
class Stack:
    """Series/parallel network node: a device leaf or a composite."""

    kind: str  # "device" | "series" | "parallel"
    input_name: str | None = None
    children: tuple["Stack", ...] = ()

    def __post_init__(self) -> None:
        if self.kind == "device":
            if not self.input_name:
                raise ValueError("device leaf needs an input name")
        elif self.kind in ("series", "parallel"):
            if len(self.children) < 2:
                raise ValueError(f"{self.kind} needs at least two children")
        else:
            raise ValueError(f"unknown stack kind {self.kind!r}")

    # ------------------------------------------------------------------ #
    def dual(self) -> "Stack":
        """The complementary network (series <-> parallel)."""
        if self.kind == "device":
            return self
        swapped = "parallel" if self.kind == "series" else "series"
        return Stack(swapped, children=tuple(c.dual() for c in self.children))

    def inputs(self) -> tuple[str, ...]:
        """Sorted distinct input names."""
        if self.kind == "device":
            return (self.input_name,)  # type: ignore[return-value]
        names: set[str] = set()
        for c in self.children:
            names.update(c.inputs())
        return tuple(sorted(names))

    def height(self) -> int:
        """Worst-case number of devices in series."""
        if self.kind == "device":
            return 1
        if self.kind == "series":
            return sum(c.height() for c in self.children)
        return max(c.height() for c in self.children)

    def device_count(self) -> int:
        """Total transistors in the network."""
        if self.kind == "device":
            return 1
        return sum(c.device_count() for c in self.children)

    def input_fanin(self, name: str) -> int:
        """How many devices the given input drives in this network."""
        if self.kind == "device":
            return 1 if self.input_name == name else 0
        return sum(c.input_fanin(name) for c in self.children)

    # ------------------------------------------------------------------ #
    def conduction(self, state: dict[str, bool]) -> bool:
        """Whether the network conducts when ON-inputs are ``True``.

        ``state`` maps input names to *device on/off* (the cell layer
        handles the PMOS inversion before calling this).
        """
        if self.kind == "device":
            return bool(state[self.input_name])  # type: ignore[index]
        if self.kind == "series":
            return all(c.conduction(state) for c in self.children)
        return any(c.conduction(state) for c in self.children)

    def leakage_current(self, state: dict[str, bool], ioff: float) -> float:
        """Equivalent subthreshold leakage through the network in A.

        ``ioff`` is the OFF current of a single device at full Vds.  ON
        devices pass current freely (modelled as a very large current);
        series composition is current-limited by its weakest branch and
        attenuated by the stack effect per *additional* OFF device;
        parallel branches add.
        """
        leaks = self._leak(state, ioff)
        return min(leaks, ioff * self.device_count() * 10.0)

    def _leak(self, state: dict[str, bool], ioff: float) -> float:
        on_current = ioff * 1e9  # effectively a short for this analysis
        if self.kind == "device":
            return on_current if state[self.input_name] else ioff  # type: ignore[index]
        if self.kind == "parallel":
            return sum(c._leak(state, ioff) for c in self.children)
        # Series: limited by the smallest branch current; every further
        # branch that is itself limiting multiplies the stack factor.
        branch = sorted(c._leak(state, ioff) for c in self.children)
        current = branch[0]
        for b in branch[1:]:
            if b < on_current * 0.5:
                current *= STACK_EFFECT_FACTOR
        return current

    # ------------------------------------------------------------------ #
    def emit(
        self,
        circuit,
        model: FinFET,
        rail: str,
        output: str,
        prefix: str,
        invert_inputs: bool = False,
        input_map: dict[str, str] | None = None,
    ) -> int:
        """Instantiate the network into ``circuit`` between rail and output.

        Returns the number of transistors emitted.  ``invert_inputs`` is
        unused at netlist level (gate nodes are shared between PUN and PDN
        in static CMOS) but kept for clarity at call sites.  ``input_map``
        renames logical inputs to circuit nodes.
        """
        input_map = input_map or {}
        counter = itertools.count()

        def node_name() -> str:
            return f"{prefix}_x{next(counter)}"

        def build(stack: Stack, top: str, bottom: str) -> int:
            if stack.kind == "device":
                gate = input_map.get(stack.input_name, stack.input_name)
                circuit.add_finfet(
                    f"{prefix}_m{next(counter)}", top, gate, bottom, model
                )
                return 1
            if stack.kind == "series":
                count = 0
                nodes = [top]
                for _ in range(len(stack.children) - 1):
                    nodes.append(node_name())
                nodes.append(bottom)
                for child, (a, b) in zip(stack.children, zip(nodes, nodes[1:])):
                    count += build(child, a, b)
                return count
            count = 0
            for child in stack.children:
                count += build(child, top, bottom)
            return count

        return build(self, output, rail)


def device(input_name: str) -> Stack:
    """A single gate-controlled device leaf."""
    return Stack("device", input_name=input_name)


def series(*children: Stack) -> Stack:
    """Devices/subnetworks in series (AND in a pull-down network)."""
    return Stack("series", children=children)


def parallel(*children: Stack) -> Stack:
    """Devices/subnetworks in parallel (OR in a pull-down network)."""
    return Stack("parallel", children=children)
