"""Nonlinear delay-model (NLDM) tables and timing arcs.

The characterization flow fills 7x7 tables indexed by input slew and output
load -- exactly the table structure of the Liberty NLDM standard the paper
emits.  STA reads them back through bilinear interpolation with clamped
extrapolation at the table edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NLDMTable", "TimingArc", "DEFAULT_SLEW_INDEX", "DEFAULT_LOAD_INDEX"]

#: Default 7-point input-slew axis in seconds (10 %-90 %).
DEFAULT_SLEW_INDEX: tuple[float, ...] = (
    2e-12, 4e-12, 8e-12, 16e-12, 32e-12, 64e-12, 128e-12
)

#: Default 7-point output-load axis in farads.
DEFAULT_LOAD_INDEX: tuple[float, ...] = (
    0.2e-15, 0.5e-15, 1e-15, 2e-15, 4e-15, 8e-15, 16e-15
)


@dataclass
class NLDMTable:
    """A 2-D lookup table over (input slew, output load)."""

    slews: np.ndarray
    loads: np.ndarray
    values: np.ndarray  # shape (len(slews), len(loads))

    def __post_init__(self) -> None:
        self.slews = np.asarray(self.slews, dtype=float)
        self.loads = np.asarray(self.loads, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (len(self.slews), len(self.loads)):
            raise ValueError(
                f"values shape {self.values.shape} does not match index "
                f"lengths ({len(self.slews)}, {len(self.loads)})"
            )
        if np.any(np.diff(self.slews) <= 0) or np.any(np.diff(self.loads) <= 0):
            raise ValueError("table indices must strictly increase")

    def lookup(self, slew, load):
        """Bilinear interpolation; clamps outside the characterized box.

        Clamping (rather than extrapolating) matches signoff-tool behaviour
        for mildly out-of-range queries and keeps STA robust.

        Accepts scalars (returns ``float``) or array-valued slew/load
        queries (broadcast together; returns an ``ndarray``), so callers
        with many queries against one table -- the STA hot loop, the
        library QA sweeps -- pay one ``searchsorted`` per axis instead
        of one Python call per point.
        """
        scalar = np.ndim(slew) == 0 and np.ndim(load) == 0
        s = np.clip(slew, self.slews[0], self.slews[-1])
        c = np.clip(load, self.loads[0], self.loads[-1])
        i = np.clip(np.searchsorted(self.slews, s) - 1, 0,
                    len(self.slews) - 2)
        j = np.clip(np.searchsorted(self.loads, c) - 1, 0,
                    len(self.loads) - 2)
        s0, s1 = self.slews[i], self.slews[i + 1]
        c0, c1 = self.loads[j], self.loads[j + 1]
        fs = (s - s0) / (s1 - s0)
        fc = (c - c0) / (c1 - c0)
        v = self.values
        out = (
            v[i, j] * (1 - fs) * (1 - fc)
            + v[i + 1, j] * fs * (1 - fc)
            + v[i, j + 1] * (1 - fs) * fc
            + v[i + 1, j + 1] * fs * fc
        )
        if scalar:
            return float(out)
        return np.asarray(out)

    @classmethod
    def from_function(
        cls,
        fn,
        slews: tuple[float, ...] = DEFAULT_SLEW_INDEX,
        loads: tuple[float, ...] = DEFAULT_LOAD_INDEX,
    ) -> "NLDMTable":
        """Fill a table by evaluating ``fn(slew, load)`` on the grid."""
        values = np.array([[fn(s, c) for c in loads] for s in slews])
        return cls(np.asarray(slews), np.asarray(loads), values)

    @property
    def vmin(self) -> float:
        return float(self.values.min())

    @property
    def vmax(self) -> float:
        return float(self.values.max())


@dataclass
class TimingArc:
    """One input-pin -> output-pin timing arc with its four NLDM tables.

    ``sense`` is ``"positive_unate"`` (input rise -> output rise),
    ``"negative_unate"`` or ``"non_unate"`` (XOR-class).  For sequential
    cells the related pin is the clock and ``timing_type`` records e.g.
    ``rising_edge``.
    """

    related_pin: str
    sense: str
    cell_rise: NLDMTable
    cell_fall: NLDMTable
    rise_transition: NLDMTable
    fall_transition: NLDMTable
    timing_type: str = "combinational"
    when: str = ""
    """Optional state condition the arc was characterized under."""

    def delay(self, transition: str, slew, load):
        """Arc delay for an output ``"rise"`` or ``"fall"``, in seconds.

        Like :meth:`NLDMTable.lookup`, slew/load may be scalars or
        broadcastable arrays.
        """
        table = self.cell_rise if transition == "rise" else self.cell_fall
        return table.lookup(slew, load)

    def output_slew(self, transition: str, slew, load):
        """Output transition time for an output rise/fall, in seconds."""
        table = (
            self.rise_transition if transition == "rise" else self.fall_transition
        )
        return table.lookup(slew, load)

    def worst_delay(self, slew: float, load: float) -> float:
        """max(rise, fall) delay -- what a quick STA bound uses."""
        return max(self.delay("rise", slew, load),
                   self.delay("fall", slew, load))
