"""Cell-library container: the product of a characterization run.

A :class:`CellLibrary` is what logic synthesis, STA and power analysis
consume -- the in-memory equivalent of the Liberty files the paper's flow
produces (Fig. 4 outputs, one per temperature corner).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro import telemetry
from repro.cells.catalog import full_catalog
from repro.cells.cell import SequentialCell, StandardCell
from repro.cells.characterize import (
    CellCharacterizer,
    CharacterizationConfig,
    CharacterizedCell,
    TechModels,
)
from repro.errors import CharacterizationError
from repro.reliability.coverage import CoverageReport

__all__ = ["CellLibrary", "build_library"]

_LOG = logging.getLogger(__name__)


@dataclass
class CellLibrary:
    """A characterized library at one operating corner."""

    name: str
    temperature_k: float
    vdd: float
    cells: dict[str, CharacterizedCell] = field(default_factory=dict)
    coverage: CoverageReport | None = None
    """Per-cell characterization outcome of the build that produced this
    library; ``None`` for hand-assembled libraries."""

    def __getitem__(self, name: str) -> CharacterizedCell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def add(self, cell: CharacterizedCell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell

    # ------------------------------------------------------------------ #
    def combinational(self) -> list[CharacterizedCell]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def sequential(self) -> list[CharacterizedCell]:
        return [c for c in self.cells.values() if c.is_sequential]

    def by_footprint(self, footprint: str) -> list[CharacterizedCell]:
        """All drive variants of one logical family, weakest first."""
        variants = [
            c for c in self.cells.values() if c.footprint == footprint
        ]
        return sorted(variants, key=lambda c: c.area_um2)

    def match_function(self, truth: int, n_inputs: int) -> list[CharacterizedCell]:
        """Cells whose truth table matches exactly (same input order).

        Used by the technology mapper; variable order must agree with the
        caller's.
        """
        return [
            c
            for c in self.combinational()
            if c.truth == truth and len(c.input_order) == n_inputs
        ]

    def all_delays(self) -> np.ndarray:
        """Every delay value stored in every table of every arc (s).

        This is the population Fig. 5 histograms: "delays across all 200
        cells in the standard cell library ... all cells and conditions".
        """
        chunks = []
        for cell in self.cells.values():
            for arc in cell.arcs:
                chunks.append(arc.cell_rise.values.ravel())
                chunks.append(arc.cell_fall.values.ravel())
        return np.concatenate(chunks) if chunks else np.empty(0)

    def all_leakages(self) -> np.ndarray:
        """Average leakage power per cell (W)."""
        return np.array([c.leakage_avg for c in self.cells.values()])

    def summary(self) -> dict[str, float]:
        """Headline statistics for reports."""
        delays = self.all_delays()
        leaks = self.all_leakages()
        return {
            "cells": float(len(self.cells)),
            "median_delay_s": float(np.median(delays)),
            "mean_delay_s": float(np.mean(delays)),
            "p95_delay_s": float(np.percentile(delays, 95)),
            "total_leakage_w": float(np.sum(leaks)),
            "median_leakage_w": float(np.median(leaks)),
        }


def build_library(
    models: TechModels,
    config: CharacterizationConfig,
    catalog: list[StandardCell | SequentialCell] | None = None,
    name: str | None = None,
    strict: bool = False,
) -> CellLibrary:
    """Characterize a catalog into a library at one corner.

    With the default analytic engine the full ~200-cell catalog takes a
    few seconds; the SPICE engine is practical for small catalogs only.

    The build is resilient by default: a cell whose characterization
    fails is retried (for the SPICE engine, with the analytic engine as
    the last rung of the ladder) and quarantined if irrecoverable; the
    returned library carries the per-cell outcome in
    :attr:`CellLibrary.coverage` instead of the whole build aborting.
    ``strict=True`` restores fail-fast semantics, raising
    :class:`~repro.errors.CharacterizationError` on the first bad cell.
    """
    catalog = full_catalog() if catalog is None else catalog
    name = name or f"repro5nm_{config.temperature_k:g}K"
    library = CellLibrary(
        name=name, temperature_k=config.temperature_k, vdd=config.vdd
    )
    report = CoverageReport(library=name, total=len(catalog))
    characterizer = CellCharacterizer(models, config)
    analytic: CellCharacterizer | None = None
    build_span = telemetry.span(
        "cells.build_library", library=name,
        temperature_k=config.temperature_k, engine=config.engine,
        cells=len(catalog),
    )
    t_build = time.perf_counter()
    with build_span:
        for cell in catalog:
            t_cell = time.perf_counter()
            with telemetry.span("cells.characterize", cell=cell.name):
                try:
                    characterized = characterizer.characterize(cell)
                except Exception as exc:  # noqa: BLE001 - quarantine anything
                    if strict:
                        raise CharacterizationError(
                            f"cell {cell.name!r}: {type(exc).__name__}: {exc}",
                            cell=cell.name,
                        ) from exc
                    failure = f"{type(exc).__name__}: {exc}"
                    if config.engine == "spice":
                        # Last rung of the ladder: the whole cell falls
                        # back to the analytic engine.
                        if analytic is None:
                            analytic = CellCharacterizer(
                                models, replace(config, engine="analytic")
                            )
                        try:
                            characterized = analytic.characterize(cell)
                        except Exception as exc2:  # noqa: BLE001
                            characterized = None
                            failure = (
                                f"spice: {failure}; analytic: "
                                f"{type(exc2).__name__}: {exc2}"
                            )
                        else:
                            characterized.notes.append(
                                f"analytic-engine fallback after {failure}"
                            )
                            telemetry.count("cells.engine_fallbacks")
                    else:
                        characterized = None
                    if characterized is None:
                        report.quarantined[cell.name] = failure
                        telemetry.count("cells.quarantined")
                        _LOG.warning("library %s: quarantined cell %s (%s)",
                                     name, cell.name, failure)
            elapsed = time.perf_counter() - t_cell
            report.build_seconds[cell.name] = elapsed
            telemetry.observe("cells.build_seconds", elapsed)
            if characterized is None:
                continue
            if characterized.notes:
                report.degraded[cell.name] = "; ".join(characterized.notes)
                telemetry.count("cells.degraded")
                _LOG.debug("library %s: degraded cell %s (%s)",
                           name, cell.name, report.degraded[cell.name])
            else:
                report.clean.append(cell.name)
            library.add(characterized)
            telemetry.count("cells.characterized")
        report.total_seconds = time.perf_counter() - t_build
        build_span.set(clean=len(report.clean), degraded=len(report.degraded),
                       quarantined=len(report.quarantined),
                       seconds=round(report.total_seconds, 3))
    _LOG.debug("library %s: %d/%d cells in %.2f s", name,
               report.characterized, report.total, report.total_seconds)
    library.coverage = report
    return library
