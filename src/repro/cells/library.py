"""Cell-library container: the product of a characterization run.

A :class:`CellLibrary` is what logic synthesis, STA and power analysis
consume -- the in-memory equivalent of the Liberty files the paper's flow
produces (Fig. 4 outputs, one per temperature corner).

:func:`build_library` is the library factory and one of the flow's three
hot fan-outs: every cell characterizes independently, so the build
distributes cells over the :mod:`repro.runtime` executor (``jobs=`` /
``REPRO_JOBS``) and aggregates in catalog order -- bit-identical to the
serial build by construction.  With ``REPRO_CACHE_DIR`` set (or
``cache=True``) finished libraries are memoized on disk keyed by the
content digest of everything that shaped them (models, config, catalog,
strictness), so repeat runs skip the work entirely.
"""

from __future__ import annotations

import logging
import time
import warnings
from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro import telemetry
from repro.cells.catalog import full_catalog
from repro.cells.cell import SequentialCell, StandardCell
from repro.cells.characterize import (
    CellCharacterizer,
    CharacterizationConfig,
    CharacterizedCell,
    TechModels,
)
from repro.errors import CharacterizationError
from repro.reliability.coverage import CoverageReport
from repro.runtime import (
    ExecutorError,
    ResultCache,
    default_enabled,
    get_executor,
    stable_digest,
)

__all__ = ["CellLibrary", "build_library"]

_LOG = logging.getLogger(__name__)


@dataclass
class CellLibrary:
    """A characterized library at one operating corner."""

    name: str
    temperature_k: float
    vdd: float
    cells: dict[str, CharacterizedCell] = field(default_factory=dict)
    coverage: CoverageReport | None = None
    """Per-cell characterization outcome of the build that produced this
    library; ``None`` for hand-assembled libraries."""
    config_digest: str | None = None
    """Content digest of the :class:`CharacterizationConfig` that built
    this library; ``None`` for hand-assembled libraries."""

    def __getitem__(self, name: str) -> CharacterizedCell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def add(self, cell: CharacterizedCell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell

    # ------------------------------------------------------------------ #
    def combinational(self) -> list[CharacterizedCell]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def sequential(self) -> list[CharacterizedCell]:
        return [c for c in self.cells.values() if c.is_sequential]

    def by_footprint(self, footprint: str) -> list[CharacterizedCell]:
        """All drive variants of one logical family, weakest first."""
        variants = [
            c for c in self.cells.values() if c.footprint == footprint
        ]
        return sorted(variants, key=lambda c: c.area_um2)

    def match_function(self, truth: int, n_inputs: int) -> list[CharacterizedCell]:
        """Cells whose truth table matches exactly (same input order).

        Used by the technology mapper; variable order must agree with the
        caller's.
        """
        return [
            c
            for c in self.combinational()
            if c.truth == truth and len(c.input_order) == n_inputs
        ]

    def all_delays(self) -> np.ndarray:
        """Every delay value stored in every table of every arc (s).

        This is the population Fig. 5 histograms: "delays across all 200
        cells in the standard cell library ... all cells and conditions".
        """
        chunks = []
        for cell in self.cells.values():
            for arc in cell.arcs:
                chunks.append(arc.cell_rise.values.ravel())
                chunks.append(arc.cell_fall.values.ravel())
        return np.concatenate(chunks) if chunks else np.empty(0)

    def all_leakages(self) -> np.ndarray:
        """Average leakage power per cell (W)."""
        return np.array([c.leakage_avg for c in self.cells.values()])

    def summary(self) -> dict[str, object]:
        """Headline statistics for reports (plus build provenance)."""
        delays = self.all_delays()
        leaks = self.all_leakages()
        return {
            "cells": float(len(self.cells)),
            "median_delay_s": float(np.median(delays)),
            "mean_delay_s": float(np.mean(delays)),
            "p95_delay_s": float(np.percentile(delays, 95)),
            "total_leakage_w": float(np.sum(leaks)),
            "median_leakage_w": float(np.median(leaks)),
            "config_digest": self.config_digest,
        }


# ---------------------------------------------------------------------- #
# The per-cell unit of work (module-level: must pickle for the process
# executor).  Serial and parallel builds run exactly this code, so the
# retry ladder / engine fallback / quarantine semantics cannot drift.
# ---------------------------------------------------------------------- #
@dataclass
class _CellOutcome:
    """What one cell's characterization attempt produced."""

    name: str
    cell: CharacterizedCell | None
    failure: str
    elapsed: float


def _characterize_cell(
    models: TechModels,
    config: CharacterizationConfig,
    strict: bool,
    cell: StandardCell | SequentialCell,
) -> _CellOutcome:
    """Characterize one cell, riding the retry ladder on failure.

    In strict mode the first failure raises
    :class:`~repro.errors.CharacterizationError`; otherwise the outcome
    records the irrecoverable failure for quarantine.
    """
    t_cell = time.perf_counter()
    characterizer = CellCharacterizer(models, config)
    failure = ""
    with telemetry.span("cells.characterize", cell=cell.name):
        try:
            characterized = characterizer.characterize(cell)
        except Exception as exc:  # noqa: BLE001 - quarantine anything
            if strict:
                raise CharacterizationError(
                    f"cell {cell.name!r}: {type(exc).__name__}: {exc}",
                    cell=cell.name,
                ) from exc
            failure = f"{type(exc).__name__}: {exc}"
            characterized = None
            if config.engine == "spice":
                # Last rung of the ladder: the whole cell falls back to
                # the analytic engine.
                analytic = CellCharacterizer(
                    models, replace(config, engine="analytic")
                )
                try:
                    characterized = analytic.characterize(cell)
                except Exception as exc2:  # noqa: BLE001
                    failure = (
                        f"spice: {failure}; analytic: "
                        f"{type(exc2).__name__}: {exc2}"
                    )
                else:
                    characterized.notes.append(
                        f"analytic-engine fallback after {failure}"
                    )
                    failure = ""
                    telemetry.count("cells.engine_fallbacks")
    return _CellOutcome(cell.name, characterized,
                        failure, time.perf_counter() - t_cell)


def build_library(
    models: TechModels,
    config: CharacterizationConfig,
    *args,
    catalog: list[StandardCell | SequentialCell] | None = None,
    name: str | None = None,
    strict: bool = False,
    jobs: int | None = None,
    cache: bool | None = None,
) -> CellLibrary:
    """Characterize a catalog into a library at one corner.

    With the default analytic engine the full ~200-cell catalog takes a
    few seconds; the SPICE engine is practical for small catalogs only.

    The build is resilient by default: a cell whose characterization
    fails is retried (for the SPICE engine, with the analytic engine as
    the last rung of the ladder) and quarantined if irrecoverable; the
    returned library carries the per-cell outcome in
    :attr:`CellLibrary.coverage` instead of the whole build aborting.
    ``strict=True`` restores fail-fast semantics, raising
    :class:`~repro.errors.CharacterizationError` on the first bad cell
    (in catalog order, independent of worker scheduling).

    Execution knobs (keyword-only):

    * ``jobs`` -- characterize cells in parallel over the
      :mod:`repro.runtime` executor; ``None`` defers to ``REPRO_JOBS``,
      1 runs serially.  Results are bit-identical to serial.
    * ``cache`` -- memoize the finished library on disk keyed by the
      content digest of (models, config, catalog, strict); ``None``
      enables caching iff ``REPRO_CACHE_DIR`` is set.

    Parameters after ``models``/``config`` are keyword-only; the old
    positional form ``build_library(models, config, catalog, name,
    strict)`` still works for one release with a DeprecationWarning.
    """
    if args:
        if len(args) > 3:
            raise TypeError(
                f"build_library() takes at most 5 positional arguments "
                f"({2 + len(args)} given)")
        warnings.warn(
            "positional catalog/name/strict arguments to build_library() "
            "are deprecated; pass them as keywords",
            DeprecationWarning, stacklevel=2,
        )
        legacy = dict(zip(("catalog", "name", "strict"), args))
        catalog = legacy.get("catalog", catalog)
        name = legacy.get("name", name)
        strict = legacy.get("strict", strict)

    catalog = full_catalog() if catalog is None else catalog
    name = name or f"repro5nm_{config.temperature_k:g}K"

    use_cache = default_enabled() if cache is None else cache
    cache_store = cache_key = None
    if use_cache:
        cache_store = ResultCache(namespace="build_library")
        cache_key = stable_digest({
            "models": models, "config": config, "catalog": catalog,
            "strict": strict,
        })
        cached = cache_store.get(cache_key)
        if cached is not None:
            _LOG.debug("library %s: cache hit (%s)", name, cache_key)
            cached.name = name
            if cached.coverage is not None:
                cached.coverage.library = name
            return cached

    library = CellLibrary(
        name=name, temperature_k=config.temperature_k, vdd=config.vdd,
        config_digest=config.config_digest(),
    )
    report = CoverageReport(library=name, total=len(catalog))
    executor = get_executor(jobs)
    build_span = telemetry.span(
        "cells.build_library", library=name,
        temperature_k=config.temperature_k, engine=config.engine,
        cells=len(catalog), jobs=executor.jobs, backend=executor.backend,
    )
    t_build = time.perf_counter()
    with build_span:
        worker = partial(_characterize_cell, models, config, strict)
        try:
            outcomes = executor.map(worker, catalog)
        except ExecutorError as exc:
            if isinstance(exc.__cause__, CharacterizationError):
                raise exc.__cause__ from exc.__cause__.__cause__
            raise
        for outcome in outcomes:
            report.build_seconds[outcome.name] = outcome.elapsed
            telemetry.observe("cells.build_seconds", outcome.elapsed)
            if outcome.cell is None:
                report.quarantined[outcome.name] = outcome.failure
                telemetry.count("cells.quarantined")
                _LOG.warning("library %s: quarantined cell %s (%s)",
                             name, outcome.name, outcome.failure)
                continue
            if outcome.cell.notes:
                report.degraded[outcome.name] = "; ".join(outcome.cell.notes)
                telemetry.count("cells.degraded")
                _LOG.debug("library %s: degraded cell %s (%s)",
                           name, outcome.name, report.degraded[outcome.name])
            else:
                report.clean.append(outcome.name)
            library.add(outcome.cell)
            telemetry.count("cells.characterized")
        report.total_seconds = time.perf_counter() - t_build
        build_span.set(clean=len(report.clean), degraded=len(report.degraded),
                       quarantined=len(report.quarantined),
                       seconds=round(report.total_seconds, 3))
    _LOG.debug("library %s: %d/%d cells in %.2f s", name,
               report.characterized, report.total, report.total_seconds)
    library.coverage = report
    if cache_store is not None and cache_key is not None:
        cache_store.put(cache_key, library)
    return library
