"""Standard-cell characterization: the PrimeLib/PrimeSim substitute.

Given a cell catalog and a pair of calibrated FinFET models, this module
fills NLDM timing tables (7x7 slew/load grids for every timing arc), pin
capacitances, state-dependent leakage and switching energy -- at any
temperature the compact model supports.  Two engines are provided:

* ``analytic`` (default) -- effective-current / RC delay model evaluated
  directly from the compact model.  Fast enough to characterize the full
  ~200-cell catalog at two temperatures in seconds.  All temperature
  dependence flows through the compact model (Ieff, Ioff), so 300 K vs
  10 K *ratios* -- the paper's object of study -- are preserved.
* ``spice`` -- full transient simulation of the transistor netlist via
  :mod:`repro.spice`.  Used for representative cells and for validating
  the analytic engine (see tests/cells/test_engines_agree.py).

The analytic constants (`REFF_GAMMA`, `SLEW_GAMMA`, `SLEW_COUPLING`) were
fitted once against the SPICE engine on inverter/NAND cells at 300 K.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.cells.cell import SequentialCell, Stage, StandardCell
from repro.cells.nldm import (
    DEFAULT_LOAD_INDEX,
    DEFAULT_SLEW_INDEX,
    NLDMTable,
    TimingArc,
)
from repro.cells.stacks import device, series
from repro.device.finfet import FinFET
from repro.device.params import FinFETParams

__all__ = [
    "CharacterizationConfig",
    "CellCharacterizer",
    "GridBatch",
    "GridPoint",
    "TechModels",
]

# Analytic-engine constants, fitted against the SPICE engine.
REFF_GAMMA = 0.443
"""Effective switching resistance: Reff = REFF_GAMMA * Vdd / Ieff.
Fitted by least squares against SPICE transients of INV/NAND2/NOR2."""

SLEW_GAMMA = 1.11
"""Output slew = SLEW_GAMMA * Reff * Ctot (fitted against SPICE)."""

SLEW_COUPLING = 0.204
"""Fraction of the input slew added to the stage delay (fitted)."""

SLEW_FEEDTHROUGH = 0.21
"""Fraction of the input slew reaching the output slew (fitted)."""

SHORT_CIRCUIT_FACTOR = 1.15
"""Multiplier on CV^2/2 accounting for short-circuit current."""

# Per-transient solver budgets for the SPICE engine.  The first attempt
# gets room to work; the retry is deliberately tightened (fail fast at a
# finer timestep) because a solve that needs more than this is cheaper to
# replace with the analytic estimate than to grind out.
SPICE_POINT_BUDGET_S = 30.0
SPICE_RETRY_BUDGET_S = 10.0

# One batched-grid solve covers up to a whole arc's worth of points, so
# it gets a correspondingly larger wall-clock budget than a single point.
SPICE_GRID_BUDGET_S = 120.0

GRID_STEP_REPLICA_TAX = 0.04
"""Marginal per-replica cost of one lockstep Newton step, relative to the
replica-independent base cost (the compact-model call dominates and its
cost is nearly size-independent at characterization batch sizes).  Used
only by the batch planner's cost model when deciding whether merging two
load rows onto one union time grid is cheaper than solving them apart."""


@dataclass(frozen=True)
class TechModels:
    """The n/p device models a library build characterizes against.

    Device instances are memoized per (polarity, nfin): every SPICE
    table point of a library build then shares one :class:`FinFET` per
    sizing, so the model's temperature-derived cache (vth/vsat/mobility
    terms keyed by ``(id(params), temperature_k)``) is warm across all
    slew/load points and cells, and the MNA kernel batches all
    same-sized transistors of a netlist into one compact-model call.
    """

    nfet: FinFETParams
    pfet: FinFETParams
    _devices: dict = field(default_factory=dict, repr=False, compare=False)

    def n_device(self, nfin: int) -> FinFET:
        return self._device("n", nfin)

    def p_device(self, nfin: int) -> FinFET:
        return self._device("p", nfin)

    def _device(self, polarity: str, nfin: int) -> FinFET:
        dev = self._devices.get((polarity, nfin))
        if dev is None:
            params = self.nfet if polarity == "n" else self.pfet
            dev = FinFET(params.copy(nfin=nfin))
            self._devices[(polarity, nfin)] = dev
        return dev


@dataclass(frozen=True, kw_only=True)
class CharacterizationConfig:
    """Operating conditions and table axes for one library build."""

    temperature_k: float = 300.0
    vdd: float = 0.70
    slew_index: tuple[float, ...] = DEFAULT_SLEW_INDEX
    load_index: tuple[float, ...] = DEFAULT_LOAD_INDEX
    engine: str = "analytic"
    grid_batch: bool = True
    """SPICE engine only: solve each arc as a handful of batched-grid
    transients (:func:`repro.spice.transient_grid`) instead of one
    sequential transient per table point.  ``False`` restores the
    per-point path (the batched path's reference for benchmarks)."""

    def __post_init__(self) -> None:
        from repro.errors import ConfigError

        if self.engine not in ("analytic", "spice"):
            raise ConfigError(f"unknown engine {self.engine!r}",
                              field="engine")
        if not np.isfinite(self.temperature_k) or self.temperature_k <= 0:
            raise ConfigError(
                f"temperature_k must be finite and > 0 "
                f"(got {self.temperature_k!r})", field="temperature_k")
        if not np.isfinite(self.vdd) or self.vdd <= 0:
            raise ConfigError(f"vdd must be finite and > 0 "
                              f"(got {self.vdd!r})", field="vdd")
        for axis in ("slew_index", "load_index"):
            values = getattr(self, axis)
            if not values or any(not np.isfinite(v) or v <= 0
                                 for v in values):
                raise ConfigError(
                    f"{axis} needs finite positive entries (got {values!r})",
                    field=axis)

    # -- provenance / cache identity ---------------------------------- #
    def to_dict(self) -> dict:
        """Plain-data view; round-trips through :meth:`from_dict`."""
        from repro.runtime.digest import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CharacterizationConfig":
        from repro.runtime.digest import config_from_dict

        return config_from_dict(cls, data)

    def config_digest(self) -> str:
        """Stable content hash: the cache key / provenance stamp."""
        from repro.runtime.digest import stable_digest

        return stable_digest(self)


@dataclass
class CharacterizedPin:
    """An input pin's capacitance in F."""

    name: str
    capacitance: float


@dataclass
class CharacterizedCell:
    """Everything the library stores about one cell."""

    name: str
    footprint: str
    area_um2: float
    is_sequential: bool
    inputs: list[CharacterizedPin]
    output: str
    arcs: list[TimingArc] = field(default_factory=list)
    leakage_by_state: dict[str, float] = field(default_factory=dict)
    leakage_avg: float = 0.0
    switching_energy: float = 0.0
    truth: int | None = None
    input_order: tuple[str, ...] = ()
    notes: list[str] = field(default_factory=list)
    """Degradation notes: non-empty when any arc point needed the solver
    retry ladder or the analytic fallback (see build_library)."""
    # Sequential-only attributes (seconds):
    setup_time: float = 0.0
    hold_time: float = 0.0
    clock_pin: str = ""
    data_pin: str = ""

    def pin_capacitance(self, pin: str) -> float:
        for p in self.inputs:
            if p.name == pin:
                return p.capacitance
        raise KeyError(f"{self.name}: no input pin {pin!r}")

    def arc_from(self, pin: str) -> TimingArc:
        for arc in self.arcs:
            if arc.related_pin == pin:
                return arc
        raise KeyError(f"{self.name}: no timing arc from pin {pin!r}")

    @property
    def worst_arc_delay_nominal(self) -> float:
        """max arc delay at mid slew/load -- a quick cell-speed metric."""
        if not self.arcs:
            return 0.0
        return max(a.worst_delay(16e-12, 2e-15) for a in self.arcs)


@dataclass(frozen=True)
class GridPoint:
    """One (slew, load, edge) table point scheduled into a grid batch."""

    i: int
    """Row index into ``slew_index``."""
    j: int
    """Column index into ``load_index``."""
    in_tr: str
    out_tr: str
    slew: float
    load: float
    est_d: float
    est_s: float
    t_stop: float
    """The point's own stop time (what the sequential path would use)."""
    dt: float
    """The point's own step (what the sequential path would use)."""
    wave_map: dict

    @property
    def steps(self) -> int:
        return max(1, int(np.ceil(self.t_stop / self.dt - 1e-9)))


@dataclass(frozen=True)
class GridBatch:
    """A set of points solved together on one union time grid.

    The grid is the union of the member points' grids: ``t_stop`` is the
    max over members (every transition completes) and ``dt`` the min
    (the tightest accuracy requirement wins).
    """

    points: tuple[GridPoint, ...]
    t_stop: float
    dt: float

    @property
    def steps(self) -> int:
        return max(1, int(np.ceil(self.t_stop / self.dt - 1e-9)))

    def cost(self) -> float:
        """Predicted lockstep work, in units of one bare Newton step."""
        return self.steps * (1.0 + GRID_STEP_REPLICA_TAX * len(self.points))

    def merged(self, other: "GridBatch") -> "GridBatch":
        return GridBatch(
            points=self.points + other.points,
            t_stop=max(self.t_stop, other.t_stop),
            dt=min(self.dt, other.dt),
        )


class CellCharacterizer:
    """Characterizes catalog cells under one configuration."""

    def __init__(self, models: TechModels, config: CharacterizationConfig):
        self.models = models
        self.config = config
        t = config.temperature_k
        # Per-fin figures from the compact model -- the only place
        # temperature enters the analytic engine.
        n1 = models.n_device(1)
        p1 = models.p_device(1)
        self._ieff_n = n1.effective_current(t, config.vdd)
        self._ieff_p = p1.effective_current(t, config.vdd)
        self._ioff_n = n1.ioff(t, config.vdd)
        self._ioff_p = p1.ioff(t, config.vdd)
        self._cg_n = n1.gate_capacitance()
        self._cg_p = p1.gate_capacitance()
        self._cd_n = n1.drain_capacitance()
        self._cd_p = p1.drain_capacitance()

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #
    def pin_capacitance(self, cell: StandardCell, pin: str) -> float:
        """Input capacitance of one pin: all gates it drives."""
        total = 0.0
        for stage, n_fanin, p_fanin in cell.loads_of(pin):
            total += n_fanin * stage.nfin_n * self._cg_n
            total += p_fanin * stage.nfin_p * self._cg_p
        return total

    def _stage_parasitic_cap(self, stage: Stage) -> float:
        """Diffusion capacitance at the stage output node."""
        n_branches = (
            len(stage.pdn.children) if stage.pdn.kind == "parallel" else 1
        )
        pun = stage.pdn.dual()
        p_branches = len(pun.children) if pun.kind == "parallel" else 1
        return (
            n_branches * stage.nfin_n * self._cd_n
            + p_branches * stage.nfin_p * self._cd_p
        )

    def _stage_resistance(self, stage: Stage, transition: str) -> float:
        """Effective switching resistance for an output rise or fall."""
        if transition == "fall":
            height = stage.pdn.height()
            return REFF_GAMMA * self.config.vdd * height / (
                self._ieff_n * stage.nfin_n
            )
        height = stage.pdn.dual().height()
        return REFF_GAMMA * self.config.vdd * height / (
            self._ieff_p * stage.nfin_p
        )

    def _stage_input_cap(self, stage: Stage, signal: str) -> float:
        n_fanin = stage.pdn.input_fanin(signal)
        p_fanin = stage.pdn.dual().input_fanin(signal)
        return n_fanin * stage.nfin_n * self._cg_n + p_fanin * stage.nfin_p * self._cg_p

    def _stage_output_load(
        self, cell: StandardCell, stage: Stage, external_load: float
    ) -> float:
        """Total load at a stage output: parasitics + internal fanout
        gate caps + the external load if this is the cell output."""
        load = self._stage_parasitic_cap(stage)
        for consumer in cell.sized_stages:
            load += self._stage_input_cap(consumer, stage.output)
        if stage.output == cell.output:
            load += external_load
        return load

    def _stage_delay_slew(
        self, stage: Stage, transition: str, slew_in: float, load: float
    ) -> tuple[float, float]:
        """(propagation delay, output slew) of one stage."""
        r = self._stage_resistance(stage, transition)
        delay = np.log(2.0) * r * load + SLEW_COUPLING * slew_in
        slew_out = SLEW_GAMMA * r * load + SLEW_FEEDTHROUGH * slew_in
        return delay, slew_out

    # ------------------------------------------------------------------ #
    # Analytic timing: worst-path DP over the stage DAG
    # ------------------------------------------------------------------ #
    def _arc_timing_analytic(
        self,
        cell: StandardCell,
        pin: str,
        input_transition: str,
        slew_in: float,
        load: float,
    ) -> dict[str, tuple[float, float]]:
        """Worst (arrival, slew) per output transition for one input edge.

        Returns ``{"rise": (delay, slew), ...}`` with only the transitions
        that can actually occur at the output.
        """
        # state: (signal, transition) -> (arrival, slew)
        state: dict[tuple[str, str], tuple[float, float]] = {
            (pin, input_transition): (0.0, slew_in)
        }
        for stage in cell.sized_stages:
            stage_load = self._stage_output_load(cell, stage, load)
            for signal in stage.pdn.inputs():
                for tr in ("rise", "fall"):
                    if (signal, tr) not in state:
                        continue
                    arrival, slew = state[(signal, tr)]
                    out_tr = "fall" if tr == "rise" else "rise"
                    d, s = self._stage_delay_slew(stage, out_tr, slew, stage_load)
                    cand = (arrival + d, s)
                    key = (stage.output, out_tr)
                    if key not in state or cand[0] > state[key][0]:
                        state[key] = cand
        out: dict[str, tuple[float, float]] = {}
        for tr in ("rise", "fall"):
            if (cell.output, tr) in state:
                out[tr] = state[(cell.output, tr)]
        return out

    def _characterize_arc_analytic(
        self, cell: StandardCell, pin: str
    ) -> TimingArc:
        slews = self.config.slew_index
        loads = self.config.load_index

        shape = (len(slews), len(loads))
        tables = {
            key: np.zeros(shape)
            for key in ("cell_rise", "cell_fall", "rise_transition",
                        "fall_transition")
        }
        reach_rise_from = set()
        reach_fall_from = set()
        for i, s in enumerate(slews):
            for j, c in enumerate(loads):
                for in_tr in ("rise", "fall"):
                    result = self._arc_timing_analytic(cell, pin, in_tr, s, c)
                    for out_tr, (delay, out_slew) in result.items():
                        dkey = f"cell_{out_tr}"
                        skey = f"{out_tr}_transition"
                        if delay > tables[dkey][i, j]:
                            tables[dkey][i, j] = delay
                            tables[skey][i, j] = out_slew
                        if out_tr == "rise":
                            reach_rise_from.add(in_tr)
                        else:
                            reach_fall_from.add(in_tr)

        if reach_rise_from == {"fall"} and reach_fall_from == {"rise"}:
            sense = "negative_unate"
        elif reach_rise_from == {"rise"} and reach_fall_from == {"fall"}:
            sense = "positive_unate"
        else:
            sense = "non_unate"

        # A transition that never occurs keeps zeros; fill it with the
        # other polarity so downstream lookups stay sane.
        for a, b in (("cell_rise", "cell_fall"),
                     ("rise_transition", "fall_transition")):
            if not tables[a].any():
                tables[a] = tables[b].copy()
            if not tables[b].any():
                tables[b] = tables[a].copy()

        def mk(key: str) -> NLDMTable:
            return NLDMTable(np.asarray(slews), np.asarray(loads), tables[key])

        return TimingArc(
            related_pin=pin,
            sense=sense,
            cell_rise=mk("cell_rise"),
            cell_fall=mk("cell_fall"),
            rise_transition=mk("rise_transition"),
            fall_transition=mk("fall_transition"),
        )

    # ------------------------------------------------------------------ #
    # SPICE timing
    # ------------------------------------------------------------------ #
    def _sensitize(self, cell: StandardCell, pin: str) -> dict[str, bool] | None:
        """Find side-input values making the output follow ``pin``."""
        others = [p for p in cell.inputs if p != pin]
        fn = cell.function()
        for bits in itertools.product([False, True], repeat=len(others)):
            asg = dict(zip(others, bits))
            lo = fn.evaluate({**asg, pin: False})
            hi = fn.evaluate({**asg, pin: True})
            if lo != hi:
                return asg
        return None

    def build_cell_circuit(
        self,
        cell: StandardCell,
        load: float,
        input_map: dict[str, object],
    ):
        """Build the transistor-level circuit for one cell instance.

        ``input_map`` maps pin names to waveform objects (sources).
        Returns the configured :class:`~repro.spice.netlist.Circuit`.
        """
        from repro.spice import Circuit, DC

        cfg = self.config
        circuit = Circuit(cell.name, temperature_k=cfg.temperature_k)
        circuit.add_vsource("vdd_src", "vdd", "0", DC(cfg.vdd))
        for pin, wave in input_map.items():
            circuit.add_vsource(f"src_{pin}", pin, "0", wave)
        for k, stage in enumerate(cell.sized_stages):
            nmodel = self.models.n_device(stage.nfin_n)
            pmodel = self.models.p_device(stage.nfin_p)
            stage.pdn.emit(circuit, nmodel, "0", stage.output, f"s{k}n")
            stage.pdn.dual().emit(
                circuit, pmodel, "vdd", stage.output, f"s{k}p"
            )
        if load > 0:
            circuit.add_capacitor("c_load", cell.output, "0", load)
        return circuit

    def _solve_point_resilient(
        self,
        cell: StandardCell,
        pin: str,
        circuit,
        t_stop: float,
        dt: float,
        notes: list[str],
    ):
        """Transient with the characterization retry ladder.

        Attempt the configured step under a wall-clock budget; on solver
        failure retry once at half the step under a *tightened* budget
        (a finer grid gives Newton better per-step initial guesses, and
        a solve that still will not go is not worth more wall-clock);
        returns ``None`` when both fail so the caller can fall back to
        the analytic estimate for this table point.
        """
        from repro.errors import SolverError
        from repro.spice import SolverBudget, transient

        record = [pin, cell.output]
        try:
            return transient(
                circuit, t_stop, dt, record=record,
                budget=SolverBudget(max_seconds=SPICE_POINT_BUDGET_S),
            )
        except SolverError as exc:
            first = f"{type(exc).__name__}: {exc}"
        telemetry.count("cells.spice_retries")
        try:
            result = transient(
                circuit, t_stop, dt / 2.0, record=record,
                budget=SolverBudget(max_seconds=SPICE_RETRY_BUDGET_S),
            )
            notes.append(
                f"arc {pin}: retried at dt/2 after {first}"
            )
            return result
        except SolverError as exc:
            notes.append(
                f"arc {pin}: analytic fallback ({first}; retry "
                f"{type(exc).__name__}: {exc})"
            )
            telemetry.count("cells.point_fallbacks")
            return None

    def _arc_sense(self, senses: set) -> str:
        if senses == {("rise", "fall"), ("fall", "rise")}:
            return "negative_unate"
        if senses == {("rise", "rise"), ("fall", "fall")}:
            return "positive_unate"
        return "non_unate"

    def _finish_arc(self, pin: str, senses: set, tables: dict) -> TimingArc:
        """Assemble a :class:`TimingArc` from filled slew/load tables."""
        for a, b in (("cell_rise", "cell_fall"),
                     ("rise_transition", "fall_transition")):
            if not tables[a].any():
                tables[a] = tables[b].copy()
            if not tables[b].any():
                tables[b] = tables[a].copy()

        slews = self.config.slew_index
        loads = self.config.load_index

        def mk(key: str) -> NLDMTable:
            return NLDMTable(np.asarray(slews), np.asarray(loads), tables[key])

        return TimingArc(
            related_pin=pin,
            sense=self._arc_sense(senses),
            cell_rise=mk("cell_rise"),
            cell_fall=mk("cell_fall"),
            rise_transition=mk("rise_transition"),
            fall_transition=mk("fall_transition"),
        )

    def _characterize_arc_spice(
        self, cell: StandardCell, pin: str, notes: list[str] | None = None
    ) -> TimingArc:
        notes = [] if notes is None else notes
        if self.config.grid_batch:
            return self._characterize_arc_spice_grid(cell, pin, notes)
        return self._characterize_arc_spice_sequential(cell, pin, notes)

    def _characterize_arc_spice_sequential(
        self, cell: StandardCell, pin: str, notes: list[str]
    ) -> TimingArc:
        from repro.spice import DC, propagation_delay, ramp

        cfg = self.config
        side = self._sensitize(cell, pin)
        if side is None:
            raise ValueError(f"{cell.name}: pin {pin!r} cannot toggle output")

        slews = cfg.slew_index
        loads = cfg.load_index
        shape = (len(slews), len(loads))
        tables = {
            key: np.zeros(shape)
            for key in ("cell_rise", "cell_fall", "rise_transition",
                        "fall_transition")
        }
        fn = cell.function()
        senses = set()
        for i, s in enumerate(slews):
            for j, c in enumerate(loads):
                for in_tr in ("rise", "fall"):
                    v0 = 0.0 if in_tr == "rise" else cfg.vdd
                    v1 = cfg.vdd - v0
                    out0 = fn.evaluate({**side, pin: v0 > cfg.vdd / 2})
                    out1 = fn.evaluate({**side, pin: v1 > cfg.vdd / 2})
                    out_tr = "rise" if (out1 and not out0) else "fall"
                    senses.add((in_tr, out_tr))

                    # Time scales from the analytic estimate.
                    est = self._arc_timing_analytic(cell, pin, in_tr, s, c)
                    est_d, est_s = est.get(out_tr, (20e-12, 20e-12))
                    t_start = 3e-12 + 2 * s
                    ramp_dur = s / 0.8
                    t_stop = t_start + ramp_dur + 4 * est_d + 4 * est_s + 20e-12
                    dt = max(min(s / 30.0, est_s / 20.0, 0.5e-12), 0.02e-12)

                    wave_map: dict[str, object] = {
                        p: DC(cfg.vdd if val else 0.0) for p, val in side.items()
                    }
                    wave_map[pin] = ramp(t_start, ramp_dur, v0, v1)
                    circuit = self.build_cell_circuit(cell, c, wave_map)
                    res = self._solve_point_resilient(
                        cell, pin, circuit, t_stop, dt, notes
                    )
                    if res is None:
                        # Irrecoverable solve: use the analytic estimate
                        # for this point so one bad corner does not void
                        # the whole arc.
                        d, sl = est_d, est_s
                    else:
                        win = res.waveform(pin)
                        wout = res.waveform(cell.output)
                        d = propagation_delay(
                            win, wout, cfg.vdd, in_tr, out_tr
                        )
                        sl = wout.transition_time(
                            0.0, cfg.vdd, direction=out_tr
                        )
                    if d > tables[f"cell_{out_tr}"][i, j]:
                        tables[f"cell_{out_tr}"][i, j] = d
                        tables[f"{out_tr}_transition"][i, j] = sl

        return self._finish_arc(pin, senses, tables)

    # ------------------------------------------------------------------ #
    # Batched-grid SPICE timing
    # ------------------------------------------------------------------ #
    def plan_grid_batches(
        self,
        cell: StandardCell,
        pin: str,
        side: dict[str, bool] | None = None,
    ) -> list[GridBatch]:
        """Schedule an arc's table points into batched-grid transients.

        The planning unit is the per-(slew, edge) load row: all seven
        loads share one input ramp, so they share a union time grid with
        ``dt = min`` over the row (tightest accuracy requirement) and
        ``t_stop = max`` (slowest transition completes).  Rows whose
        union grids are compatible are then greedily merged into wider
        batches: one lockstep Newton step costs nearly the same for 7
        replicas as for 49 (the stacked compact-model call dominates and
        is size-independent at these widths), so the only real cost of a
        batch is its step count and width is close to free.  Two rows
        merge whenever the merged union grid's predicted work (steps x a
        small per-replica tax, see :data:`GRID_STEP_REPLICA_TAX`) does
        not exceed the rows solved apart.  Rows with clashing grids --
        e.g. a 2 ps slew row stepping at 67 fs next to a 128 ps row
        stepping at 500 fs -- stay separate.
        """
        from repro.spice import DC, ramp

        cfg = self.config
        if side is None:
            side = self._sensitize(cell, pin)
            if side is None:
                raise ValueError(
                    f"{cell.name}: pin {pin!r} cannot toggle output")
        fn = cell.function()

        rows: list[GridBatch] = []
        for i, s in enumerate(cfg.slew_index):
            for in_tr in ("rise", "fall"):
                v0 = 0.0 if in_tr == "rise" else cfg.vdd
                v1 = cfg.vdd - v0
                out0 = fn.evaluate({**side, pin: v0 > cfg.vdd / 2})
                out1 = fn.evaluate({**side, pin: v1 > cfg.vdd / 2})
                out_tr = "rise" if (out1 and not out0) else "fall"
                t_start = 3e-12 + 2 * s
                ramp_dur = s / 0.8
                points = []
                for j, c in enumerate(cfg.load_index):
                    est = self._arc_timing_analytic(cell, pin, in_tr, s, c)
                    est_d, est_s = est.get(out_tr, (20e-12, 20e-12))
                    t_stop = (t_start + ramp_dur + 4 * est_d + 4 * est_s
                              + 20e-12)
                    dt = max(min(s / 30.0, est_s / 20.0, 0.5e-12), 0.02e-12)
                    wave_map: dict[str, object] = {
                        p: DC(cfg.vdd if val else 0.0)
                        for p, val in side.items()
                    }
                    wave_map[pin] = ramp(t_start, ramp_dur, v0, v1)
                    points.append(GridPoint(
                        i=i, j=j, in_tr=in_tr, out_tr=out_tr, slew=s,
                        load=c, est_d=est_d, est_s=est_s, t_stop=t_stop,
                        dt=dt, wave_map=wave_map,
                    ))
                rows.append(GridBatch(
                    points=tuple(points),
                    t_stop=max(p.t_stop for p in points),
                    dt=min(p.dt for p in points),
                ))

        # Greedy merge over rows ordered by step size: neighbours in dt
        # are the rows whose union grids waste the least on each other.
        rows.sort(key=lambda r: (r.dt, r.t_stop))
        batches: list[GridBatch] = []
        for row in rows:
            if batches:
                merged = batches[-1].merged(row)
                if merged.cost() <= batches[-1].cost() + row.cost():
                    batches[-1] = merged
                    continue
            batches.append(row)
        return batches

    def _characterize_arc_spice_grid(
        self, cell: StandardCell, pin: str, notes: list[str]
    ) -> TimingArc:
        from repro.errors import SolverError
        from repro.spice import SolverBudget, propagation_delay, transient_grid

        cfg = self.config
        side = self._sensitize(cell, pin)
        if side is None:
            raise ValueError(f"{cell.name}: pin {pin!r} cannot toggle output")

        shape = (len(cfg.slew_index), len(cfg.load_index))
        tables = {
            key: np.zeros(shape)
            for key in ("cell_rise", "cell_fall", "rise_transition",
                        "fall_transition")
        }
        senses = set()
        record = [pin, cell.output]
        for batch in self.plan_grid_batches(cell, pin, side):
            circuits = [
                self.build_cell_circuit(cell, p.load, p.wave_map)
                for p in batch.points
            ]
            with telemetry.span(
                "cells.grid_batch",
                cell=cell.name, pin=pin, replicas=len(circuits),
                steps=batch.steps,
            ):
                try:
                    results = transient_grid(
                        circuits, batch.t_stop, batch.dt, record=record,
                        budget=SolverBudget(max_seconds=SPICE_GRID_BUDGET_S),
                    )
                except SolverError as exc:
                    # The whole batch ran out of budget: every member
                    # point is replayed through the per-point ladder.
                    notes.append(
                        f"arc {pin}: grid batch aborted "
                        f"({type(exc).__name__}: {exc}); replaying "
                        f"{len(circuits)} points sequentially"
                    )
                    telemetry.count("cells.grid_batch_aborts")
                    results = [None] * len(circuits)

            for p, circuit, res in zip(batch.points, circuits, results):
                senses.add((p.in_tr, p.out_tr))
                if res is not None:
                    telemetry.count("cells.grid_batched_points")
                else:
                    # Evicted from the batch: replay this point alone on
                    # its own grid through the existing retry ladder.
                    telemetry.count("cells.grid_fallback_points")
                    notes.append(
                        f"arc {pin}: grid eviction at slew={p.slew:.3g} "
                        f"load={p.load:.3g} {p.in_tr}; replaying per-point"
                    )
                    res = self._solve_point_resilient(
                        cell, pin, circuit, p.t_stop, p.dt, notes
                    )
                if res is None:
                    d, sl = p.est_d, p.est_s
                else:
                    win = res.waveform(pin)
                    wout = res.waveform(cell.output)
                    d = propagation_delay(
                        win, wout, cfg.vdd, p.in_tr, p.out_tr
                    )
                    sl = wout.transition_time(
                        0.0, cfg.vdd, direction=p.out_tr
                    )
                if d > tables[f"cell_{p.out_tr}"][p.i, p.j]:
                    tables[f"cell_{p.out_tr}"][p.i, p.j] = d
                    tables[f"{p.out_tr}_transition"][p.i, p.j] = sl

        return self._finish_arc(pin, senses, tables)

    # ------------------------------------------------------------------ #
    # Leakage and energy
    # ------------------------------------------------------------------ #
    def leakage_by_state(self, cell: StandardCell) -> dict[str, float]:
        """Leakage power (W) per input state, via the stack-effect model."""
        out: dict[str, float] = {}
        for bits in itertools.product([False, True], repeat=len(cell.inputs)):
            asg = dict(zip(cell.inputs, bits))
            total = 0.0
            values = dict(asg)
            for stage in cell.sized_stages:
                stage_in = {s: values[s] for s in stage.pdn.inputs()}
                pdn_on = stage.pdn.conduction(stage_in)
                values[stage.output] = not pdn_on
                if pdn_on:
                    # Output low: the PUN (off) leaks.  PMOS devices are on
                    # when their gate is low.
                    pun_state = {s: not values[s] for s in stage_in}
                    leak = stage.pdn.dual().leakage_current(
                        pun_state, self._ioff_p * stage.nfin_p
                    )
                else:
                    leak = stage.pdn.leakage_current(
                        stage_in, self._ioff_n * stage.nfin_n
                    )
                total += leak * self.config.vdd
            key = "".join("1" if b else "0" for b in bits)
            out[key] = total
        return out

    def switching_energy(self, cell: StandardCell) -> float:
        """Internal energy per output event (J): CV^2/2 + short circuit."""
        total_cap = 0.0
        for stage in cell.sized_stages:
            total_cap += self._stage_parasitic_cap(stage)
            for consumer in cell.sized_stages:
                total_cap += self._stage_input_cap(consumer, stage.output)
        return SHORT_CIRCUIT_FACTOR * 0.5 * total_cap * self.config.vdd**2

    # ------------------------------------------------------------------ #
    # Sequential cells
    # ------------------------------------------------------------------ #
    def _nand2_reference_stage(self, drive: int) -> Stage:
        pdn = series(device("A"), device("B"))
        return Stage("Y", pdn).sized(drive)

    def characterize_sequential(self, cell: SequentialCell) -> CharacterizedCell:
        """Derive flop timing from the library's own NAND2 stage delays."""
        ref = self._nand2_reference_stage(cell.drive)
        internal = self._nand2_reference_stage(1)
        internal_load = self._stage_parasitic_cap(internal) + 2 * (
            self._stage_input_cap(ref, "A")
        )

        def clk_to_q(slew, load, tr: str):
            """Two-stage clock-to-Q map; slew/load broadcast together."""
            d1, s1 = self._stage_delay_slew(internal, tr, slew, internal_load)
            stage_load = self._stage_parasitic_cap(ref) + load
            d2, s2 = self._stage_delay_slew(ref, tr, s1, stage_load)
            extra = max(cell.clk_to_q_stages - 2, 0)
            return d1 * (1 + extra) + d2, s2

        slews = np.asarray(self.config.slew_index)
        loads = np.asarray(self.config.load_index)

        def table(tr: str, want_slew: bool) -> NLDMTable:
            # The stage-delay model is affine in (slew, load), so both
            # maps mesh-evaluate in one broadcast instead of 49 scalar
            # clk_to_q calls per table.
            d, sl = clk_to_q(slews[:, None], loads[None, :], tr)
            vals = sl if want_slew else d
            shape = (len(slews), len(loads))
            return NLDMTable(
                slews, loads, np.array(np.broadcast_to(vals, shape))
            )

        arc = TimingArc(
            related_pin=cell.clock_pin,
            sense="non_unate",
            cell_rise=table("rise", False),
            cell_fall=table("fall", False),
            rise_transition=table("rise", True),
            fall_transition=table("fall", True),
            timing_type=(
                "rising_edge" if cell.edge == "rising" else
                "falling_edge" if cell.edge == "falling" else "latch"
            ),
        )

        nominal_stage_delay, _ = self._stage_delay_slew(
            internal, "fall", 10e-12, internal_load
        )
        pin_cap_clk = 2 * self._stage_input_cap(internal, "A")
        pin_cap_d = self._stage_input_cap(internal, "A")
        pins = [
            CharacterizedPin(cell.data_pin, pin_cap_d),
            CharacterizedPin(cell.clock_pin, pin_cap_clk),
        ]
        for extra in (cell.reset_pin, cell.set_pin, cell.scan_pin):
            if extra:
                pins.append(CharacterizedPin(extra, pin_cap_d))

        # Leakage: approximate as the equivalent number of NAND2 gates.
        nand = StandardCell(
            name="_NANDREF_X1",
            inputs=("A", "B"),
            output="Y",
            stages=(Stage("Y", series(device("A"), device("B"))),),
        ).with_drive(cell.drive, name="_NANDREF")
        nand_leak = float(np.mean(list(self.leakage_by_state(nand).values())))
        n_gates = cell.transistor_count() / 4.0
        leak_avg = nand_leak * n_gates

        return CharacterizedCell(
            name=cell.name,
            footprint=cell.footprint or cell.name,
            area_um2=cell.area_um2,
            is_sequential=True,
            inputs=pins,
            output=cell.output,
            arcs=[arc],
            leakage_by_state={},
            leakage_avg=leak_avg,
            switching_energy=self.switching_energy(nand) * n_gates / 2.0,
            setup_time=cell.setup_stages * nominal_stage_delay,
            hold_time=cell.hold_stages * nominal_stage_delay * 0.5,
            clock_pin=cell.clock_pin,
            data_pin=cell.data_pin,
        )

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def characterize(self, cell: StandardCell | SequentialCell) -> CharacterizedCell:
        """Characterize one cell with the configured engine.

        Per-arc solver failures inside the SPICE engine are absorbed by
        the retry ladder (see :meth:`_solve_point_resilient`) and show
        up in :attr:`CharacterizedCell.notes`; failures that escape this
        method are wrapped in
        :class:`~repro.errors.CharacterizationError` with cell/arc
        context by :func:`repro.cells.library.build_library`.
        """
        if cell.is_sequential:
            return self.characterize_sequential(cell)  # type: ignore[arg-type]
        assert isinstance(cell, StandardCell)
        arcs = []
        notes: list[str] = []
        for pin in cell.inputs:
            if self.config.engine == "spice":
                arcs.append(self._characterize_arc_spice(cell, pin, notes))
            else:
                arcs.append(self._characterize_arc_analytic(cell, pin))
        leakage = self.leakage_by_state(cell)
        pins = [
            CharacterizedPin(p, self.pin_capacitance(cell, p))
            for p in cell.inputs
        ]
        return CharacterizedCell(
            name=cell.name,
            footprint=cell.footprint or cell.name,
            area_um2=cell.area_um2,
            is_sequential=False,
            inputs=pins,
            output=cell.output,
            arcs=arcs,
            leakage_by_state=leakage,
            leakage_avg=float(np.mean(list(leakage.values()))),
            switching_energy=self.switching_energy(cell),
            truth=cell.truth(),
            input_order=cell.inputs,
            notes=notes,
        )
