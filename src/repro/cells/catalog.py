"""ASAP7-flavoured standard-cell catalog (~200 cells).

The paper characterizes "200 different standard cells from the open-source
ASAP7 PDK".  The PDK itself ships under its own license, so this module
*generates* an equivalent catalog: the usual static-CMOS families (INV/BUF,
NAND/NOR/AND/OR 2-4, AOI/OAI complex gates, XOR/XNOR, MUX, MAJ) across
ASAP7-like drive strengths, plus the sequential family (DFF variants,
latches).  Counted together the catalog lands at ~200 entries, matching
the paper's library size.

Functions are specified as pull-down networks; see
:mod:`repro.cells.stacks` for the algebra and :mod:`repro.cells.cell`
for sizing rules.
"""

from __future__ import annotations

from repro.cells.cell import SequentialCell, Stage, StandardCell
from repro.cells.stacks import Stack, device, parallel, series

__all__ = ["full_catalog", "core_catalog", "cell_by_name"]


def _single_stage(name: str, inputs: tuple[str, ...], pdn: Stack) -> StandardCell:
    return StandardCell(
        name=f"{name}_X1",
        inputs=inputs,
        output="Y",
        stages=(Stage("Y", pdn),),
        footprint=name,
    )


def _with_inverter(
    name: str, inner: StandardCell, out: str = "Y"
) -> StandardCell:
    """Append an output inverter to a cell template (AND = NAND + INV)."""
    renamed = tuple(
        Stage(
            output="YN" if s.output == inner.output else s.output,
            pdn=s.pdn,
            nfin_n=s.nfin_n,
            nfin_p=s.nfin_p,
        )
        for s in inner.stages
    )
    return StandardCell(
        name=f"{name}_X1",
        inputs=inner.inputs,
        output=out,
        stages=renamed + (Stage(out, device("YN")),),
        footprint=name,
    )


# --------------------------------------------------------------------- #
# Combinational templates (all X1; drive fan-out happens below)
# --------------------------------------------------------------------- #
def _combinational_templates() -> list[StandardCell]:
    cells: list[StandardCell] = []
    a, b, c, d = "A", "B", "C", "D"

    inv = _single_stage("INV", (a,), device(a))
    cells.append(inv)
    cells.append(
        StandardCell(
            name="BUF_X1",
            inputs=(a,),
            output="Y",
            stages=(Stage("YN", device(a)), Stage("Y", device("YN"))),
            footprint="BUF",
        )
    )

    # NAND / NOR families.
    for n, names in ((2, (a, b)), (3, (a, b, c)), (4, (a, b, c, d))):
        nand = _single_stage(f"NAND{n}", names, series(*[device(x) for x in names]))
        nor = _single_stage(f"NOR{n}", names, parallel(*[device(x) for x in names]))
        cells.extend([nand, nor])
        cells.append(_with_inverter(f"AND{n}", nand))
        cells.append(_with_inverter(f"OR{n}", nor))

    # AOI / OAI complex gates: the digit string lists the OR(AOI)/AND(OAI)
    # group sizes, e.g. AOI221 = !((A1&A2) | (B1&B2) | C).
    def groups(spec: str, prefix_letters: str = "ABCDE") -> list[list[str]]:
        out = []
        for letter, digit in zip(prefix_letters, spec):
            k = int(digit)
            if k == 1:
                out.append([letter])
            else:
                out.append([f"{letter}{i + 1}" for i in range(k)])
        return out

    aoi_specs = ["21", "22", "211", "221", "222", "31", "32", "33"]
    for spec in aoi_specs:
        gs = groups(spec)
        inputs = tuple(x for g in gs for x in g)
        pdn_aoi = parallel(
            *[
                series(*[device(x) for x in g]) if len(g) > 1 else device(g[0])
                for g in gs
            ]
        )
        pdn_oai = series(
            *[
                parallel(*[device(x) for x in g]) if len(g) > 1 else device(g[0])
                for g in gs
            ]
        )
        aoi = _single_stage(f"AOI{spec}", inputs, pdn_aoi)
        oai = _single_stage(f"OAI{spec}", inputs, pdn_oai)
        cells.extend([aoi, oai])
        if spec in ("21", "22", "31", "33"):
            cells.append(_with_inverter(f"AO{spec}", aoi))
            cells.append(_with_inverter(f"OA{spec}", oai))

    # XOR / XNOR via complementary-pair networks.
    def xor2_stages(x: str, y: str, out: str, invert: bool) -> tuple[Stage, ...]:
        xn, yn = f"{x}N", f"{y}N"
        pair_same = series(device(x), device(y))
        pair_comp = series(device(xn), device(yn))
        pair_mix1 = series(device(x), device(yn))
        pair_mix2 = series(device(xn), device(y))
        # PDN conducting => output low.  XNOR's PDN is the XOR function.
        pdn = (
            parallel(pair_mix1, pair_mix2)
            if invert
            else parallel(pair_same, pair_comp)
        )
        return (
            Stage(xn, device(x)),
            Stage(yn, device(y)),
            Stage(out, pdn),
        )

    cells.append(
        StandardCell(
            name="XOR2_X1",
            inputs=(a, b),
            output="Y",
            stages=xor2_stages(a, b, "Y", invert=False),
            footprint="XOR2",
        )
    )
    cells.append(
        StandardCell(
            name="XNOR2_X1",
            inputs=(a, b),
            output="Y",
            stages=xor2_stages(a, b, "Y", invert=True),
            footprint="XNOR2",
        )
    )
    # XOR3 = XOR2 chained; intermediate-net names do not collide.
    xor3_stages = xor2_stages(a, b, "X1", invert=False) + xor2_stages(
        "X1", c, "Y", invert=False
    )
    cells.append(
        StandardCell(
            name="XOR3_X1",
            inputs=(a, b, c),
            output="Y",
            stages=xor3_stages,
            footprint="XOR3",
        )
    )
    xnor3_stages = xor2_stages(a, b, "X1", invert=False) + xor2_stages(
        "X1", c, "Y", invert=True
    )
    cells.append(
        StandardCell(
            name="XNOR3_X1",
            inputs=(a, b, c),
            output="Y",
            stages=xnor3_stages,
            footprint="XNOR3",
        )
    )

    # Multiplexers: MUXI2 = !(A&!S | B&S); MUX2 adds an inverter.
    muxi_stages = (
        Stage("SN", device("S")),
        Stage("YN", parallel(series(device(a), device("SN")),
                             series(device(b), device("S")))),
    )
    cells.append(
        StandardCell(
            name="MUXI2_X1",
            inputs=(a, b, "S"),
            output="YN",
            stages=muxi_stages,
            footprint="MUXI2",
        )
    )
    cells.append(
        StandardCell(
            name="MUX2_X1",
            inputs=(a, b, "S"),
            output="Y",
            stages=muxi_stages + (Stage("Y", device("YN")),),
            footprint="MUX2",
        )
    )
    # MUX4: two MUXI2 on S0 plus one MUXI2 on S1 (inversions cancel).
    mux4_stages = (
        Stage("S0N", device("S0")),
        Stage("S1N", device("S1")),
        Stage("M0N", parallel(series(device(a), device("S0N")),
                              series(device(b), device("S0")))),
        Stage("M1N", parallel(series(device(c), device("S0N")),
                              series(device(d), device("S0")))),
        Stage("Y", parallel(series(device("M0N"), device("S1N")),
                            series(device("M1N"), device("S1")))),
    )
    cells.append(
        StandardCell(
            name="MUX4_X1",
            inputs=(a, b, c, d, "S0", "S1"),
            output="Y",
            stages=mux4_stages,
            footprint="MUX4",
        )
    )

    # Majority / minority (full-adder carry).
    min3 = _single_stage(
        "MIN3",
        (a, b, c),
        parallel(
            series(device(a), device(b)),
            series(device(a), device(c)),
            series(device(b), device(c)),
        ),
    )
    cells.append(min3)
    cells.append(_with_inverter("MAJ3", min3))
    return cells


#: Drive strengths per footprint family; chosen so the catalog totals ~200
#: cells, echoing the ASAP7-derived library size in the paper.
_DRIVE_PLAN: dict[str, tuple[int, ...]] = {
    "INV": (1, 2, 3, 4, 6, 8, 13, 16, 20),
    "BUF": (1, 2, 3, 4, 6, 8, 12, 16, 20),
    "NAND2": (1, 2, 3, 4, 6, 8),
    "NOR2": (1, 2, 3, 4, 6, 8),
    "AND2": (1, 2, 3, 4, 6, 8),
    "OR2": (1, 2, 3, 4, 6, 8),
    "NAND3": (1, 2, 4, 8),
    "NOR3": (1, 2, 4, 8),
    "AND3": (1, 2, 4, 8),
    "OR3": (1, 2, 4, 8),
    "NAND4": (1, 2, 4, 8),
    "NOR4": (1, 2, 4, 8),
    "AND4": (1, 2, 4, 8),
    "OR4": (1, 2, 4, 8),
    "XOR2": (1, 2, 4),
    "XNOR2": (1, 2, 4),
    "XOR3": (1, 2, 4),
    "XNOR3": (1, 2, 4),
    "MUX2": (1, 2, 4, 8),
    "MUXI2": (1, 2, 4, 8),
    "MUX4": (1, 2, 4),
    "MAJ3": (1, 2, 4),
    "MIN3": (1, 2, 4),
}
_DEFAULT_DRIVES: tuple[int, ...] = (1, 2, 4)


def _sequential_templates() -> list[SequentialCell]:
    cells = [
        SequentialCell(name="DFF_X1", footprint="DFF"),
        SequentialCell(name="DFFN_X1", footprint="DFFN", edge="falling"),
        SequentialCell(name="DFFR_X1", footprint="DFFR", reset_pin="RN"),
        SequentialCell(name="DFFS_X1", footprint="DFFS", set_pin="SN"),
        SequentialCell(
            name="DFFRS_X1", footprint="DFFRS", reset_pin="RN", set_pin="SN"
        ),
        SequentialCell(name="SDFF_X1", footprint="SDFF", scan_pin="SI"),
        SequentialCell(
            name="SDFFR_X1", footprint="SDFFR", scan_pin="SI", reset_pin="RN"
        ),
        SequentialCell(
            name="LATCH_X1", footprint="LATCH", edge="level", clk_to_q_stages=1
        ),
        SequentialCell(
            name="LATCHN_X1", footprint="LATCHN", edge="level", clk_to_q_stages=1
        ),
    ]
    return cells


_SEQ_DRIVES: dict[str, tuple[int, ...]] = {
    "DFF": (1, 2, 4, 8),
    "DFFN": (1, 2),
    "DFFR": (1, 2, 4),
    "DFFS": (1, 2),
    "DFFRS": (1, 2),
    "SDFF": (1, 2),
    "SDFFR": (1, 2),
    "LATCH": (1, 2),
    "LATCHN": (1, 2),
}


def full_catalog() -> list[StandardCell | SequentialCell]:
    """The complete ~200-cell catalog (deterministic order)."""
    cells: list[StandardCell | SequentialCell] = []
    for template in _combinational_templates():
        family = template.footprint
        for drive in _DRIVE_PLAN.get(family, _DEFAULT_DRIVES):
            cells.append(
                template.with_drive(drive) if drive != 1 else template
            )
    for template in _sequential_templates():
        for drive in _SEQ_DRIVES.get(template.footprint, (1,)):
            cells.append(
                template.with_drive(drive) if drive != 1 else template
            )
    return cells


def core_catalog() -> list[StandardCell | SequentialCell]:
    """A small representative subset for fast tests and examples."""
    wanted = {
        "INV_X1", "INV_X2", "INV_X4", "BUF_X2",
        "NAND2_X1", "NAND2_X2", "NOR2_X1", "AND2_X1", "OR2_X1",
        "NAND3_X1", "AOI21_X1", "OAI21_X1",
        "XOR2_X1", "XNOR2_X1", "MUX2_X1", "MAJ3_X1", "MIN3_X1",
        "DFF_X1", "DFF_X2",
    }
    return [c for c in full_catalog() if c.name in wanted]


def cell_by_name(name: str) -> StandardCell | SequentialCell:
    """Look up one catalog cell by exact name."""
    for c in full_catalog():
        if c.name == name:
            return c
    raise KeyError(f"no catalog cell named {name!r}")
