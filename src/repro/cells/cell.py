"""Standard-cell templates: multi-stage static CMOS over stack networks.

A combinational cell is an ordered list of :class:`Stage` objects.  Each
stage is one static CMOS gate: a pull-down network (PDN) :class:`Stack`
plus its dual pull-up, sized in fins.  Stage inputs are either cell inputs
or outputs of earlier stages, so the cell's boolean function is the
feed-forward composition of per-stage complements.

Sequential cells (flip-flops, latches) are modelled as the classic
NAND-based master-slave structures; their timing is derived from the
constituent gate stages by the characterizer rather than by closed-loop
simulation (see :mod:`repro.cells.characterize`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.logic import Expr, NOT, VAR, truth_table
from repro.cells.stacks import Stack

__all__ = ["Stage", "StandardCell", "SequentialCell", "stack_expr"]

#: Layout area per fin in um^2 (ASAP7-flavoured rough constant).
AREA_PER_FIN_UM2 = 0.0216

#: Default P/N fin ratio compensating the mobility gap.
PN_RATIO = 1.3


def stack_expr(stack: Stack) -> Expr:
    """Boolean conduction expression of a pull-down network.

    Series composes with AND, parallel with OR; a conducting PDN pulls the
    stage output low, so the *stage* function is the complement.
    """
    if stack.kind == "device":
        return VAR(stack.input_name)  # type: ignore[arg-type]
    sub = [stack_expr(c) for c in stack.children]
    op = "and" if stack.kind == "series" else "or"
    return Expr(op, args=tuple(sub))


@dataclass(frozen=True)
class Stage:
    """One static CMOS gate inside a cell."""

    output: str
    pdn: Stack
    nfin_n: int = 0  # 0 => auto-size from stack height
    nfin_p: int = 0

    def sized(self, drive: int) -> "Stage":
        """Return a copy with fins resolved for the given drive strength."""
        hn = self.pdn.height()
        hp = self.pdn.dual().height()
        nfin_n = self.nfin_n or hn
        nfin_p = self.nfin_p or max(1, math.ceil(PN_RATIO * hp))
        return Stage(
            output=self.output,
            pdn=self.pdn,
            nfin_n=nfin_n * drive,
            nfin_p=nfin_p * drive,
        )

    @property
    def expr(self) -> Expr:
        """Stage output as a function of its immediate inputs."""
        return NOT(stack_expr(self.pdn))


@dataclass(frozen=True)
class StandardCell:
    """A combinational standard-cell template at one drive strength."""

    name: str
    inputs: tuple[str, ...]
    output: str
    stages: tuple[Stage, ...]
    drive: int = 1
    footprint: str = ""
    """Logical family name shared by all drive variants (e.g. ``NAND2``)."""

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"{self.name}: cell needs at least one stage")
        if self.stages[-1].output != self.output:
            raise ValueError(
                f"{self.name}: last stage must drive the cell output"
            )
        if self.drive < 1:
            raise ValueError(f"{self.name}: drive must be >= 1")
        available = set(self.inputs)
        for stage in self.stages:
            missing = set(stage.pdn.inputs()) - available
            if missing:
                raise ValueError(
                    f"{self.name}: stage {stage.output!r} uses undefined "
                    f"signals {sorted(missing)}"
                )
            available.add(stage.output)

    # ------------------------------------------------------------------ #
    @property
    def sized_stages(self) -> tuple[Stage, ...]:
        """Stages with fins resolved for this cell's drive."""
        return tuple(s.sized(self.drive) for s in self.stages)

    @property
    def is_sequential(self) -> bool:
        return False

    def function(self) -> Expr:
        """The cell's boolean function over its input pins."""
        exprs: dict[str, Expr] = {name: VAR(name) for name in self.inputs}

        def substitute(e: Expr) -> Expr:
            if e.op == "var":
                return exprs[e.name]  # type: ignore[index]
            return Expr(e.op, e.name, tuple(substitute(a) for a in e.args))

        for stage in self.stages:
            exprs[stage.output] = substitute(stage.expr)
        return exprs[self.output]

    def truth(self) -> int:
        """Packed truth table over ``self.inputs`` (LSB = first input)."""
        return truth_table(self.function(), self.inputs)

    def evaluate(self, assignment: dict[str, bool]) -> bool:
        """Evaluate the cell output for a full input assignment."""
        return self.function().evaluate(assignment)

    # ------------------------------------------------------------------ #
    def transistor_count(self) -> int:
        """Total devices (both networks, all stages)."""
        return sum(2 * s.pdn.device_count() for s in self.stages)

    def total_fins(self) -> int:
        """Total fins, the area- and leakage-relevant size measure."""
        total = 0
        for s in self.sized_stages:
            total += s.pdn.device_count() * s.nfin_n
            total += s.pdn.dual().device_count() * s.nfin_p
        return total

    @property
    def area_um2(self) -> float:
        """Estimated layout area in um^2."""
        return self.total_fins() * AREA_PER_FIN_UM2

    def stage_driving(self, signal: str) -> Stage | None:
        """The stage whose output is ``signal`` (None for cell inputs)."""
        for s in self.stages:
            if s.output == signal:
                return s
        return None

    def loads_of(self, signal: str) -> list[tuple[Stage, int, int]]:
        """Stages that consume ``signal``: (stage, n-fanin, p-fanin)."""
        out = []
        for s in self.sized_stages:
            n_fanin = s.pdn.input_fanin(signal)
            if n_fanin:
                p_fanin = s.pdn.dual().input_fanin(signal)
                out.append((s, n_fanin, p_fanin))
        return out

    def with_drive(self, drive: int, name: str | None = None) -> "StandardCell":
        """Return the same footprint at another drive strength."""
        return StandardCell(
            name=name or f"{self.footprint or self.name}_X{drive}",
            inputs=self.inputs,
            output=self.output,
            stages=self.stages,
            drive=drive,
            footprint=self.footprint or self.name,
        )


@dataclass(frozen=True)
class SequentialCell:
    """A positive-edge D flip-flop (or level latch) template.

    The template records the internal gate structure abstractly: the
    number of gate stages between clock and output, and between data and
    the capture point.  The characterizer turns those into clk->Q delay,
    setup and hold from the library's own NAND2 timing.
    """

    name: str
    data_pin: str = "D"
    clock_pin: str = "CK"
    output: str = "Q"
    reset_pin: str | None = None
    set_pin: str | None = None
    scan_pin: str | None = None
    drive: int = 1
    edge: str = "rising"  # or "level" for a latch
    clk_to_q_stages: int = 2
    setup_stages: int = 3
    hold_stages: int = 1
    footprint: str = ""

    def __post_init__(self) -> None:
        if self.drive < 1:
            raise ValueError(f"{self.name}: drive must be >= 1")
        if self.edge not in ("rising", "falling", "level"):
            raise ValueError(f"{self.name}: bad edge {self.edge!r}")

    @property
    def is_sequential(self) -> bool:
        return True

    @property
    def inputs(self) -> tuple[str, ...]:
        pins = [self.data_pin, self.clock_pin]
        for extra in (self.reset_pin, self.set_pin, self.scan_pin):
            if extra:
                pins.append(extra)
        return tuple(pins)

    def transistor_count(self) -> int:
        """Device count of the canonical NAND-based master-slave."""
        base = 6 * 4  # six 2-input NAND equivalents
        extras = 0
        if self.reset_pin:
            extras += 4
        if self.set_pin:
            extras += 4
        if self.scan_pin:
            extras += 8  # input mux
        return base + extras

    def total_fins(self) -> int:
        # Each device ~1 NMOS fin + PN_RATIO PMOS fins, times drive on the
        # output stage only (approximated as +2 fins per extra drive).
        return int(self.transistor_count() * (1 + PN_RATIO) / 2) + 4 * (
            self.drive - 1
        )

    @property
    def area_um2(self) -> float:
        return self.total_fins() * AREA_PER_FIN_UM2

    def with_drive(self, drive: int, name: str | None = None) -> "SequentialCell":
        import dataclasses

        return dataclasses.replace(
            self,
            name=name or f"{self.footprint or self.name}_X{drive}",
            drive=drive,
            footprint=self.footprint or self.name,
        )
