"""Physical constants and technology-level defaults for the 5-nm FinFET model.

All quantities are in SI units unless the name says otherwise.  The
technology defaults mirror an ASAP7-class FinFET geometry (the paper uses
7-nm ASAP7 cells, "geometrically very close" to its 5-nm transistors).
"""

from __future__ import annotations

# Fundamental constants
BOLTZMANN_EV: float = 8.617333262e-5
"""Boltzmann constant in eV/K."""

BOLTZMANN_J: float = 1.380649e-23
"""Boltzmann constant in J/K."""

ELEMENTARY_CHARGE: float = 1.602176634e-19
"""Elementary charge in C."""

EPS_0: float = 8.8541878128e-12
"""Vacuum permittivity in F/m."""

EPS_SIO2: float = 3.9 * EPS_0
"""Permittivity of SiO2 in F/m (effective-oxide-thickness convention)."""

T_ROOM: float = 300.0
"""Room temperature in K -- the paper's baseline corner."""

T_CRYO: float = 10.0
"""Cryogenic temperature in K -- the paper's second corner."""

TNOM: float = 300.0
"""Nominal temperature for all temperature-coefficient expansions."""

# Technology geometry (ASAP7-class FinFET)
LGATE: float = 21e-9
"""Physical gate length in m."""

HFIN: float = 50e-9
"""Fin height in m."""

TFIN: float = 6e-9
"""Fin thickness in m."""

EOT: float = 1.0e-9
"""Equivalent oxide thickness in m."""

VDD: float = 0.70
"""Nominal supply voltage in V."""

FIN_WIDTH_EFF: float = 2.0 * HFIN + TFIN
"""Effective electrical width of a single fin in m (2*HFIN + TFIN)."""

COX: float = EPS_SIO2 / EOT
"""Oxide capacitance per unit area in F/m^2."""


def thermal_voltage(temperature_k: float) -> float:
    """Return the thermal voltage kT/q in volts at ``temperature_k``."""
    return BOLTZMANN_EV * temperature_k
