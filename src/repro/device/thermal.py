"""Cryogenic temperature helpers: effective temperature and Vth(T).

At deep-cryogenic temperatures the measured subthreshold swing does *not*
follow the Boltzmann limit ln(10)*kT/q down to zero; it saturates because of
band tails and source-to-drain tunneling (paper Section III-A, refs.
[26]-[29]).  Following the effective-temperature picture of Pahwa et al. we
replace the lattice temperature T by a smoothly saturating

    T_eff(T) = sqrt((T * (1 + D0))^2 + T0^2)

so that T_eff -> T for T >> T0 and T_eff -> T0 for T -> 0.  All Fermi-Dirac
corrections of the original model collapse into this single effective
quantity for the purposes of the analytic model.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.device import constants as const
from repro.device.params import FinFETParams


class ThermalState(NamedTuple):
    """Temperature-derived quantities shared by one (params, T) pair.

    A circuit's temperature is fixed for the lifetime of a solve, so the
    compact model evaluates these once per ``(id(params),
    temperature_k)`` key (see ``FinFET._derived``) instead of on every
    ``ids`` call.  The fields are computed with exactly the same
    expressions as the standalone helpers below, so cached and uncached
    evaluation are bit-identical.
    """

    dtn: float
    """Normalized cooldown (TNOM - T)/TNOM."""
    teff: float
    """Band-tail effective temperature in K."""
    vt: float
    """Effective thermal voltage k*T_eff/q in V."""
    vth0: float
    """Zero-bias threshold-voltage magnitude at T in V."""


def thermal_state(temperature_k: float, params: FinFETParams) -> ThermalState:
    """Bundle the temperature-only model quantities for one evaluation."""
    return ThermalState(
        dtn=cooldown_fraction(temperature_k),
        teff=effective_temperature(temperature_k, params),
        vt=effective_thermal_voltage(temperature_k, params),
        vth0=threshold_voltage(temperature_k, params),
    )


def effective_temperature(temperature_k: float, params: FinFETParams) -> float:
    """Return the band-tail effective temperature in K.

    ``T0`` sets the saturation floor and ``D0`` a linear stretch; both are
    calibration targets of the ``cryogenic`` extraction stage.
    """
    scaled = temperature_k * (1.0 + params.D0)
    return float(np.sqrt(scaled * scaled + params.T0 * params.T0))


def effective_thermal_voltage(temperature_k: float, params: FinFETParams) -> float:
    """Return k*T_eff/q in volts: the swing-defining thermal voltage."""
    return const.BOLTZMANN_EV * effective_temperature(temperature_k, params)


def cooldown_fraction(temperature_k: float) -> float:
    """Return the normalized cooldown (TNOM - T)/TNOM, 0 at 300 K.

    All linear/quadratic temperature coefficients in the model expand in
    this quantity, which stays in [0, 1) for 0 < T <= 300 K.
    """
    return (const.TNOM - temperature_k) / const.TNOM


def threshold_voltage(temperature_k: float, params: FinFETParams) -> float:
    """Return the zero-bias threshold voltage Vth(T) in V (magnitude).

    Combines the TNOM threshold with the cryogenic shift terms::

        Vth(T) = VTH0 + (PHIG - PHIG_ref)
                 + TVTH*dTn + KT12*dTn^2 + KT11*(TNOM/T_eff - 1)/TNOM_ratio

    where ``dTn`` is the normalized cooldown.  The paper reports +47 % (n)
    and +39 % (p) from 300 K to 10 K; the golden device and the calibration
    bounds are chosen so those shifts are reachable.
    """
    dtn = cooldown_fraction(temperature_k)
    teff = effective_temperature(temperature_k, params)
    # KT11 expands in the (bounded) effective inverse temperature so the
    # term cannot blow up at millikelvin temperatures.
    inv_term = const.TNOM / teff - 1.0
    phig_shift = params.PHIG - 4.25
    return (
        params.VTH0
        + phig_shift
        + params.TVTH * dtn
        + params.KT12 * dtn * dtn
        + params.KT11 * inv_term / 10.0
    )


def subthreshold_slope_factor(vds: np.ndarray | float, params: FinFETParams) -> np.ndarray | float:
    """Return the slope (ideality) factor n(Vds) >= 1.

    ``CIT`` models interface traps, ``CDSC`` source/drain coupling and
    ``CDSCD`` its drain-bias dependence, all normalized to Cox as in the
    paper's parameter story.
    """
    vds_mag = np.abs(vds)
    return 1.0 + params.CIT + params.CDSC + params.CDSCD * vds_mag
