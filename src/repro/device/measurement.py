"""Synthetic 5-nm FinFET measurement campaign.

The paper's calibration inputs are probe-station measurements of real 5-nm
FinFETs at 300 K and 10 K (taken at IIT Delhi's cryogenic facility).  Those
data are not public, so this module *simulates the measurement campaign*:

* a hidden "golden" device -- the same model family as the calibration
  target but with a parameter set the calibration code never sees, tuned so
  the headline physics match the paper (Vth +47 %/+39 % at 10 K, SS
  saturation near 10 mV/dec, OFF-current collapse by three orders of
  magnitude, ON-current nearly unchanged);
* bias-dependent multiplicative noise reproducing the "intrinsic randomness
  of the measurements ... observed at lower VG" that the paper names as the
  cause of low-current discrepancies in Fig. 3;
* the exact sweep plan of Fig. 3: Ids-Vgs in linear (|Vds| = 50 mV) and
  saturation (|Vds| = 750 mV) for both polarities at both temperatures,
  plus Ids-Vds output curves used by the velocity-saturation stage.

See DESIGN.md section 2 for why this substitution preserves the behaviour
the downstream flow depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device import constants as const
from repro.device.finfet import FinFET
from repro.device.params import FinFETParams

__all__ = [
    "IVCurve",
    "IVDataset",
    "MeasurementCampaign",
    "golden_nfet",
    "golden_pfet",
    "VDS_LINEAR",
    "VDS_SATURATION",
]

VDS_LINEAR: float = 0.050
"""|Vds| of the linear-region sweep in V (Fig. 3(a))."""

VDS_SATURATION: float = 0.750
"""|Vds| of the saturation-region sweep in V (Fig. 3(b))."""


def golden_nfet(nfin: int = 1) -> FinFETParams:
    """Return the hidden golden n-FinFET the synthetic fab produced.

    Tuned so the metrics extracted from its curves land on the paper's
    headline numbers (see module docstring).  Calibration code must never
    import this -- it exists only for data generation and for test oracles.
    """
    return FinFETParams(
        polarity="n",
        nfin=nfin,
        VTH0=0.257,
        CIT=0.045,
        CDSC=0.075,
        CDSCD=0.045,
        UO=0.0315,
        UA=0.52,
        UD=0.085,
        EU=1.55,
        RSW=2000.0,
        RDW=2000.0,
        RSWMIN=300.0,
        RDWMIN=300.0,
        ETA0=0.058,
        PDIBL2=0.11,
        PCLM=0.055,
        VSAT=9.2e4,
        VSAT1=9.2e4,
        MEXP=3.8,
        KSATIV=1.02,
        ITUN=2.9e-12,
        STUN=0.56,
        T0=37.0,
        D0=0.02,
        TVTH=-0.010,
        KT11=0.0,
        KT12=0.0,
        UTE=0.05,
        AT=0.0,
        UA1=3.0,
        UD1=3.5,
        TMEXP1=0.35,
        KSATIVT1=0.04,
    )


def golden_pfet(nfin: int = 1) -> FinFETParams:
    """Return the hidden golden p-FinFET (see :func:`golden_nfet`)."""
    return FinFETParams(
        polarity="p",
        nfin=nfin,
        VTH0=0.255,
        CIT=0.050,
        CDSC=0.080,
        CDSCD=0.040,
        UO=0.0185,
        UA=0.60,
        UD=0.105,
        EU=1.62,
        RSW=2400.0,
        RDW=2400.0,
        RSWMIN=350.0,
        RDWMIN=350.0,
        ETA0=0.062,
        PDIBL2=0.13,
        PCLM=0.050,
        VSAT=7.6e4,
        VSAT1=7.6e4,
        MEXP=4.1,
        KSATIV=0.98,
        ITUN=2.8e-12,
        STUN=0.55,
        T0=38.5,
        D0=0.02,
        TVTH=-0.014,
        KT11=0.0,
        KT12=0.0,
        UTE=0.05,
        AT=0.0,
        UA1=2.8,
        UD1=6.0,
        TMEXP1=0.35,
        KSATIVT1=0.04,
    )


@dataclass(frozen=True)
class IVCurve:
    """One measured sweep: fixed ``vds`` (transfer) or fixed ``vgs`` (output).

    ``kind`` is ``"transfer"`` (x = vgs) or ``"output"`` (x = vds).
    Voltages carry the device's natural sign (negative for p-FinFETs).
    """

    kind: str
    polarity: str
    temperature_k: float
    fixed_bias: float
    x: np.ndarray
    ids: np.ndarray

    @property
    def vgs(self) -> np.ndarray:
        """Gate bias axis (transfer: the sweep; output: the fixed bias)."""
        if self.kind == "transfer":
            return self.x
        return np.full_like(self.x, self.fixed_bias)

    @property
    def vds(self) -> np.ndarray:
        """Drain bias axis (output: the sweep; transfer: the fixed bias)."""
        if self.kind == "output":
            return self.x
        return np.full_like(self.x, self.fixed_bias)


@dataclass
class IVDataset:
    """All curves measured for one device polarity."""

    polarity: str
    curves: list[IVCurve] = field(default_factory=list)

    def transfer(self, temperature_k: float, vds_mag: float) -> IVCurve:
        """Return the transfer curve at the given corner (|Vds| match)."""
        for c in self.curves:
            if (
                c.kind == "transfer"
                and abs(c.temperature_k - temperature_k) < 1e-6
                and abs(abs(c.fixed_bias) - vds_mag) < 1e-9
            ):
                return c
        raise KeyError(
            f"no transfer curve at T={temperature_k} K, |Vds|={vds_mag} V"
        )

    def outputs(self, temperature_k: float) -> list[IVCurve]:
        """Return all output curves at one temperature."""
        return [
            c
            for c in self.curves
            if c.kind == "output" and abs(c.temperature_k - temperature_k) < 1e-6
        ]

    @property
    def temperatures(self) -> list[float]:
        """Sorted unique temperatures present in the dataset."""
        return sorted({c.temperature_k for c in self.curves})


class MeasurementCampaign:
    """Generates the synthetic probe-station campaign for both polarities.

    Parameters
    ----------
    seed:
        Seed of the measurement-noise generator.  The same seed reproduces
        the same campaign bit-for-bit.
    noise_floor:
        Instrument noise floor in A: currents are blurred by an additive
        Gaussian of this scale, dominating below ~10 x the floor, which is
        what limits the observable OFF current exactly as in Fig. 3.
    relative_noise:
        Multiplicative log-normal sigma applied everywhere (contact and
        sweep repeatability).
    """

    def __init__(
        self,
        seed: int = 2023,
        noise_floor: float = 2e-13,
        relative_noise: float = 0.015,
        temperatures: tuple[float, ...] = (const.T_ROOM, const.T_CRYO),
    ):
        self.seed = seed
        self.noise_floor = noise_floor
        self.relative_noise = relative_noise
        self.temperatures = temperatures
        self._rng = np.random.default_rng(seed)

    def _noisy(self, ids: np.ndarray) -> np.ndarray:
        """Apply multiplicative + additive instrument noise to a sweep."""
        mult = np.exp(self._rng.normal(0.0, self.relative_noise, ids.shape))
        add = self._rng.normal(0.0, self.noise_floor, ids.shape)
        return ids * mult + add

    def measure_device(self, golden: FinFETParams, n_points: int = 81) -> IVDataset:
        """Run the full sweep plan against one golden device."""
        device = FinFET(golden)
        sign = -1.0 if golden.polarity == "p" else 1.0
        dataset = IVDataset(polarity=golden.polarity)
        vgs_axis = sign * np.linspace(0.0, const.VDD + 0.05, n_points)

        for t in self.temperatures:
            for vds_mag in (VDS_LINEAR, VDS_SATURATION):
                vds = sign * vds_mag
                ids = device.ids(vgs_axis, vds, t)
                dataset.curves.append(
                    IVCurve(
                        kind="transfer",
                        polarity=golden.polarity,
                        temperature_k=t,
                        fixed_bias=vds,
                        x=vgs_axis.copy(),
                        ids=self._noisy(np.asarray(ids)),
                    )
                )
            # Output curves at three gate overdrives for the velocity-
            # saturation stage.
            vds_axis = sign * np.linspace(0.0, const.VDD + 0.05, n_points)
            for vgs_mag in (0.45, 0.60, 0.75):
                vgs = sign * vgs_mag
                ids = device.ids(vgs, vds_axis, t)
                dataset.curves.append(
                    IVCurve(
                        kind="output",
                        polarity=golden.polarity,
                        temperature_k=t,
                        fixed_bias=vgs,
                        x=vds_axis.copy(),
                        ids=self._noisy(np.asarray(ids)),
                    )
                )
        return dataset

    def run(self, n_points: int = 81) -> dict[str, IVDataset]:
        """Measure both polarities; returns ``{"n": ..., "p": ...}``."""
        return {
            "n": self.measure_device(golden_nfet(), n_points=n_points),
            "p": self.measure_device(golden_pfet(), n_points=n_points),
        }
