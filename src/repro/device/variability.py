"""Device mismatch at cryogenic temperatures (paper Section III, ref [17]).

"These reduced dimensions result in a higher mismatch between the
electrical characteristics of the two identical transistors fabricated on
the same chip.  Mismatch in transistor characteristics and Vth increase
at cryogenic temperature are major challenges faced by circuit designers."

The model is Pelgrom's law with a cryogenic multiplier:

    sigma(Vth) = AVT / sqrt(Weff * L * nfin) * f(T)

with ``f`` rising toward cryo (subthreshold mismatch grows as thermal
averaging of trap occupancy freezes out -- 't Hart et al., the paper's
ref [17], report ~1.4-1.8x at 4 K).  :class:`MismatchModel` samples
matched device pairs for Monte-Carlo analyses such as the 6T SRAM
static-noise-margin study in :mod:`repro.device.sram_cell`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.params import FinFETParams
from repro.device.thermal import cooldown_fraction

__all__ = ["MismatchModel"]


@dataclass(frozen=True)
class MismatchModel:
    """Pelgrom-law Vth mismatch with cryogenic degradation."""

    avt: float = 1.4e-9
    """Pelgrom area coefficient in V*m (~1.4 mV*um, 5-nm class)."""

    cryo_factor: float = 1.6
    """sigma multiplier reached at deep cryo relative to 300 K."""

    def temperature_factor(self, temperature_k: float) -> float:
        """Smooth 1 -> cryo_factor rise on cooldown."""
        dtn = cooldown_fraction(temperature_k)
        return 1.0 + (self.cryo_factor - 1.0) * max(dtn, 0.0)

    def sigma_vth(self, params: FinFETParams, temperature_k: float) -> float:
        """Vth standard deviation for one device (V)."""
        area = params.weff * params.lgate * params.nfin
        return self.avt / np.sqrt(area) * self.temperature_factor(
            temperature_k
        )

    def sample(
        self,
        params: FinFETParams,
        temperature_k: float,
        n: int,
        rng: np.random.Generator,
    ) -> list[FinFETParams]:
        """Draw ``n`` device instances with sampled Vth offsets."""
        sigma = self.sigma_vth(params, temperature_k)
        offsets = rng.normal(0.0, sigma, n)
        return [params.copy(VTH0=params.VTH0 + float(d)) for d in offsets]

    def mismatch_pair_sigma(
        self, params: FinFETParams, temperature_k: float
    ) -> float:
        """sigma of the Vth *difference* of a matched pair (V)."""
        return float(np.sqrt(2.0) * self.sigma_vth(params, temperature_k))
