"""6T SRAM bitcell stability: static noise margin via the SPICE engine.

The paper's prior work ([24], the source of its SRAM power numbers)
modelled "SRAM cells and peripheral circuitry ... based on the same
calibrated BSIM-CMG transistor compact model at 300 and 10 K".  This
module rebuilds the cell-stability half of that study:

* the hold butterfly curve from two cross-coupled inverter VTCs computed
  with the MNA DC solver;
* the static noise margin (SNM) as the largest square inscribed in the
  butterfly lobes (the standard 45-degree construction);
* Monte-Carlo SNM under cryogenic Vth mismatch
  (:class:`~repro.device.variability.MismatchModel`) -- the higher Vth at
  10 K *helps* the margin while the larger mismatch *spreads* it, the
  tension the paper's refs [17]/[24] discuss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.finfet import FinFET
from repro.device.params import FinFETParams
from repro.device.variability import MismatchModel

__all__ = ["SRAMCellAnalysis", "inverter_vtc", "hold_snm"]


def inverter_vtc(
    nfet: FinFETParams,
    pfet: FinFETParams,
    temperature_k: float,
    vdd: float = 0.70,
    n_points: int = 41,
) -> tuple[np.ndarray, np.ndarray]:
    """Voltage-transfer curve of one bitcell inverter (DC sweep)."""
    from repro.spice import Circuit, DC, dc_operating_point

    vin = np.linspace(0.0, vdd, n_points)
    vout = np.empty_like(vin)
    for i, v in enumerate(vin):
        circuit = Circuit("inv_vtc", temperature_k=temperature_k)
        circuit.add_vsource("vdd", "vdd", "0", DC(vdd))
        circuit.add_vsource("vin", "in", "0", DC(float(v)))
        circuit.add_finfet("mp", "out", "in", "vdd", FinFET(pfet),
                           with_parasitics=False)
        circuit.add_finfet("mn", "out", "in", "0", FinFET(nfet),
                           with_parasitics=False)
        vout[i] = dc_operating_point(circuit)["out"]
    return vin, vout


def _butterfly_snm(
    v1: np.ndarray, f1: np.ndarray, v2: np.ndarray, f2: np.ndarray,
    vdd: float,
) -> float:
    """SNM from the butterfly of curve1 (f1 vs v1) and mirrored curve2.

    Standard numeric construction: overlay y = f1(x) with the mirrored
    x = f2(y); the two butterfly lobes are the regions of positive and
    negative vertical gap, and the largest inscribed square in a lobe has
    side max(gap)/2.  The cell's SNM is the smaller lobe's square.
    """
    grid = np.linspace(0.0, vdd, 201)
    a = np.interp(grid, v1, f1)
    # Mirrored curve: x = f2(w), y = w; reparameterize on x by sorting.
    order = np.argsort(f2)
    b = np.interp(grid, f2[order], v2[order])
    gap = a - b
    lobe_pos = float(np.max(gap)) / 2.0
    lobe_neg = float(np.max(-gap)) / 2.0
    return max(min(lobe_pos, lobe_neg), 0.0)


def hold_snm(
    nfet_left: FinFETParams,
    pfet_left: FinFETParams,
    nfet_right: FinFETParams,
    pfet_right: FinFETParams,
    temperature_k: float,
    vdd: float = 0.70,
    n_points: int = 41,
) -> float:
    """Hold static noise margin of a 6T cell (access devices off), in V.

    The two inverters may carry different (mismatched) devices; the SNM
    is the smaller of the two butterfly lobes.
    """
    v1, f1 = inverter_vtc(nfet_left, pfet_left, temperature_k, vdd, n_points)
    v2, f2 = inverter_vtc(nfet_right, pfet_right, temperature_k, vdd,
                          n_points)
    return _butterfly_snm(v1, f1, v2, f2, vdd)


@dataclass
class SRAMCellAnalysis:
    """Monte-Carlo hold-SNM study of the ultra-low-Vth bitcell."""

    nfet: FinFETParams
    pfet: FinFETParams
    mismatch: MismatchModel | None = None
    vdd: float = 0.70

    def __post_init__(self) -> None:
        if self.mismatch is None:
            self.mismatch = MismatchModel()

    @classmethod
    def bitcell(cls, models, **kwargs) -> "SRAMCellAnalysis":
        """Build from the SoC's TechModels using the same ultra-low-Vth
        bitcell flavour as the SRAM power model."""
        from repro.power.sram import BITCELL_VTH_OFFSET

        return cls(
            nfet=models.nfet.copy(VTH0=models.nfet.VTH0 + BITCELL_VTH_OFFSET),
            pfet=models.pfet.copy(VTH0=models.pfet.VTH0 + BITCELL_VTH_OFFSET),
            **kwargs,
        )

    def nominal_snm(self, temperature_k: float, n_points: int = 41) -> float:
        """Hold SNM with perfectly matched devices (V)."""
        return hold_snm(
            self.nfet, self.pfet, self.nfet, self.pfet,
            temperature_k, self.vdd, n_points,
        )

    def monte_carlo(
        self,
        temperature_k: float,
        n_cells: int = 25,
        seed: int = 1,
        n_points: int = 31,
    ) -> np.ndarray:
        """Sampled hold SNM across mismatched cells (V)."""
        rng = np.random.default_rng(seed)
        n_samples = self.mismatch.sample(self.nfet, temperature_k,
                                         2 * n_cells, rng)
        p_samples = self.mismatch.sample(self.pfet, temperature_k,
                                         2 * n_cells, rng)
        out = np.empty(n_cells)
        for k in range(n_cells):
            out[k] = hold_snm(
                n_samples[2 * k], p_samples[2 * k],
                n_samples[2 * k + 1], p_samples[2 * k + 1],
                temperature_k, self.vdd, n_points,
            )
        return out
