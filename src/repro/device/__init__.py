"""Device layer: cryogenic-aware 5-nm FinFET compact model and calibration.

Public surface:

* :class:`~repro.device.params.FinFETParams` -- the BSIM-CMG-style knob set.
* :class:`~repro.device.finfet.FinFET` -- the evaluable compact model.
* :class:`~repro.device.measurement.MeasurementCampaign` -- synthetic
  probe-station campaign (the substitution for the paper's silicon data).
* :class:`~repro.device.calibration.Calibrator` -- staged extraction flow.
* :mod:`~repro.device.metrics` -- Vth/SS/Ion/Ioff extraction.
* :mod:`~repro.device.modelcard` -- parameter-deck serialization.
"""

from repro.device.calibration import CalibrationResult, Calibrator, rms_log_error
from repro.device.finfet import FinFET
from repro.device.measurement import (
    IVCurve,
    IVDataset,
    MeasurementCampaign,
    golden_nfet,
    golden_pfet,
)
from repro.device.metrics import DeviceFigures, extract_figures
from repro.device.params import FinFETParams, default_nfet, default_pfet

__all__ = [
    "CalibrationResult",
    "Calibrator",
    "DeviceFigures",
    "FinFET",
    "FinFETParams",
    "IVCurve",
    "IVDataset",
    "MeasurementCampaign",
    "default_nfet",
    "default_pfet",
    "extract_figures",
    "golden_nfet",
    "golden_pfet",
    "rms_log_error",
]
