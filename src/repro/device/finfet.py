"""Charge-based analytic FinFET compact model with cryogenic extensions.

This module stands in for the (licensed) BSIM-CMG + cryogenic extensions the
paper calibrates.  It is a single-piece, C-infinity model valid from deep
subthreshold to strong inversion, from millikelvin to 400 K:

* EKV-style normalized charge linearization ``2q + ln q = u`` solved in
  closed form with the Lambert-W function;
* drift-diffusion current ``i = (qs^2 + qs) - (qd^2 + qd)`` which reduces to
  the Boltzmann exponential in weak inversion and the square law in strong
  inversion;
* velocity saturation via a smoothed ``Vdseff`` (MEXP) and an ``Esat*L``
  degradation factor, both with nonlinear temperature laws (AT*, TMEXP*,
  KSATIVT*);
* DIBL (ETA0/PDIBL2) and channel-length modulation (PCLM);
* bias-dependent source/drain series resistance (RSW*/RDW*) solved by a
  damped fixed point;
* band-tail effective temperature (T0/D0) saturating the subthreshold swing
  and a temperature-independent source-drain tunneling floor (ITUN/STUN)
  that bounds the OFF-current collapse -- the two effects that make 10 K
  behaviour qualitatively different from a naive kT/q extrapolation.

Sign conventions: the public API takes *terminal* voltages ``vgs`` and
``vds`` referenced to the source.  For p-FinFETs these are negative in
normal operation; drain current is returned signed (negative for p-devices
in conduction), matching SPICE conventions.
"""

from __future__ import annotations

import dataclasses
from typing import NamedTuple

import numpy as np

from repro.device import constants as const
from repro.device.mobility import (
    degradation_coefficients,
    low_field_mobility,
    mobility_with_coefficients,
)
from repro.device.params import FinFETParams
from repro.device.thermal import (
    cooldown_fraction,
    subthreshold_slope_factor,
    thermal_state,
)

__all__ = ["FinFET", "normalized_charge", "stack_models"]

# Beyond this normalized overdrive the Lambert-W argument overflows double
# precision; switch to the (very accurate) asymptotic expansion.
_LAMBERT_SWITCH = 500.0


def _lambertw0(x: np.ndarray) -> np.ndarray:
    """Principal-branch Lambert W for real ``x >= 0``, to machine precision.

    Same mathematical function as ``scipy.special.lambertw(x).real`` on
    the non-negative axis, but evaluated with a real-arithmetic Halley
    iteration: the scipy ufunc goes through complex arithmetic and
    dominates the compact-model hot path.  A log-based (large x) or
    rational (small x) initial guess puts the cubically convergent
    iteration within machine precision in three steps; a test pins
    agreement with scipy to ~1e-14 relative across the full range.
    """
    lx = np.log(np.maximum(x, 1e-300))
    w = np.where(x > np.e, lx - np.log(np.maximum(lx, 1.0)), x / (1.0 + x))
    for _ in range(2):
        ew = np.exp(w)
        f = w * ew - x
        wp1 = w + 1.0
        w = w - f / (ew * wp1 - (w + 2.0) * f / (2.0 * wp1))
    # Two Halley steps reach ~1e-8; one Newton polish doubles the digits.
    ew = np.exp(w)
    return w - (w * ew - x) / (ew * (w + 1.0))


def normalized_charge(u: np.ndarray) -> np.ndarray:
    """Solve ``2q + ln(q) = u`` for the normalized inversion charge q > 0.

    Exact solution ``q = W0(2 * exp(u)) / 2``; for large ``u`` the argument
    overflows and the asymptotic ``W(x) ~ ln x - ln ln x`` is used instead.

    >>> import numpy as np
    >>> q = normalized_charge(np.array([0.0]))
    >>> bool(abs(2 * q[0] + np.log(q[0])) < 1e-12)
    True
    """
    u = np.asarray(u, dtype=float)
    q = np.empty_like(u)
    small = u < _LAMBERT_SWITCH
    if small.all():
        return 0.5 * _lambertw0(2.0 * np.exp(u))
    if small.any():
        q[small] = 0.5 * _lambertw0(2.0 * np.exp(u[small]))
    big = ~small
    if big.any():
        x = u[big] + np.log(2.0)
        w = x - np.log(x)
        # One Newton step of w + ln w = x polishes to ~1e-12 relative.
        w = w - (w + np.log(w) - x) * w / (w + 1.0)
        q[big] = 0.5 * w
    return q


class _TempDerived(NamedTuple):
    """Per-(params, temperature) model quantities cached by :class:`FinFET`.

    Everything here depends only on the parameter record and the lattice
    temperature -- which a circuit fixes for a whole solve -- so the
    Newton inner loop should never recompute it per ``ids`` call.
    """

    vt: float
    """Effective thermal voltage k*T_eff/q in V."""
    vth0: float
    """Zero-bias threshold-voltage magnitude in V."""
    vsat: float
    """Saturation velocity after its temperature law in m/s."""
    mexp: float
    """Vdseff smoothing exponent after its temperature law."""
    ksativ: float
    """Pinch-off (Vdsat) scaling after its temperature law."""
    u0: float
    """Low-field mobility U0(T) in m^2/Vs."""
    ua: float
    """Surface-roughness degradation coefficient UA(T)."""
    ud: float
    """Coulomb-scattering degradation coefficient UD(T)."""
    eu: float
    """Roughness exponent EU(T)."""


class FinFET:
    """Evaluable FinFET device bound to a parameter set.

    The heavy lifting happens in :meth:`ids`; everything else (conductances,
    capacitances, curve helpers) derives from it.

    Parameters
    ----------
    params:
        The device parameter record.  ``params.polarity`` selects n/p
        behaviour; ``params.nfin`` multiplies current and capacitance.
    """

    def __init__(self, params: FinFETParams):
        self.params = params
        # (id(params), temperature_k) -> (_TempDerived, params).  The
        # params object is pinned in the value so a dead record's id
        # cannot be recycled into a stale hit; a mutated-in-place params
        # record is the one (documented) way to invalidate by hand:
        # ``fet.invalidate_cache()``.
        self._derived_cache: dict[tuple[int, float],
                                  tuple[_TempDerived, FinFETParams]] = {}

    # ------------------------------------------------------------------ #
    # Temperature-derived cache
    # ------------------------------------------------------------------ #
    def _derived(self, temperature_k: float) -> _TempDerived:
        """Temperature-derived quantities, computed once per (params, T).

        The solver evaluates ``ids`` thousands of times per transient at
        one fixed temperature; vth/vsat/mexp/ksativ and the mobility
        coefficients only depend on ``(params, temperature_k)``, so they
        are cached here.  Identical arithmetic to the uncached helpers,
        hence bit-identical currents.
        """
        key = (id(self.params), temperature_k)
        hit = self._derived_cache.get(key)
        if hit is not None:
            return hit[0]
        p = self.params
        state = thermal_state(temperature_k, p)
        ua, ud, eu = degradation_coefficients(temperature_k, p)
        derived = _TempDerived(
            vt=state.vt,
            vth0=state.vth0,
            vsat=self._vsat(temperature_k),
            mexp=self._mexp(temperature_k),
            ksativ=self._ksativ(temperature_k),
            u0=low_field_mobility(temperature_k, p),
            ua=ua,
            ud=ud,
            eu=eu,
        )
        self._derived_cache[key] = (derived, p)
        return derived

    def invalidate_cache(self) -> None:
        """Drop cached temperature-derived quantities.

        Only needed if the bound ``params`` record was mutated in place
        (the calibration flow always rebinds fresh copies instead).
        """
        self._derived_cache.clear()

    # ------------------------------------------------------------------ #
    # Derived operating-point quantities
    # ------------------------------------------------------------------ #
    def vth(self, temperature_k: float, vds: float = 0.0) -> float:
        """Return the DIBL-corrected threshold magnitude at ``vds`` in V."""
        p = self.params
        vds_mag = abs(vds)
        dibl = p.ETA0 * vds_mag / (1.0 + p.PDIBL2 * vds_mag)
        return self._derived(temperature_k).vth0 - dibl

    def _vsat(self, temperature_k: float) -> float:
        """Saturation velocity with its nonlinear temperature law (m/s)."""
        p = self.params
        dtn = cooldown_fraction(temperature_k)
        factor = 1.0 + p.AT * dtn + p.AT1 * dtn * dtn + p.AT2 * dtn**3
        return max(p.VSAT * factor, 1e3)

    def _mexp(self, temperature_k: float) -> float:
        """Vdseff smoothing exponent with temperature law (dimensionless)."""
        p = self.params
        dtn = cooldown_fraction(temperature_k)
        return max(p.MEXP + p.TMEXP1 * dtn + p.TMEXP2 * dtn * dtn, 1.2)

    def _ksativ(self, temperature_k: float) -> float:
        """Pinch-off (Vdsat) scaling with temperature law (dimensionless)."""
        p = self.params
        dtn = cooldown_fraction(temperature_k)
        return max(p.KSATIV * (1.0 + p.KSATIVT1 * dtn + p.KSATIVT2 * dtn * dtn), 0.1)

    # ------------------------------------------------------------------ #
    # Core current
    # ------------------------------------------------------------------ #
    def _ids_intrinsic(
        self,
        vgs: np.ndarray,
        vds: np.ndarray,
        temperature_k: float,
    ) -> np.ndarray:
        """Channel current (A, positive) for *internal* positive vgs/vds."""
        p = self.params
        d = self._derived(temperature_k)
        vt = d.vt
        nslope = subthreshold_slope_factor(vds, p)
        vth_eff = d.vth0 - p.ETA0 * vds / (1.0 + p.PDIBL2 * vds)

        u_s = (vgs - vth_eff) / (nslope * vt)
        qs = normalized_charge(u_s)

        mu = mobility_with_coefficients(vgs, qs, np.maximum(vth_eff, 0.0),
                                        p.ETAMOB, d.u0, d.ua, d.ud, d.eu)
        esat_l = 2.0 * d.vsat * p.lgate / np.maximum(mu, 1e-6)

        # Smooth pinch-off voltage: strong-inversion branch ~2*n*vt*qs capped
        # by Esat*L, plus a ~3*vt subthreshold floor.
        vov = 2.0 * nslope * vt * qs
        vdsat = d.ksativ * (vov * esat_l / (vov + esat_l) + 3.0 * vt)
        mexp = d.mexp
        ratio = np.maximum(vds, 0.0) / vdsat
        vdseff = vds / np.power(1.0 + np.power(ratio, mexp), 1.0 / mexp)

        u_d = u_s - vdseff / vt
        qd = normalized_charge(u_d)

        i_norm = (qs * qs + qs) - (qd * qd + qd)
        prefactor = (
            2.0
            * nslope
            * mu
            * p.cox
            * (p.weff * p.nfin / p.lgate)
            * vt
            * vt
        )
        ids = prefactor * i_norm
        ids = ids / (1.0 + vdseff / esat_l)
        ids = ids * (1.0 + p.PCLM * np.maximum(vds - vdseff, 0.0))

        # Source-drain tunneling / GIDL-like floor: nearly temperature
        # independent, weak gate control (large swing STUN), vanishes at
        # vds = 0.
        floor = (
            p.ITUN
            * p.nfin
            * np.exp(np.clip((vgs - p.VTH0) / p.STUN, -60.0, 3.0))
            * (vds / (vds + 0.1))
        )
        return ids + np.maximum(floor, 0.0)

    def _series_resistances(self, qs_proxy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Bias-dependent per-device source/drain resistances in Ohm."""
        p = self.params
        rs = (p.RSWMIN + p.RSW / (1.0 + qs_proxy)) / p.nfin
        rd = (p.RDWMIN + p.RDW / (1.0 + qs_proxy)) / p.nfin
        return rs, rd

    def ids(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float,
    ) -> np.ndarray:
        """Return the signed drain current in A.

        Accepts scalars or broadcastable arrays for ``vgs``/``vds``.  For
        p-devices apply negative bias voltages; the returned current is then
        negative, as a circuit simulator expects.
        """
        p = self.params
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs, vds = np.broadcast_arrays(vgs, vds)

        if p.polarity == "p":
            # Evaluate the symmetric n-type equations on mirrored biases.
            return -self._ids_forward(-vgs, -vds, temperature_k)
        return self._ids_forward(vgs, vds, temperature_k)

    def _ids_forward(
        self, vgs: np.ndarray, vds: np.ndarray, temperature_k: float
    ) -> np.ndarray:
        """Signed current for n-convention biases, handling vds < 0 by
        source/drain exchange (the device is physically symmetric)."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        reverse = vds < 0.0
        vgs_eff = np.where(reverse, vgs - vds, vgs)
        vds_eff = np.abs(vds)

        ids = self._ids_with_rseries(vgs_eff, vds_eff, temperature_k)
        return np.where(reverse, -ids, ids)

    def _ids_with_rseries(
        self, vgs: np.ndarray, vds: np.ndarray, temperature_k: float
    ) -> np.ndarray:
        """Positive-bias current including the series-resistance fixed point."""
        p = self.params
        d = self._derived(temperature_k)
        nslope = subthreshold_slope_factor(vds, p)
        qs_proxy = normalized_charge((vgs - d.vth0) / (nslope * d.vt))
        rs, rd = self._series_resistances(qs_proxy)

        ids = self._ids_intrinsic(vgs, vds, temperature_k)
        for _ in range(3):
            vgs_int = np.maximum(vgs - ids * rs, 0.0)
            vds_int = np.maximum(vds - ids * (rs + rd), 0.0)
            ids_new = self._ids_intrinsic(vgs_int, vds_int, temperature_k)
            ids = 0.5 * ids + 0.5 * ids_new
        return ids

    # ------------------------------------------------------------------ #
    # Small-signal and capacitance helpers
    # ------------------------------------------------------------------ #
    def gm(
        self, vgs: float, vds: float, temperature_k: float, delta: float = 1e-4
    ) -> float:
        """Transconductance dIds/dVgs in S (central finite difference)."""
        hi = self.ids(vgs + delta, vds, temperature_k)
        lo = self.ids(vgs - delta, vds, temperature_k)
        return float((hi - lo) / (2.0 * delta))

    def gds(
        self, vgs: float, vds: float, temperature_k: float, delta: float = 1e-4
    ) -> float:
        """Output conductance dIds/dVds in S (central finite difference)."""
        hi = self.ids(vgs, vds + delta, temperature_k)
        lo = self.ids(vgs, vds - delta, temperature_k)
        return float((hi - lo) / (2.0 * delta))

    def gate_capacitance(self) -> float:
        """Lumped gate input capacitance in F (all fins)."""
        return self.params.nfin * self.params.cgate_fin

    def drain_capacitance(self) -> float:
        """Lumped drain parasitic capacitance in F (all fins)."""
        return self.params.nfin * (self.params.COV + self.params.CJD)

    # ------------------------------------------------------------------ #
    # Curve helpers used by measurement/calibration/plotting
    # ------------------------------------------------------------------ #
    def transfer_curve(
        self,
        vds: float,
        temperature_k: float,
        vgs: np.ndarray | None = None,
        n_points: int = 61,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (vgs, ids) for an Ids-Vgs sweep at fixed ``vds``.

        For p-devices pass negative ``vds``; the sweep then runs from 0 to
        -VDD automatically.
        """
        sign = -1.0 if self.params.polarity == "p" else 1.0
        if vgs is None:
            vgs = sign * np.linspace(0.0, const.VDD, n_points)
        ids = self.ids(vgs, vds, temperature_k)
        return np.asarray(vgs), ids

    def output_curve(
        self,
        vgs: float,
        temperature_k: float,
        vds: np.ndarray | None = None,
        n_points: int = 41,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (vds, ids) for an Ids-Vds sweep at fixed ``vgs``."""
        sign = -1.0 if self.params.polarity == "p" else 1.0
        if vds is None:
            vds = sign * np.linspace(0.0, const.VDD, n_points)
        ids = self.ids(vgs, vds, temperature_k)
        return np.asarray(vds), ids

    def ion(self, temperature_k: float, vdd: float = const.VDD) -> float:
        """ON-current magnitude at |Vgs| = |Vds| = Vdd in A."""
        sign = -1.0 if self.params.polarity == "p" else 1.0
        return float(abs(self.ids(sign * vdd, sign * vdd, temperature_k)))

    def ioff(self, temperature_k: float, vdd: float = const.VDD) -> float:
        """OFF-current magnitude at Vgs = 0, |Vds| = Vdd in A."""
        sign = -1.0 if self.params.polarity == "p" else 1.0
        return float(abs(self.ids(0.0, sign * vdd, temperature_k)))

    def effective_current(self, temperature_k: float, vdd: float = const.VDD) -> float:
        """Switching effective current Ieff = (IH + IL)/2 in A.

        The standard Na/Nose effective-current metric used by the analytic
        characterization engine: IH = I(Vgs=Vdd, Vds=Vdd/2),
        IL = I(Vgs=Vdd/2, Vds=Vdd).
        """
        sign = -1.0 if self.params.polarity == "p" else 1.0
        ih = abs(self.ids(sign * vdd, sign * vdd / 2.0, temperature_k))
        il = abs(self.ids(sign * vdd / 2.0, sign * vdd, temperature_k))
        return float((ih + il) / 2.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return f"FinFET({p.polarity}, nfin={p.nfin}, VTH0={p.VTH0:.3f})"


class _StackedParams:
    """Per-device parameter arrays quacking like :class:`FinFETParams`.

    Every numeric field of the parameter record becomes a float array with
    one entry per device (repeated per group, then tiled ``tile`` times to
    match multi-point evaluation layouts).  The model equations are purely
    elementwise, so running them with array-valued parameters produces the
    same numbers each device would get from its own scalar evaluation.
    """

    def __init__(self, params_list: list[FinFETParams],
                 counts: np.ndarray, tile: int):
        names = [f.name for f in dataclasses.fields(FinFETParams)
                 if f.name != "polarity"]
        # Derived convenience properties used by the current equations.
        names += ["weff", "cox", "cgate_fin"]
        for name in names:
            vals = np.repeat(
                np.array([getattr(p, name) for p in params_list],
                         dtype=float),
                counts,
            )
            setattr(self, name, np.tile(vals, tile) if tile > 1 else vals)


class _StackedFinFET(FinFET):
    """One evaluator for a heterogeneous batch of FinFET instances.

    Stacks the parameter records (and the per-temperature derived
    quantities) of several devices into arrays so a whole circuit's worth
    of drain currents comes out of a *single* ``ids`` call.  Polarity is
    folded into a per-device sign vector: p-devices see mirrored biases,
    exactly like ``FinFET.ids`` does per group.

    Inherits the entire current computation from :class:`FinFET`; only
    parameter access and the polarity dispatch are overridden.
    """

    def __init__(self, models: list[FinFET], counts, tile: int = 1):
        # Deliberately no super().__init__: self.params is the stacked
        # namespace, and the derived cache is keyed by temperature alone
        # (each underlying model keeps its own (params, T) cache).
        self._models = list(models)
        self._counts = np.asarray(counts, dtype=int)
        self._tile = int(tile)
        self.params = _StackedParams(
            [m.params for m in self._models], self._counts, self._tile
        )
        sign = np.repeat(
            np.array([-1.0 if m.params.polarity == "p" else 1.0
                      for m in self._models]),
            self._counts,
        )
        self._sign = np.tile(sign, self._tile) if self._tile > 1 else sign
        self._stacked_derived: dict[float, _TempDerived] = {}

    def _derived(self, temperature_k: float) -> _TempDerived:
        hit = self._stacked_derived.get(temperature_k)
        if hit is not None:
            return hit
        per = [m._derived(temperature_k) for m in self._models]
        arrays = []
        for fname in _TempDerived._fields:
            vals = np.repeat(
                np.array([getattr(d, fname) for d in per]), self._counts
            )
            arrays.append(np.tile(vals, self._tile)
                          if self._tile > 1 else vals)
        hit = _TempDerived(*arrays)
        self._stacked_derived[temperature_k] = hit
        return hit

    def invalidate_cache(self) -> None:
        self._stacked_derived.clear()
        for m in self._models:
            m.invalidate_cache()

    def ids(
        self,
        vgs: np.ndarray | float,
        vds: np.ndarray | float,
        temperature_k: float,
    ) -> np.ndarray:
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vgs, vds = np.broadcast_arrays(vgs, vds)
        s = self._sign
        return s * self._ids_forward(s * vgs, s * vds, temperature_k)


def stack_models(models: list[FinFET], counts, tile: int = 1) -> FinFET:
    """Build a batch evaluator over ``models`` repeated ``counts`` times.

    ``counts[i]`` devices share ``models[i]``; the returned object's
    ``ids`` expects bias arrays laid out as the concatenation of each
    model's devices (optionally ``tile`` copies of that layout back to
    back, for multi-point finite-difference evaluation).
    """
    return _StackedFinFET(models, counts, tile=tile)
