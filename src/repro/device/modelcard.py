"""Modelcard serialization: human-readable parameter decks.

The paper's flow hands a calibrated "modelcard" from device modelling to
standard-cell characterization (Fig. 4).  We serialize
:class:`~repro.device.params.FinFETParams` records in a SPICE-like
``.model`` deck so libraries and calibration results are inspectable and
round-trippable.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.device.params import FinFETParams

__all__ = ["dumps", "loads", "save", "load"]

_HEADER = "* repro cryogenic FinFET modelcard"


def dumps(params: FinFETParams, name: str | None = None) -> str:
    """Serialize a parameter record to modelcard text.

    >>> from repro.device.params import default_nfet
    >>> text = dumps(default_nfet())
    >>> text.splitlines()[0]
    '* repro cryogenic FinFET modelcard'
    """
    name = name or f"{params.polarity}fet"
    lines = [_HEADER, f".model {name} finfet_cryo"]
    for key, value in sorted(params.as_dict().items()):
        if isinstance(value, float):
            lines.append(f"+ {key} = {value!r}")
        else:
            lines.append(f"+ {key} = {value}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def loads(text: str) -> FinFETParams:
    """Parse modelcard text back into a parameter record.

    Unknown keys raise ``ValueError`` so silently-stale decks are caught.
    """
    values: dict[str, object] = {}
    field_types = {f.name: f.type for f in dataclasses.fields(FinFETParams)}
    for raw in text.splitlines():
        line = raw.strip()
        if not line.startswith("+"):
            continue
        body = line[1:].strip()
        if "=" not in body:
            raise ValueError(f"malformed modelcard line: {raw!r}")
        key, _, value = body.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in field_types:
            raise ValueError(f"unknown modelcard parameter: {key!r}")
        if key == "polarity":
            values[key] = value.strip("'\"")
        elif key == "nfin":
            values[key] = int(value)
        else:
            values[key] = float(value)
    if "polarity" not in values:
        raise ValueError("modelcard missing polarity")
    return FinFETParams(**values)  # type: ignore[arg-type]


def save(params: FinFETParams, path: str | Path, name: str | None = None) -> None:
    """Write a modelcard file."""
    Path(path).write_text(dumps(params, name=name))


def load(path: str | Path) -> FinFETParams:
    """Read a modelcard file."""
    return loads(Path(path).read_text())
