"""Temperature- and field-dependent effective mobility.

Implements the paper's mobility narrative (Section III-A):

* peak (low-field) mobility is *enhanced* at cryogenic temperatures because
  phonon scattering freezes out (``UTE`` term);
* at higher vertical fields, surface-roughness scattering increases for the
  slow cold carriers (``UA`` grows via ``UA1``/``UA2``);
* Coulomb scattering grows at cryogenic temperatures but is screened by the
  inversion charge (``UD`` grows via ``UD1``/``UD2``, divided by charge).

The model form is the usual BSIM-style degradation law

    mu_eff = U0(T) / (1 + UA(T) * Eeff^EU(T) + UD(T) / (0.1 + q_n))

with ``Eeff`` the normalized effective vertical field and ``q_n`` the
normalized inversion charge (screening).
"""

from __future__ import annotations

import numpy as np

from repro.device.params import FinFETParams
from repro.device.thermal import cooldown_fraction


def low_field_mobility(temperature_k: float, params: FinFETParams) -> float:
    """Return the phonon-limited low-field mobility U0(T) in m^2/Vs.

    Grows monotonically toward cryo and saturates (phonons freeze out, but
    the remaining neutral-defect scattering bounds the peak).
    """
    dtn = cooldown_fraction(temperature_k)
    return params.UO * (1.0 + params.UTE * dtn)


def degradation_coefficients(
    temperature_k: float, params: FinFETParams
) -> tuple[float, float, float]:
    """Return (UA(T), UD(T), EU(T)) at ``temperature_k``.

    All three expand linearly/quadratically in the normalized cooldown;
    coefficients are clamped to stay physical (non-negative UA/UD, EU >= 1).
    """
    dtn = cooldown_fraction(temperature_k)
    ua = max(params.UA + params.UA1 * dtn + params.UA2 * dtn * dtn, 0.0)
    ud = max(params.UD + params.UD1 * dtn + params.UD2 * dtn * dtn, 0.0)
    eu = max(params.EU + params.EU1 * dtn, 1.0)
    return ua, ud, eu


def mobility_with_coefficients(
    vgs: np.ndarray | float,
    qn: np.ndarray | float,
    vth: float,
    etamob: float,
    u0: float,
    ua: float,
    ud: float,
    eu: float,
) -> np.ndarray | float:
    """Degradation law evaluated with precomputed temperature coefficients.

    The bias-dependent part of :func:`effective_mobility`, split out so
    the compact model's per-temperature cache can pay for
    ``low_field_mobility``/``degradation_coefficients`` once per
    ``(params, T)`` instead of on every ``ids`` call.
    """
    # Normalized effective vertical field ~ (Vgs + Vth)/(2 * 1V), scaled by
    # ETAMOB; clipped at zero so the subthreshold region sees no roughness
    # degradation.
    eeff = np.maximum(etamob * (np.abs(vgs) + vth) / 2.0, 0.0)
    denom = 1.0 + ua * np.power(eeff, eu) + ud / (0.1 + qn)
    return u0 / denom


def effective_mobility(
    vgs: np.ndarray | float,
    qn: np.ndarray | float,
    vth: float,
    temperature_k: float,
    params: FinFETParams,
) -> np.ndarray | float:
    """Return the effective channel mobility in m^2/Vs.

    Parameters
    ----------
    vgs:
        Gate-source voltage magnitude in V.
    qn:
        Normalized inversion charge (dimensionless, EKV units); used to
        screen the Coulomb term.
    vth:
        Threshold voltage magnitude at the operating temperature in V.
    temperature_k:
        Lattice temperature in K.
    params:
        Device parameter set.
    """
    u0 = low_field_mobility(temperature_k, params)
    ua, ud, eu = degradation_coefficients(temperature_k, params)
    return mobility_with_coefficients(vgs, qn, vth, params.ETAMOB,
                                      u0, ua, ud, eu)
