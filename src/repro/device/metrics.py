"""Figure-of-merit extraction from I-V curves.

These routines operate on raw (vgs, ids) arrays so they work identically on
synthetic measurements and on model evaluations -- exactly how the paper
compares the two in Fig. 3 and reports the +47 %/+39 % Vth shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device import constants as const

__all__ = [
    "DeviceFigures",
    "constant_current_vth",
    "subthreshold_swing",
    "extract_figures",
]

#: Constant-current threshold criterion, normalized to W/L (A).
CC_THRESHOLD_SPECIFIC = 1e-7


def constant_current_vth(
    vgs: np.ndarray,
    ids: np.ndarray,
    weff: float = const.FIN_WIDTH_EFF,
    lgate: float = const.LGATE,
) -> float:
    """Extract Vth with the constant-current method.

    The criterion current is ``100 nA * Weff / Lgate`` (per fin), the
    de-facto standard for FinFET reporting.  Works for both polarities by
    operating on magnitudes.  Returns NaN when the curve never crosses the
    criterion.
    """
    v = np.abs(np.asarray(vgs, dtype=float))
    i = np.abs(np.asarray(ids, dtype=float))
    order = np.argsort(v)
    v, i = v[order], i[order]
    icrit = CC_THRESHOLD_SPECIFIC * weff / lgate
    above = i >= icrit
    if not above.any() or above.all():
        return float("nan")
    k = int(np.argmax(above))
    if k == 0:
        return float(v[0])
    # Interpolate in log-current for accuracy in the exponential region.
    x0, x1 = np.log10(i[k - 1]), np.log10(i[k])
    f = (np.log10(icrit) - x0) / (x1 - x0)
    return float(v[k - 1] + f * (v[k] - v[k - 1]))


def subthreshold_swing(
    vgs: np.ndarray,
    ids: np.ndarray,
    decade_lo: float = 1e-9,
    decade_hi: float = 1e-7,
) -> float:
    """Extract the subthreshold swing in V/decade.

    Fits a straight line to log10(I) vs |Vgs| over the current window
    [``decade_lo``, ``decade_hi``] (A), the region where the paper's curves
    are exponential.  Returns NaN if fewer than three samples fall in the
    window.
    """
    v = np.abs(np.asarray(vgs, dtype=float))
    i = np.abs(np.asarray(ids, dtype=float))
    mask = (i >= decade_lo) & (i <= decade_hi)
    if mask.sum() < 3:
        return float("nan")
    slope, _ = np.polyfit(v[mask], np.log10(i[mask]), 1)
    if slope <= 0:
        return float("nan")
    return float(1.0 / slope)


@dataclass(frozen=True)
class DeviceFigures:
    """Headline device figures of merit at one temperature."""

    temperature_k: float
    vth: float
    """Constant-current threshold voltage magnitude (V)."""
    swing: float
    """Subthreshold swing (V/decade)."""
    ion: float
    """ON current magnitude at Vgs=Vds=Vdd (A)."""
    ioff: float
    """OFF current magnitude at Vgs=0, Vds=Vdd (A)."""

    @property
    def on_off_ratio(self) -> float:
        """Ion/Ioff ratio (dimensionless)."""
        return self.ion / self.ioff if self.ioff > 0 else float("inf")


def extract_figures(
    vgs_sat: np.ndarray,
    ids_sat: np.ndarray,
    temperature_k: float,
    vdd: float = const.VDD,
) -> DeviceFigures:
    """Extract all figures of merit from one saturation transfer curve.

    ``vgs_sat``/``ids_sat`` must span 0..Vdd (magnitudes may be a p-device's
    negative sweep).  Ion/Ioff are read from the curve endpoints.
    """
    v = np.abs(np.asarray(vgs_sat, dtype=float))
    i = np.abs(np.asarray(ids_sat, dtype=float))
    order = np.argsort(v)
    v, i = v[order], i[order]
    ion = float(np.interp(vdd, v, i))
    ioff = float(i[0])
    return DeviceFigures(
        temperature_k=temperature_k,
        vth=constant_current_vth(v, i),
        swing=subthreshold_swing(v, i),
        ion=ion,
        ioff=ioff,
    )
