"""BSIM-CMG-style parameter set for the cryogenic-aware FinFET compact model.

The parameter names follow the ones the paper manipulates during calibration
(Section III-A):

* ``PHIG, CIT, CDSC``           -- subthreshold behaviour at 300 K
* ``UO, UA, UD, EU, ETAMOB``    -- low-field mobility and degradation
* ``RSW, RDW, RSWMIN, RDWMIN``  -- source/drain series resistance
* ``ETA0, PDIBL2, CDSCD``       -- drain-induced barrier lowering
* ``VSAT, VSAT1, MEXP, KSATIV`` -- velocity saturation / Vdsat smoothing
* cryogenic extensions (after Pahwa et al., paper ref. [26]):
  ``T0, D0`` (band-tail effective temperature), ``KT11, KT12, TVTH``
  (threshold-voltage temperature law), ``UA1, UA2, UD1, UD2, EU1``
  (scattering temperature coefficients), ``TMEXP1, TMEXP2`` (Vdsat smoothing
  vs. T), ``AT, AT1, AT2`` (saturation velocity vs. T) and
  ``KSATIVT1, KSATIVT2`` (pinch-off vs. T).

The model is *not* the licensed BSIM-CMG Verilog-A implementation -- it is a
charge-based analytic model exposing the same knobs so the paper's staged
extraction flow can be reproduced faithfully (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator

from repro.device import constants as const
from repro.errors import ConfigError


@dataclass
class FinFETParams:
    """Complete parameter set for one FinFET polarity.

    Instances are plain records: the model equations live in
    :mod:`repro.device.finfet`.  All voltages are in V, currents in A,
    resistances in Ohm (per fin), mobilities in m^2/(V*s).
    """

    # Polarity and geometry ------------------------------------------------
    polarity: str = "n"
    """Either ``"n"`` or ``"p"``."""

    nfin: int = 1
    """Number of fins; acts as a pure current/capacitance multiplier, the
    only parameter the characterization flow changes (paper Section IV-A)."""

    lgate: float = const.LGATE
    """Gate length in m."""

    hfin: float = const.HFIN
    tfin: float = const.TFIN
    eot: float = const.EOT

    # Subthreshold / electrostatics (300 K) --------------------------------
    PHIG: float = 4.25
    """Gate work function in eV.  Shifts the threshold voltage."""

    VTH0: float = 0.20
    """Base threshold voltage at TNOM in V (derived jointly with PHIG; we
    expose it directly because the synthetic flow has no TCAD step)."""

    CIT: float = 0.05
    """Interface-trap capacitance ratio (normalized to Cox); raises the
    subthreshold slope factor."""

    CDSC: float = 0.08
    """Source/drain-to-channel coupling capacitance ratio (normalized)."""

    CDSCD: float = 0.04
    """Drain-bias dependence of CDSC (1/V, normalized)."""

    # Mobility (300 K) ------------------------------------------------------
    UO: float = 0.030
    """Low-field mobility at TNOM in m^2/Vs."""

    UA: float = 0.55
    """Phonon / surface-roughness degradation coefficient (1/V^EU)."""

    UD: float = 0.08
    """Coulomb-scattering degradation coefficient (screened by charge)."""

    EU: float = 1.6
    """Effective-field exponent of the UA term."""

    ETAMOB: float = 1.0
    """Effective-field scaling factor in the mobility model."""

    # Series resistance ------------------------------------------------------
    RSW: float = 2500.0
    """Bias-dependent source resistance (Ohm per fin, screened by charge)."""

    RDW: float = 2500.0
    """Bias-dependent drain resistance (Ohm per fin)."""

    RSWMIN: float = 400.0
    """Residual source resistance floor (Ohm per fin)."""

    RDWMIN: float = 400.0
    """Residual drain resistance floor (Ohm per fin)."""

    # DIBL / output conductance ----------------------------------------------
    ETA0: float = 0.060
    """DIBL coefficient (V/V): Vth reduction per volt of Vds."""

    PDIBL2: float = 0.12
    """DIBL output-conductance shaping (dimensionless, saturates ETA0)."""

    PCLM: float = 0.05
    """Channel-length-modulation coefficient (1/V)."""

    # Velocity saturation ------------------------------------------------------
    VSAT: float = 9.0e4
    """Saturation velocity at TNOM in m/s."""

    VSAT1: float = 9.0e4
    """High-field saturation velocity (second branch) in m/s."""

    MEXP: float = 4.0
    """Vdseff smoothing exponent."""

    KSATIV: float = 1.0
    """Vdsat (pinch-off) scaling factor."""

    # Leakage floor (source-drain tunneling / GIDL-like, paper ref. [29]) ----
    ITUN: float = 3.0e-12
    """Temperature-independent tunneling floor current per fin at
    Vgs = 0, Vds = VDD, in A."""

    STUN: float = 0.55
    """Gate-voltage swing of the tunneling floor in V/decade-e (large =>
    weak gate control, as observed for source-drain tunneling)."""

    # Cryogenic extensions ------------------------------------------------------
    T0: float = 38.0
    """Band-tail saturation temperature in K: the effective temperature
    never falls below ~T0, saturating the subthreshold swing."""

    D0: float = 0.0
    """Linear correction to the effective temperature (dimensionless)."""

    KT11: float = 0.0
    """Linear Vth(T) coefficient on (TNOM/T_eff - 1) (V)."""

    KT12: float = 0.030
    """Quadratic Vth(T) coefficient on the normalized cooldown (V)."""

    TVTH: float = 0.060
    """Linear Vth(T) coefficient on the normalized cooldown (V)."""

    UA1: float = 0.35
    """Linear temperature coefficient of UA (surface roughness grows as the
    carriers cool and crowd the surface)."""

    UA2: float = 0.0
    """Quadratic temperature coefficient of UA."""

    UD1: float = 0.10
    """Linear temperature coefficient of UD (Coulomb scattering grows at
    cryogenic temperatures)."""

    UD2: float = 0.0
    """Quadratic temperature coefficient of UD."""

    EU1: float = 0.0
    """Temperature coefficient of the effective-field exponent."""

    UTE: float = 0.85
    """Phonon-limited mobility enhancement factor toward cryo (peak mobility
    rises as lattice vibration freezes out)."""

    TMEXP: float = 0.0
    """Reserved (paper name); base smoothing handled by MEXP."""

    TMEXP1: float = 0.4
    """Linear temperature coefficient of MEXP."""

    TMEXP2: float = 0.0
    """Quadratic temperature coefficient of MEXP."""

    AT: float = 0.10
    """Linear temperature coefficient of VSAT (velocity rises toward cryo)."""

    AT1: float = 0.0
    """Quadratic temperature coefficient of VSAT."""

    AT2: float = 0.0
    """Cubic temperature coefficient of VSAT."""

    KSATIVT1: float = 0.05
    """Linear temperature coefficient of KSATIV (pinch-off vs. T)."""

    KSATIVT2: float = 0.0
    """Quadratic temperature coefficient of KSATIV."""

    # Parasitics for timing --------------------------------------------------
    COV: float = 0.25e-16
    """Overlap/fringe capacitance per fin per side in F."""

    CJD: float = 0.12e-16
    """Drain junction capacitance per fin in F."""

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ConfigError(
                f"polarity must be 'n' or 'p', got {self.polarity!r}",
                field="polarity")
        if self.nfin < 1:
            raise ConfigError(f"nfin must be >= 1, got {self.nfin}",
                              field="nfin")

    # Convenience -----------------------------------------------------------
    @property
    def weff(self) -> float:
        """Effective electrical width of one fin in m."""
        return 2.0 * self.hfin + self.tfin

    @property
    def cox(self) -> float:
        """Oxide capacitance per area in F/m^2."""
        return const.EPS_SIO2 / self.eot

    @property
    def cgate_fin(self) -> float:
        """Lumped gate capacitance of one fin in F (channel + overlaps)."""
        return self.cox * self.weff * self.lgate + 2.0 * self.COV

    def copy(self, **overrides: object) -> "FinFETParams":
        """Return a copy with ``overrides`` applied."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]

    def as_dict(self) -> dict[str, object]:
        """Return all parameters as a plain dict (modelcard serialization)."""
        return dataclasses.asdict(self)

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(self.as_dict().items())


#: Names of the parameters each calibration stage is allowed to touch.
#: Mirrors the staged extraction of paper Section III-A.
STAGE_PARAMETERS: dict[str, tuple[str, ...]] = {
    "subthreshold": ("VTH0", "CIT", "CDSC"),
    "mobility": ("UO", "UA", "UD", "EU"),
    "series_resistance": ("RSW", "RDW", "RSWMIN", "RDWMIN"),
    "dibl": ("ETA0", "PDIBL2", "CDSCD"),
    "velocity_saturation": ("VSAT", "MEXP", "KSATIV", "PCLM"),
    "polish_room": (
        "VTH0",
        "CIT",
        "CDSC",
        "UO",
        "UA",
        "UD",
        "EU",
        "RSW",
        "RSWMIN",
        "ETA0",
        "PDIBL2",
        "CDSCD",
        "VSAT",
        "MEXP",
        "KSATIV",
        "PCLM",
        "ITUN",
    ),
    "cryogenic": (
        "T0",
        "D0",
        "KT11",
        "KT12",
        "TVTH",
        "UA1",
        "UD1",
        "EU1",
        "UTE",
        "AT",
        "TMEXP1",
        "KSATIVT1",
        "ITUN",
    ),
}


def default_nfet(nfin: int = 1) -> FinFETParams:
    """Return the *initial-guess* n-FinFET parameter set used by calibration.

    These values are intentionally detuned from the hidden golden device in
    :mod:`repro.device.measurement`; the calibration flow has to recover the
    device behaviour from the synthetic measurements.
    """
    return FinFETParams(polarity="n", nfin=nfin)


def default_pfet(nfin: int = 1) -> FinFETParams:
    """Return the *initial-guess* p-FinFET parameter set used by calibration."""
    return FinFETParams(
        polarity="p",
        nfin=nfin,
        VTH0=0.21,
        UO=0.018,
        UA=0.62,
        UD=0.10,
        VSAT=7.5e4,
        VSAT1=7.5e4,
        TVTH=0.050,
        KT12=0.024,
    )
