"""Staged compact-model calibration against measured I-V data.

Reproduces the extraction flow of paper Section III-A, stage by stage:

1. ``subthreshold``        -- VTH0 (work function), CIT, CDSC from the
   weak-inversion region of the *linear* transfer curve at 300 K.
2. ``mobility``            -- UO, UA, UD, EU from moderate inversion at low
   Vds (300 K).
3. ``series_resistance``   -- RSW/RDW (+ floors) from strong inversion at
   low Vds (300 K).
4. ``dibl``                -- ETA0, PDIBL2, CDSCD from the weak-inversion
   region of the *saturation* transfer curve (300 K).
5. ``velocity_saturation`` -- VSAT, MEXP, KSATIV, PCLM from strong inversion
   in saturation plus the output curves (300 K).
6. ``cryogenic``           -- T0, D0, TVTH, KT11/KT12, UA1/UD1/EU1, UTE, AT,
   TMEXP1, KSATIVT1, ITUN from all 10 K curves.

Each stage runs a bounded trust-region least-squares fit
(:func:`scipy.optimize.least_squares`) on log-current residuals, touching
only its own parameters; later stages therefore refine on top of earlier
ones exactly like the manual flow the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import least_squares

from repro.device.finfet import FinFET
from repro.device.measurement import (
    IVCurve,
    IVDataset,
    VDS_LINEAR,
    VDS_SATURATION,
)
from repro.device.params import STAGE_PARAMETERS, FinFETParams

__all__ = [
    "ParameterBound",
    "StageResult",
    "CalibrationResult",
    "Calibrator",
    "rms_log_error",
]

#: Additive floor (A) applied inside log residuals; set to the synthetic
#: instrument noise floor so sub-noise currents do not dominate the cost.
LOG_FLOOR: float = 5e-13


@dataclass(frozen=True)
class ParameterBound:
    """Search range of one parameter; ``log`` selects log-space fitting."""

    lo: float
    hi: float
    log: bool = False

    def encode(self, value: float) -> float:
        """Map a parameter value into optimizer space."""
        if self.log:
            return math.log10(min(max(value, self.lo), self.hi))
        return min(max(value, self.lo), self.hi)

    def decode(self, x: float) -> float:
        """Map an optimizer-space value back to a parameter value."""
        return 10.0**x if self.log else x

    @property
    def encoded_lo(self) -> float:
        return math.log10(self.lo) if self.log else self.lo

    @property
    def encoded_hi(self) -> float:
        return math.log10(self.hi) if self.log else self.hi


#: Default bounds for every fittable parameter.
DEFAULT_BOUNDS: dict[str, ParameterBound] = {
    "VTH0": ParameterBound(0.05, 0.45),
    "CIT": ParameterBound(0.0, 0.5),
    "CDSC": ParameterBound(0.0, 0.5),
    "CDSCD": ParameterBound(0.0, 0.5),
    "UO": ParameterBound(0.002, 0.2, log=True),
    "UA": ParameterBound(0.01, 5.0, log=True),
    "UD": ParameterBound(1e-3, 5.0, log=True),
    "EU": ParameterBound(1.0, 3.0),
    "ETAMOB": ParameterBound(0.3, 3.0),
    "RSW": ParameterBound(100.0, 5e4, log=True),
    "RDW": ParameterBound(100.0, 5e4, log=True),
    "RSWMIN": ParameterBound(10.0, 2e4, log=True),
    "RDWMIN": ParameterBound(10.0, 2e4, log=True),
    "ETA0": ParameterBound(0.0, 0.3),
    "PDIBL2": ParameterBound(0.0, 2.0),
    "PCLM": ParameterBound(0.0, 0.5),
    "VSAT": ParameterBound(1e4, 5e5, log=True),
    "MEXP": ParameterBound(1.5, 12.0),
    "KSATIV": ParameterBound(0.3, 3.0),
    "T0": ParameterBound(5.0, 120.0),
    "D0": ParameterBound(0.0, 1.0),
    "KT11": ParameterBound(-0.5, 0.5),
    "KT12": ParameterBound(-0.2, 0.2),
    "TVTH": ParameterBound(-0.2, 0.2),
    "UA1": ParameterBound(0.0, 20.0),
    "UA2": ParameterBound(-10.0, 10.0),
    "UD1": ParameterBound(0.0, 50.0),
    "UD2": ParameterBound(-20.0, 20.0),
    "EU1": ParameterBound(-1.0, 1.0),
    "UTE": ParameterBound(0.0, 3.0),
    "AT": ParameterBound(-0.5, 1.0),
    "TMEXP1": ParameterBound(-2.0, 4.0),
    "KSATIVT1": ParameterBound(-0.5, 1.0),
    "ITUN": ParameterBound(1e-14, 1e-9, log=True),
}


@dataclass(frozen=True)
class StageResult:
    """Outcome of one extraction stage."""

    name: str
    parameters: dict[str, float]
    cost_before: float
    cost_after: float
    n_evaluations: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction in [0, 1]."""
        if self.cost_before <= 0:
            return 0.0
        return 1.0 - self.cost_after / self.cost_before


@dataclass
class CalibrationResult:
    """Final calibrated parameters plus per-stage and validation records."""

    params: FinFETParams
    stages: list[StageResult] = field(default_factory=list)
    validation: dict[str, float] = field(default_factory=dict)

    @property
    def total_evaluations(self) -> int:
        return sum(s.n_evaluations for s in self.stages)

    def stage(self, name: str) -> StageResult:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)


def rms_log_error(model_ids: np.ndarray, measured_ids: np.ndarray) -> float:
    """RMS error between two curves in log10-current decades.

    This is the Fig.-3 figure of merit: how far (in decades) the calibrated
    model tracks the measurement across the full sweep.
    """
    a = np.log10(np.abs(np.asarray(model_ids)) + LOG_FLOOR)
    b = np.log10(np.abs(np.asarray(measured_ids)) + LOG_FLOOR)
    return float(np.sqrt(np.mean((a - b) ** 2)))


@dataclass(frozen=True)
class _StageSpec:
    """Which data slice a stage fits and with what weighting."""

    name: str
    temperature_k: float | None  # None => all 10 K curves (cryogenic stage)
    use_linear: bool
    use_saturation: bool
    use_outputs: bool
    current_lo: float  # fit window in A (magnitude)
    current_hi: float


_ROOM = 300.0
_STAGE_SPECS: tuple[_StageSpec, ...] = (
    _StageSpec("subthreshold", _ROOM, True, False, False, 1e-11, 3e-7),
    _StageSpec("mobility", _ROOM, True, False, False, 1e-7, 1e-4),
    _StageSpec("series_resistance", _ROOM, True, False, False, 1e-6, 1e-3),
    _StageSpec("dibl", _ROOM, False, True, False, 1e-11, 3e-7),
    _StageSpec("velocity_saturation", _ROOM, False, True, True, 1e-7, 1e-3),
    # Global room-temperature polish: refit all 300 K parameters jointly on
    # every 300 K curve (the staged windows leave small cross-regime
    # residuals; a final joint refinement is standard extraction practice).
    _StageSpec("polish_room", _ROOM, True, True, True, 1e-12, 1e-3),
    _StageSpec("cryogenic", None, True, True, True, 1e-13, 1e-3),
)


class Calibrator:
    """Fits a :class:`FinFETParams` record to one polarity's dataset.

    Parameters
    ----------
    dataset:
        Measured curves (synthetic campaign output).
    initial:
        Starting parameter record (the detuned defaults).
    bounds:
        Per-parameter search ranges; defaults to :data:`DEFAULT_BOUNDS`.
    cryo_temperature:
        The cryogenic corner present in the dataset (K).
    """

    def __init__(
        self,
        dataset: IVDataset,
        initial: FinFETParams,
        bounds: dict[str, ParameterBound] | None = None,
        cryo_temperature: float = 10.0,
    ):
        if dataset.polarity != initial.polarity:
            raise ValueError(
                f"dataset polarity {dataset.polarity!r} != "
                f"initial params polarity {initial.polarity!r}"
            )
        self.dataset = dataset
        self.initial = initial
        self.bounds = dict(DEFAULT_BOUNDS if bounds is None else bounds)
        self.cryo_temperature = cryo_temperature

    # ------------------------------------------------------------------ #
    def _stage_curves(self, spec: _StageSpec) -> list[IVCurve]:
        """Collect the curves one stage fits against."""
        temps: list[float]
        if spec.temperature_k is None:
            # The cryogenic parameters (T0, D0, ITUN, ...) are not perfectly
            # orthogonal to room temperature, so the cryogenic stage fits
            # *all* corners jointly: it must explain 10 K without degrading
            # the already-extracted 300 K behaviour.
            temps = list(self.dataset.temperatures)
        else:
            temps = [spec.temperature_k]
        curves: list[IVCurve] = []
        for t in temps:
            if spec.use_linear:
                curves.append(self.dataset.transfer(t, VDS_LINEAR))
            if spec.use_saturation:
                curves.append(self.dataset.transfer(t, VDS_SATURATION))
            if spec.use_outputs:
                curves.extend(self.dataset.outputs(t))
        return curves

    def _residuals(
        self, params: FinFETParams, curves: list[IVCurve], spec: _StageSpec
    ) -> np.ndarray:
        """Log-current residual vector over the stage's fit window."""
        device = FinFET(params)
        chunks: list[np.ndarray] = []
        for curve in curves:
            ids_model = device.ids(curve.vgs, curve.vds, curve.temperature_k)
            mag = np.abs(curve.ids)
            mask = (mag >= spec.current_lo) & (mag <= spec.current_hi)
            if not mask.any():
                continue
            r = np.log10(np.abs(ids_model[mask]) + LOG_FLOOR) - np.log10(
                mag[mask] + LOG_FLOOR
            )
            chunks.append(r)
        if not chunks:
            return np.zeros(1)
        return np.concatenate(chunks)

    def _run_stage(
        self, params: FinFETParams, spec: _StageSpec
    ) -> tuple[FinFETParams, StageResult]:
        names = [
            n for n in STAGE_PARAMETERS[spec.name] if n in self.bounds
        ]
        curves = self._stage_curves(spec)
        bounds = [self.bounds[n] for n in names]
        x0 = np.array(
            [b.encode(float(getattr(params, n))) for n, b in zip(names, bounds)]
        )
        lo = np.array([b.encoded_lo for b in bounds])
        hi = np.array([b.encoded_hi for b in bounds])
        # Nudge the start strictly inside the box (least_squares requirement).
        x0 = np.clip(x0, lo + 1e-9, hi - 1e-9)
        n_evals = 0

        def objective(x: np.ndarray) -> np.ndarray:
            nonlocal n_evals
            n_evals += 1
            trial = params.copy(
                **{n: b.decode(v) for n, b, v in zip(names, bounds, x)}
            )
            return self._residuals(trial, curves, spec)

        r0 = objective(x0)
        cost_before = float(np.sqrt(np.mean(r0**2)))
        sol = least_squares(
            objective,
            x0,
            bounds=(lo, hi),
            method="trf",
            diff_step=1e-3,
            xtol=1e-10,
            ftol=1e-10,
            max_nfev=400,
        )
        fitted = params.copy(
            **{n: b.decode(v) for n, b, v in zip(names, bounds, sol.x)}
        )
        cost_after = float(np.sqrt(np.mean(sol.fun**2)))
        result = StageResult(
            name=spec.name,
            parameters={
                n: float(getattr(fitted, n)) for n in names
            },
            cost_before=cost_before,
            cost_after=cost_after,
            n_evaluations=n_evals,
        )
        return fitted, result

    # ------------------------------------------------------------------ #
    def calibrate(self, stages: tuple[str, ...] | None = None) -> CalibrationResult:
        """Run the staged extraction and validate against every curve.

        ``stages`` restricts the flow (mainly for tests); default runs all
        six stages in the paper's order.
        """
        wanted = set(stages) if stages is not None else None
        params = self.initial
        results: list[StageResult] = []
        for spec in _STAGE_SPECS:
            if wanted is not None and spec.name not in wanted:
                continue
            params, stage_result = self._run_stage(params, spec)
            results.append(stage_result)

        validation = self.validate(params)
        return CalibrationResult(params=params, stages=results, validation=validation)

    def validate(self, params: FinFETParams) -> dict[str, float]:
        """Return RMS log-decade error per measured curve (Fig.-3 metric)."""
        device = FinFET(params)
        out: dict[str, float] = {}
        for curve in self.dataset.curves:
            ids_model = device.ids(curve.vgs, curve.vds, curve.temperature_k)
            key = (
                f"{curve.polarity}fet_{curve.kind}_T{curve.temperature_k:g}K_"
                f"bias{abs(curve.fixed_bias) * 1e3:.0f}mV"
            )
            out[key] = rms_log_error(ids_model, curve.ids)
        return out
