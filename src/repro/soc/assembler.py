"""Two-pass RISC-V assembler for the workload kernels.

Supports the RV64IMFD subset in :mod:`repro.soc.isa`, labels, ABI register
names, the common pseudo-instructions (``li``, ``mv``, ``j``, ``ret``,
``call``, ``nop``, ``beqz``/``bnez``, ``fmv.d``) and data directives
(``.dword``, ``.word``, ``.double``, ``.zero``, ``.align``).  Programs are
written as plain strings in :mod:`repro.soc.programs` -- the "implemented
in C-Code" step of the paper, at one abstraction level lower.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.soc.isa import (
    FREGISTER_NAMES,
    Instruction,
    OPCODES,
    REGISTER_NAMES,
    encode,
)

__all__ = ["Program", "assemble", "AssemblyError"]

_XREG = {name: i for i, name in enumerate(REGISTER_NAMES)}
_XREG.update({f"x{i}": i for i in range(32)})
_XREG["fp"] = 8
_FREG = {name: i for i, name in enumerate(FREGISTER_NAMES)}
_FREG.update({f"f{i}": i for i in range(32)})

_FP_MNEMONICS = {
    m for m in OPCODES if m.startswith("f") and m not in ("fence",)
}


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


def _li_sequence(rd: int, value: int) -> list[Instruction]:
    """Expand ``li rd, value`` for the full 64-bit range.

    The standard recursive expansion: build the upper part, shift left by
    12, add the next 12-bit chunk -- at most lui + addi + 4x(slli+addi).
    """
    value = ((value + (1 << 63)) & ((1 << 64) - 1)) - (1 << 63)
    if -2048 <= value < 2048:
        return [Instruction("addi", rd=rd, rs1=0, imm=value)]
    if -(1 << 31) <= value + 0x800 < (1 << 31):
        # lui materializes a sign-extended 32-bit value; the +0x800 guard
        # excludes the [2^31-2048, 2^31) corner where rounding overflows.
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        seq = [Instruction("lui", rd=rd, imm=upper & 0xFFFFF)]
        if lower:
            seq.append(Instruction("addi", rd=rd, rs1=rd, imm=lower))
        return seq
    lower = ((value & 0xFFF) ^ 0x800) - 0x800
    upper = (value - lower) >> 12
    seq = _li_sequence(rd, upper)
    seq.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
    if lower:
        seq.append(Instruction("addi", rd=rd, rs1=rd, imm=lower))
    return seq


@dataclass
class Program:
    """Assembled program image."""

    text_base: int
    data_base: int
    text: list[int] = field(default_factory=list)  # 32-bit words
    data: bytes = b""
    labels: dict[str, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return self.labels.get("_start", self.text_base)

    def size_bytes(self) -> int:
        return 4 * len(self.text) + len(self.data)


def _xreg(token: str) -> int:
    try:
        return _XREG[token]
    except KeyError:
        raise AssemblyError(f"unknown integer register {token!r}") from None


def _freg(token: str) -> int:
    try:
        return _FREG[token]
    except KeyError:
        raise AssemblyError(f"unknown FP register {token!r}") from None


def _tokenize(operands: str) -> list[str]:
    out = []
    for part in operands.replace("(", ",").replace(")", " ").split(","):
        part = part.strip()
        if part:
            out.append(part)
    return out


def _parse_imm(token: str, labels: dict[str, int], pc: int | None = None,
               relative: bool = False) -> int:
    if token in labels:
        return labels[token] - pc if relative else labels[token]
    # %hi/%lo relocations for la-style addressing.
    if token.startswith("%hi(") and token.endswith(")"):
        value = _parse_imm(token[4:-1], labels)
        return (value + 0x800) >> 12
    if token.startswith("%lo(") and token.endswith(")"):
        value = _parse_imm(token[4:-1], labels)
        return ((value & 0xFFF) ^ 0x800) - 0x800
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"cannot parse immediate {token!r}") from None


def _expand_pseudo(mnemonic: str, ops: list[str]) -> list[tuple[str, list[str]]]:
    """Expand pseudo-instructions into base instructions."""
    if mnemonic == "nop":
        return [("addi", ["zero", "zero", "0"])]
    if mnemonic == "mv":
        return [("addi", [ops[0], ops[1], "0"])]
    if mnemonic == "not":
        return [("xori", [ops[0], ops[1], "-1"])]
    if mnemonic == "neg":
        return [("sub", [ops[0], "zero", ops[1]])]
    if mnemonic == "j":
        return [("jal", ["zero", ops[0]])]
    if mnemonic == "jr":
        return [("jalr", ["zero", ops[0], "0"])]
    if mnemonic == "ret":
        return [("jalr", ["zero", "ra", "0"])]
    if mnemonic == "call":
        return [("jal", ["ra", ops[0]])]
    if mnemonic == "beqz":
        return [("beq", [ops[0], "zero", ops[1]])]
    if mnemonic == "bnez":
        return [("bne", [ops[0], "zero", ops[1]])]
    if mnemonic == "blez":
        return [("bge", ["zero", ops[0], ops[1]])]
    if mnemonic == "bgtz":
        return [("blt", ["zero", ops[0], ops[1]])]
    if mnemonic == "ble":
        return [("bge", [ops[1], ops[0], ops[2]])]
    if mnemonic == "bgt":
        return [("blt", [ops[1], ops[0], ops[2]])]
    if mnemonic == "seqz":
        return [("sltiu", [ops[0], ops[1], "1"])]
    if mnemonic == "snez":
        return [("sltu", [ops[0], "zero", ops[1]])]
    if mnemonic == "fmv.d":
        # fsgnj.d is not in the subset; use x-register bounce.
        raise AssemblyError("fmv.d unsupported; copy through fmv.x.d/fmv.d.x")
    return [(mnemonic, ops)]


def assemble(
    source: str,
    text_base: int = 0x1000,
    data_base: int = 0x100000,
) -> Program:
    """Assemble source text into a program image.

    ``li`` with large constants expands to lui+addi (32-bit range).
    Label immediates in ``lui``/``addi`` support %hi()/%lo().
    """
    # ---- strip comments, split sections, expand li -------------------- #
    lines: list[tuple[str, str]] = []  # (section, line)
    section = "text"
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line in (".text", ".data"):
            section = line[1:]
            continue
        lines.append((section, line))

    # ---- first pass: layout + labels ----------------------------------- #
    labels: dict[str, int] = {}
    text_items: list[tuple[str, list[str]]] = []
    data_bytes = bytearray()

    def li_length(value: int) -> int:
        return len(_li_sequence(1, value))

    pc = text_base
    pending: list[tuple[str, str]] = []
    for sect, line in lines:
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if " " in label or not label:
                break
            labels[label] = pc if sect == "text" else data_base + len(data_bytes)
            line = rest.strip()
        if not line:
            continue
        if sect == "data":
            parts = line.split(None, 1)
            directive = parts[0]
            args = parts[1] if len(parts) > 1 else ""
            if directive == ".dword":
                for tok in args.split(","):
                    data_bytes += struct.pack(
                        "<Q", int(tok.strip(), 0) & (2**64 - 1)
                    )
            elif directive == ".word":
                for tok in args.split(","):
                    data_bytes += struct.pack("<I", int(tok.strip(), 0)
                                              & 0xFFFFFFFF)
            elif directive == ".double":
                for tok in args.split(","):
                    data_bytes += struct.pack("<d", float(tok.strip()))
            elif directive == ".zero":
                data_bytes += bytes(int(args, 0))
            elif directive == ".align":
                align = 1 << int(args, 0)
                while len(data_bytes) % align:
                    data_bytes += b"\x00"
            else:
                raise AssemblyError(f"unknown data directive {directive!r}")
            continue
        # text section
        parts = line.split(None, 1)
        mnemonic = parts[0]
        ops = _tokenize(parts[1]) if len(parts) > 1 else []
        if mnemonic == "li":
            value = _parse_imm(ops[1], {})
            pc += 4 * li_length(value)
            text_items.append(("li", ops))
            continue
        if mnemonic == "la":
            pc += 8
            text_items.append(("la", ops))
            continue
        expanded = _expand_pseudo(mnemonic, ops)
        for item in expanded:
            text_items.append(item)
            pc += 4

    # ---- second pass: encode ------------------------------------------- #
    words: list[int] = []
    pc = text_base

    def emit(instr: Instruction) -> None:
        nonlocal pc
        words.append(encode(instr))
        pc += 4

    for mnemonic, ops in text_items:
        if mnemonic == "li":
            rd = _xreg(ops[0])
            value = _parse_imm(ops[1], labels)
            for instr in _li_sequence(rd, value):
                emit(instr)
            continue
        if mnemonic == "la":
            rd = _xreg(ops[0])
            value = _parse_imm(ops[1], labels)
            upper = (value + 0x800) >> 12
            lower = ((value & 0xFFF) ^ 0x800) - 0x800
            emit(Instruction("lui", rd=rd, imm=upper & 0xFFFFF))
            emit(Instruction("addi", rd=rd, rs1=rd, imm=lower))
            continue

        if mnemonic not in OPCODES:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
        fmt = OPCODES[mnemonic][0]
        is_fp = mnemonic in _FP_MNEMONICS

        if mnemonic == "ecall":
            emit(Instruction("ecall"))
        elif fmt == "R":
            if mnemonic in ("fmv.x.d", "fcvt.w.d"):
                emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                 rs1=_freg(ops[1])))
            elif mnemonic in ("fmv.d.x", "fcvt.d.w", "fcvt.d.l"):
                emit(Instruction(mnemonic, rd=_freg(ops[0]),
                                 rs1=_xreg(ops[1])))
            elif mnemonic in ("feq.d", "flt.d", "fle.d"):
                emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                 rs1=_freg(ops[1]), rs2=_freg(ops[2])))
            elif is_fp:
                emit(Instruction(mnemonic, rd=_freg(ops[0]),
                                 rs1=_freg(ops[1]), rs2=_freg(ops[2])))
            else:
                emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                 rs1=_xreg(ops[1]), rs2=_xreg(ops[2])))
        elif fmt in ("I", "I*"):
            if mnemonic in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"):
                emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                 rs1=_xreg(ops[2]),
                                 imm=_parse_imm(ops[1], labels)))
            elif mnemonic == "fld":
                emit(Instruction(mnemonic, rd=_freg(ops[0]),
                                 rs1=_xreg(ops[2]),
                                 imm=_parse_imm(ops[1], labels)))
            elif mnemonic == "jalr":
                if len(ops) == 3:
                    emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                     rs1=_xreg(ops[1]),
                                     imm=_parse_imm(ops[2], labels)))
                else:
                    emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                     rs1=_xreg(ops[1])))
            else:
                emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                                 rs1=_xreg(ops[1]),
                                 imm=_parse_imm(ops[2], labels)))
        elif fmt == "S":
            reg = _freg(ops[0]) if mnemonic == "fsd" else _xreg(ops[0])
            emit(Instruction(mnemonic, rs2=reg, rs1=_xreg(ops[2]),
                             imm=_parse_imm(ops[1], labels)))
        elif fmt == "B":
            emit(Instruction(mnemonic, rs1=_xreg(ops[0]), rs2=_xreg(ops[1]),
                             imm=_parse_imm(ops[2], labels, pc=pc,
                                            relative=True)))
        elif fmt == "U":
            emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                             imm=_parse_imm(ops[1], labels) & 0xFFFFF))
        elif fmt == "J":
            emit(Instruction(mnemonic, rd=_xreg(ops[0]),
                             imm=_parse_imm(ops[1], labels, pc=pc,
                                            relative=True)))
        else:  # pragma: no cover - formats are exhaustive
            raise AssemblyError(f"unhandled format {fmt!r}")

    return Program(
        text_base=text_base,
        data_base=data_base,
        text=words,
        data=bytes(data_bytes),
        labels=labels,
    )
