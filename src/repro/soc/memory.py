"""Sparse byte-addressable memory for the ISS."""

from __future__ import annotations

import struct

__all__ = ["Memory"]

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS


class Memory:
    """Paged sparse memory; unwritten bytes read as zero."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}

    def _page(self, addr: int) -> tuple[bytearray, int]:
        page = self._pages.get(addr >> _PAGE_BITS)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[addr >> _PAGE_BITS] = page
        return page, addr & (_PAGE_SIZE - 1)

    # ------------------------------------------------------------------ #
    def load_bytes(self, addr: int, size: int) -> bytes:
        out = bytearray()
        while size:
            page, offset = self._page(addr)
            chunk = min(size, _PAGE_SIZE - offset)
            out += page[offset : offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            page, offset = self._page(addr + pos)
            chunk = min(len(data) - pos, _PAGE_SIZE - offset)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk

    # Typed accessors ----------------------------------------------------- #
    def load_u(self, addr: int, size: int) -> int:
        return int.from_bytes(self.load_bytes(addr, size), "little")

    def load_s(self, addr: int, size: int) -> int:
        return int.from_bytes(self.load_bytes(addr, size), "little",
                              signed=True)

    def store_u(self, addr: int, size: int, value: int) -> None:
        self.store_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little"))

    def load_double(self, addr: int) -> float:
        return struct.unpack("<d", self.load_bytes(addr, 8))[0]

    def store_double(self, addr: int, value: float) -> None:
        self.store_bytes(addr, struct.pack("<d", value))

    # Fault injection ----------------------------------------------------- #
    def flip_bit(self, addr: int, bit: int) -> None:
        """Flip one bit of one byte -- the SEU primitive.

        ``bit`` is the bit index within the byte (0 = LSB).  Works on
        untouched pages too: they read as zero, so the flip sets the bit.
        """
        if not 0 <= bit < 8:
            raise ValueError("bit index must be in [0, 8)")
        page, offset = self._page(addr)
        page[offset] ^= 1 << bit

    @property
    def touched_bytes(self) -> int:
        """Allocated footprint (page granularity)."""
        return len(self._pages) * _PAGE_SIZE
