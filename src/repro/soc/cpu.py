"""RV64 ISS with a Rocket-class 5-stage in-order timing model.

Functional execution is exact (64-bit two's-complement integer, IEEE-754
double for the D subset); timing follows a scoreboard abstraction of an
in-order single-issue pipeline:

* one instruction issues per cycle, but not before its source registers
  are ready (``ready_at`` per register);
* result latencies: ALU 1, load 2 (the classic load-use bubble), MUL 4,
  DIV 34 (iterative), FP add/sub/mul 4, FP divide 20, FP compare/move 2;
* taken branches and jumps redirect fetch: +2 cycles;
* I-cache and D-cache miss stalls come from the cache hierarchy.

The optional ``popcount_extension`` enables the custom ``cpop``
instruction for the ABL-1 ablation ("hardware support would reduce the
computation time significantly", paper Section VI-C).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import HangError, WorkloadError
from repro.soc.assembler import Program
from repro.soc.cache import CacheHierarchy
from repro.soc.isa import Instruction, decode
from repro.soc.memory import Memory

__all__ = ["CPU", "ExecutionStats", "HaltError"]

_MASK64 = (1 << 64) - 1

#: Result latency in cycles per instruction class.
LATENCY = {
    "alu": 1,
    "load": 2,
    "store": 1,
    "branch": 1,
    "mul": 4,
    "div": 34,
    "fp": 4,
    "fp_div": 20,
    "fp_short": 2,
}

#: Fetch-redirect penalty for taken branches/jumps.
REDIRECT_PENALTY = 2


class HaltError(WorkloadError):
    """Raised when execution exceeds the instruction budget."""


@dataclass
class ExecutionStats:
    """Cycle/instruction accounting for one run."""

    cycles: int = 0
    instructions: int = 0
    class_counts: dict[str, int] = field(default_factory=dict)
    stall_cycles_raw: int = 0
    stall_cycles_icache: int = 0
    stall_cycles_dcache: int = 0
    redirect_cycles: int = 0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def count(self, kind: str) -> int:
        return self.class_counts.get(kind, 0)

    def profile(self) -> dict[str, float]:
        """Per-cycle event rates for the activity-based power model."""
        c = max(self.cycles, 1)
        loads = self.count("load")
        stores = self.count("store")
        return {
            "alu_per_cycle": (self.count("alu") + self.count("branch")) / c,
            "mul_per_cycle": (self.count("mul") + self.count("div")) / c,
            "mem_per_cycle": (loads + stores) / c,
            "fetch_per_cycle": self.instructions / c,
            "regread_per_cycle": 1.6 * self.instructions / c,
            "regwrite_per_cycle": 0.8 * self.instructions / c,
            "l1d_miss_per_cycle": self.count("l1d_miss") / c,
            "l1i_miss_per_cycle": self.count("l1i_miss") / c,
        }


def _to_signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def _to_signed32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >> 31 else value


def _f2b(x: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def _b2f(b: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", b & _MASK64))[0]


class CPU:
    """One in-order RV64 hart with caches."""

    def __init__(
        self,
        memory: Memory | None = None,
        caches: CacheHierarchy | None = None,
        popcount_extension: bool = False,
    ):
        self.memory = memory or Memory()
        self.caches = caches or CacheHierarchy()
        self.popcount_extension = popcount_extension
        self.x = [0] * 32
        self.f = [0.0] * 32
        self.pc = 0
        self.halted = False
        self.exit_code = 0
        self.stats = ExecutionStats()
        self._ready_x = [0] * 32
        self._ready_f = [0] * 32
        self._decode_cache: dict[int, Instruction] = {}

    # ------------------------------------------------------------------ #
    def load_program(self, program: Program) -> None:
        """Copy a program image into memory and point PC at its entry."""
        text = b"".join(w.to_bytes(4, "little") for w in program.text)
        self.memory.store_bytes(program.text_base, text)
        if program.data:
            self.memory.store_bytes(program.data_base, program.data)
        self.pc = program.entry
        self.x[2] = 0x7FFF000  # stack pointer

    # ------------------------------------------------------------------ #
    def _wait_x(self, reg: int, now: int) -> int:
        return max(now, self._ready_x[reg])

    def _wait_f(self, reg: int, now: int) -> int:
        return max(now, self._ready_f[reg])

    def _classify(self, m: str) -> str:
        if m in ("lb", "lh", "lw", "ld", "lbu", "lhu", "lwu", "fld"):
            return "load"
        if m in ("sb", "sh", "sw", "sd", "fsd"):
            return "store"
        if m.startswith("b") or m in ("jal", "jalr"):
            return "branch"
        if m.startswith("mul"):
            return "mul"
        if m.startswith(("div", "rem")):
            return "div"
        if m == "fdiv.d":
            return "fp_div"
        if m in ("feq.d", "flt.d", "fle.d", "fmv.x.d", "fmv.d.x"):
            return "fp_short"
        if m.startswith("f"):
            return "fp"
        return "alu"

    def step(self) -> None:
        """Execute one instruction, updating state and timing."""
        stats = self.stats
        now = stats.cycles

        # Fetch (I-cache).
        icache_stall = self.caches.fetch(self.pc)
        if icache_stall:
            stats.stall_cycles_icache += icache_stall
            stats.class_counts["l1i_miss"] = stats.count("l1i_miss") + 1
            now += icache_stall

        word = self.memory.load_u(self.pc, 4)
        instr = self._decode_cache.get(word)
        if instr is None:
            instr = decode(word)
            self._decode_cache[word] = instr
        m = instr.mnemonic
        kind = self._classify(m)
        stats.class_counts[kind] = stats.count(kind) + 1
        stats.instructions += 1

        issue = now
        next_pc = self.pc + 4
        redirect = False

        x, f = self.x, self.f
        rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

        # ---------------- integer ALU ----------------------------------- #
        if m == "lui":
            issue = now
            x[rd] = _to_signed(imm << 12)
        elif m == "auipc":
            x[rd] = _to_signed(self.pc + (imm << 12))
        elif m in ("addi", "slti", "sltiu", "xori", "ori", "andi",
                   "slli", "srli", "srai", "addiw", "slliw", "srliw",
                   "sraiw"):
            issue = self._wait_x(rs1, now)
            a = x[rs1]
            if m == "addi":
                x[rd] = _to_signed(a + imm)
            elif m == "slti":
                x[rd] = int(a < imm)
            elif m == "sltiu":
                x[rd] = int((a & _MASK64) < (imm & _MASK64))
            elif m == "xori":
                x[rd] = _to_signed(a ^ imm)
            elif m == "ori":
                x[rd] = _to_signed(a | imm)
            elif m == "andi":
                x[rd] = _to_signed(a & imm)
            elif m == "slli":
                x[rd] = _to_signed(a << imm)
            elif m == "srli":
                x[rd] = _to_signed((a & _MASK64) >> imm)
            elif m == "srai":
                x[rd] = a >> imm
            elif m == "addiw":
                x[rd] = _to_signed32(a + imm)
            elif m == "slliw":
                x[rd] = _to_signed32(a << imm)
            elif m == "srliw":
                x[rd] = _to_signed32((a & 0xFFFFFFFF) >> imm)
            else:  # sraiw
                x[rd] = _to_signed32(_to_signed32(a) >> imm)
        elif m in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra",
                   "or", "and", "addw", "subw", "sllw", "srlw", "sraw",
                   "mul", "mulh", "mulw", "div", "divu", "rem", "remu",
                   "cpop"):
            issue = max(self._wait_x(rs1, now), self._wait_x(rs2, now))
            a, b = x[rs1], x[rs2]
            if m == "add":
                x[rd] = _to_signed(a + b)
            elif m == "sub":
                x[rd] = _to_signed(a - b)
            elif m == "sll":
                x[rd] = _to_signed(a << (b & 63))
            elif m == "slt":
                x[rd] = int(a < b)
            elif m == "sltu":
                x[rd] = int((a & _MASK64) < (b & _MASK64))
            elif m == "xor":
                x[rd] = _to_signed(a ^ b)
            elif m == "srl":
                x[rd] = _to_signed((a & _MASK64) >> (b & 63))
            elif m == "sra":
                x[rd] = a >> (b & 63)
            elif m == "or":
                x[rd] = _to_signed(a | b)
            elif m == "and":
                x[rd] = _to_signed(a & b)
            elif m == "addw":
                x[rd] = _to_signed32(a + b)
            elif m == "subw":
                x[rd] = _to_signed32(a - b)
            elif m == "sllw":
                x[rd] = _to_signed32(a << (b & 31))
            elif m == "srlw":
                x[rd] = _to_signed32((a & 0xFFFFFFFF) >> (b & 31))
            elif m == "sraw":
                x[rd] = _to_signed32(_to_signed32(a) >> (b & 31))
            elif m == "mul":
                x[rd] = _to_signed(a * b)
            elif m == "mulh":
                x[rd] = _to_signed((a * b) >> 64)
            elif m == "mulw":
                x[rd] = _to_signed32(a * b)
            elif m in ("div", "divu", "rem", "remu"):
                if b == 0:
                    x[rd] = -1 if m in ("div", "divu") else a
                else:
                    if m == "div":
                        q = abs(a) // abs(b)
                        x[rd] = -q if (a < 0) != (b < 0) else q
                    elif m == "divu":
                        x[rd] = (a & _MASK64) // (b & _MASK64)
                    elif m == "rem":
                        q = abs(a) % abs(b)
                        x[rd] = -q if a < 0 else q
                    else:
                        x[rd] = (a & _MASK64) % (b & _MASK64)
                    x[rd] = _to_signed(x[rd])
            elif m == "cpop":
                if not self.popcount_extension:
                    raise ValueError(
                        "cpop executed without popcount_extension -- the "
                        "base RISC-V ISA has no popcount instruction"
                    )
                x[rd] = bin(a & _MASK64).count("1")
        # ---------------- memory ---------------------------------------- #
        elif kind == "load":
            issue = self._wait_x(rs1, now)
            addr = (x[rs1] + imm) & _MASK64
            stall = self.caches.data_access(addr, write=False)
            if stall:
                stats.stall_cycles_dcache += stall
                stats.class_counts["l1d_miss"] = stats.count("l1d_miss") + 1
            issue += stall
            if m == "fld":
                f[rd] = self.memory.load_double(addr)
            elif m == "ld":
                x[rd] = self.memory.load_s(addr, 8)
            elif m == "lw":
                x[rd] = self.memory.load_s(addr, 4)
            elif m == "lwu":
                x[rd] = self.memory.load_u(addr, 4)
            elif m == "lh":
                x[rd] = self.memory.load_s(addr, 2)
            elif m == "lhu":
                x[rd] = self.memory.load_u(addr, 2)
            elif m == "lb":
                x[rd] = self.memory.load_s(addr, 1)
            else:  # lbu
                x[rd] = self.memory.load_u(addr, 1)
        elif kind == "store":
            issue = self._wait_x(rs1, now)
            if m == "fsd":
                issue = max(issue, self._wait_f(rs2, now))
            else:
                issue = max(issue, self._wait_x(rs2, now))
            addr = (x[rs1] + imm) & _MASK64
            stall = self.caches.data_access(addr, write=True)
            if stall:
                stats.stall_cycles_dcache += stall
                stats.class_counts["l1d_miss"] = stats.count("l1d_miss") + 1
            issue += stall
            if m == "fsd":
                self.memory.store_double(addr, f[rs2])
            elif m == "sd":
                self.memory.store_u(addr, 8, x[rs2])
            elif m == "sw":
                self.memory.store_u(addr, 4, x[rs2])
            elif m == "sh":
                self.memory.store_u(addr, 2, x[rs2])
            else:  # sb
                self.memory.store_u(addr, 1, x[rs2])
        # ---------------- control flow ----------------------------------- #
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            issue = max(self._wait_x(rs1, now), self._wait_x(rs2, now))
            a, b = x[rs1], x[rs2]
            taken = {
                "beq": a == b,
                "bne": a != b,
                "blt": a < b,
                "bge": a >= b,
                "bltu": (a & _MASK64) < (b & _MASK64),
                "bgeu": (a & _MASK64) >= (b & _MASK64),
            }[m]
            if taken:
                next_pc = self.pc + imm
                redirect = True
        elif m == "jal":
            x[rd] = self.pc + 4
            next_pc = self.pc + imm
            redirect = True
        elif m == "jalr":
            issue = self._wait_x(rs1, now)
            target = (x[rs1] + imm) & ~1
            x[rd] = self.pc + 4
            next_pc = target
            redirect = True
        elif m == "ecall":
            self.halted = True
            self.exit_code = x[10]
        # ---------------- floating point ---------------------------------- #
        elif m in ("fadd.d", "fsub.d", "fmul.d", "fdiv.d"):
            issue = max(self._wait_f(rs1, now), self._wait_f(rs2, now))
            a, b = f[rs1], f[rs2]
            if m == "fadd.d":
                f[rd] = a + b
            elif m == "fsub.d":
                f[rd] = a - b
            elif m == "fmul.d":
                f[rd] = a * b
            else:
                f[rd] = a / b if b != 0 else float("inf")
        elif m in ("feq.d", "flt.d", "fle.d"):
            issue = max(self._wait_f(rs1, now), self._wait_f(rs2, now))
            a, b = f[rs1], f[rs2]
            x[rd] = int({"feq.d": a == b, "flt.d": a < b,
                         "fle.d": a <= b}[m])
        elif m == "fmv.x.d":
            issue = self._wait_f(rs1, now)
            x[rd] = _to_signed(_f2b(f[rs1]))
        elif m == "fmv.d.x":
            issue = self._wait_x(rs1, now)
            f[rd] = _b2f(x[rs1])
        elif m == "fcvt.w.d":
            issue = self._wait_f(rs1, now)
            x[rd] = _to_signed32(int(f[rs1]))
        elif m in ("fcvt.d.w", "fcvt.d.l"):
            issue = self._wait_x(rs1, now)
            f[rd] = float(x[rs1] if m == "fcvt.d.l" else _to_signed32(x[rs1]))
        else:  # pragma: no cover - decoder guarantees coverage
            raise ValueError(f"unimplemented instruction {m!r}")

        x[0] = 0  # x0 is hard-wired

        # ---------------- timing commit ----------------------------------- #
        stall = issue - now
        stats.stall_cycles_raw += stall
        latency = LATENCY.get(kind, 1)
        if rd != 0 or kind in ("fp", "fp_div"):
            if m in ("fld", "fadd.d", "fsub.d", "fmul.d", "fdiv.d",
                     "fmv.d.x", "fcvt.d.w", "fcvt.d.l"):
                self._ready_f[rd] = issue + latency
            elif rd != 0:
                self._ready_x[rd] = issue + latency
        cycles = issue + 1
        if redirect:
            cycles += REDIRECT_PENALTY
            stats.redirect_cycles += REDIRECT_PENALTY
        stats.cycles = cycles
        self.pc = next_pc

    # ------------------------------------------------------------------ #
    def run(
        self,
        max_instructions: int = 50_000_000,
        max_cycles: int | None = None,
    ) -> ExecutionStats:
        """Run until ECALL; returns the statistics.

        ``max_cycles`` is a watchdog for fault-injection campaigns: a
        corrupted loop bound usually still retires instructions, so the
        instruction budget alone cannot distinguish "slow" from "stuck".
        Tripping it raises :class:`~repro.errors.HangError` (the *hang*
        outcome bucket) rather than :class:`HaltError` (the *crash*
        bucket).
        """
        while not self.halted:
            if self.stats.instructions >= max_instructions:
                raise HaltError(
                    f"exceeded {max_instructions} instructions without ECALL"
                )
            if max_cycles is not None and self.stats.cycles > max_cycles:
                raise HangError(
                    f"cycle watchdog expired: {self.stats.cycles} > "
                    f"{max_cycles} cycles without ECALL"
                )
            self.step()
        return self.stats
