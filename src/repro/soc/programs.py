"""Workload kernels: kNN, HDC and a Dhrystone-like benchmark.

The paper implements the two quantum-measurement classifiers "in C-Code"
and simulates them on the gate-level SoC; we write them directly in RV64
assembly (Section V-B semantics):

* **kNN** -- nearest-centroid with the radicand shortcut: "the
  computationally expensive square root operation is unnecessary and
  removed" (Eq. 2 discussion).  A variant *with* the square root exists
  for the ABL-2 ablation (sqrt via 4 Newton iterations).
* **HDC** -- 128-bit binary hypervectors, 16 quantization levels per axis
  (32 item hypervectors total), the precomputed-XOR trick of Eq. 4, and a
  software popcount because "the lack of a popcount instruction in the
  RISC-V instruction set architecture" is the bottleneck.  Variants: the
  naive two-XOR form (ABL-3) and a hardware-``cpop`` form (ABL-1).
* **Dhrystone-like** -- the integer mix (string copy, record assignment,
  branches, calls) used for the paper's "general average" power point.

Data arrays live at fixed bases and are written straight into simulator
memory by :class:`~repro.soc.soc.RocketSoC` -- the equivalent of the
linker placing initialized sections.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = [
    "CENTERS_BASE",
    "MEAS_BASE",
    "OUT_BASE",
    "TABLES_BASE",
    "knn_source",
    "hdc_source",
    "dhrystone_source",
    "qec_majority_source",
    "vqe_update_source",
    "pack_centers",
    "CENTER_RECORD_BYTES",
    "pack_measurements",
    "pack_hdc_tables",
    "HDC_LEVELS",
    "HDC_WORDS",
]

CENTERS_BASE = 0x200000
MEAS_BASE = 0x400000
OUT_BASE = 0xA00000
TABLES_BASE = 0x180000

HDC_LEVELS = 16
"""Quantization levels per axis (2 x 16 = 32 item hypervectors)."""

HDC_WORDS = 2
"""64-bit words per 128-bit hypervector."""

#: Software popcount of one 64-bit register (SWAR + multiply), reading
#: ``src`` and leaving the count in ``dst``; clobbers t5/t6.  Mask
#: registers s6/s7/s8/s9 must be preloaded (hoisted out of the loop).
_POPCOUNT = """
    srli t5, {src}, 1
    and  t5, t5, s6
    sub  {dst}, {src}, t5
    and  t5, {dst}, s7
    srli {dst}, {dst}, 2
    and  {dst}, {dst}, s7
    add  {dst}, {dst}, t5
    srli t5, {dst}, 4
    add  {dst}, {dst}, t5
    and  {dst}, {dst}, s8
    mul  {dst}, {dst}, s9
    srli {dst}, {dst}, 56
"""


def _popcount(src: str, dst: str, hardware: bool) -> str:
    if dst in ("t5", "t6") or src in ("t5",):
        raise ValueError("popcount scratch registers t5/t6 collide with "
                         f"operands ({src} -> {dst})")
    if hardware:
        return f"    cpop {dst}, {src}, zero\n"
    return _POPCOUNT.format(src=src, dst=dst)


# --------------------------------------------------------------------- #
# kNN
# --------------------------------------------------------------------- #
def knn_source(n_measurements: int, n_qubits: int,
               with_sqrt: bool = False) -> str:
    """Nearest-centroid classifier over interleaved measurements.

    Measurements are laid out shot-major: shot 0 qubit 0..n-1, shot 1 ...
    Centers are 4 doubles per qubit (c0x, c0y, c1x, c1y).
    ``with_sqrt`` compares sqrt(radicand) instead (ABL-2): four Newton
    iterations per square root, seeded with 1.0.
    """
    sqrt_block = ""
    if with_sqrt:
        # fa2 and fa4 hold the radicands; replace by their square roots
        # via Newton: s = 0.5*(s + v/s), four iterations each.
        newton = """
    fmv.d.x ft2, s10
    fmv.d.x ft3, s10
"""
        for reg in ("fa2", "fa4"):
            tgt = "ft2" if reg == "fa2" else "ft3"
            for _ in range(4):
                newton += f"""
    fdiv.d ft4, {reg}, {tgt}
    fadd.d {tgt}, {tgt}, ft4
    fmul.d {tgt}, {tgt}, ft11
"""
        newton += """
    fmv.x.d t5, ft2
    fmv.d.x fa2, t5
    fmv.x.d t5, ft3
    fmv.d.x fa4, t5
"""
        sqrt_block = newton

    prologue_sqrt = ""
    if with_sqrt:
        prologue_sqrt = """
    li t5, 0x3FE0000000000000   # 0.5
    fmv.d.x ft11, t5
    li s10, 0x3FF0000000000000  # 1.0 seed
"""

    return f"""
_start:
    li a0, {CENTERS_BASE}
    li a1, {MEAS_BASE}
    li a2, {OUT_BASE}
    li a3, {n_measurements}
    li a4, {n_qubits}
{prologue_sqrt}
    mv t0, zero          # measurement counter
    mv t1, zero          # qubit counter within the shot
    mv t2, a0            # current center pointer
loop:
    fld fa0, 0(a1)       # measured I
    fld fa1, 8(a1)       # measured Q
    fld fa2, 0(t2)       # center-0 I
    fld fa3, 8(t2)       # center-0 Q
    fld fa4, 16(t2)      # center-1 I
    fld fa5, 24(t2)      # center-1 Q
    fsub.d fa2, fa0, fa2
    fsub.d fa3, fa1, fa3
    fsub.d fa4, fa0, fa4
    fsub.d fa5, fa1, fa5
    fmul.d fa2, fa2, fa2
    fmul.d fa3, fa3, fa3
    fmul.d fa4, fa4, fa4
    fmul.d fa5, fa5, fa5
    fadd.d fa2, fa2, fa3  # radicand to center 0
    fadd.d fa4, fa4, fa5  # radicand to center 1
{sqrt_block}
    flt.d t3, fa4, fa2    # 1 => closer to center 1
    sb t3, 0(a2)
    addi a1, a1, 16
    addi a2, a2, 1
    addi t2, t2, 64          # next calibration record
    addi t1, t1, 1
    addi t0, t0, 1
    blt t1, a4, cont
    mv t1, zero
    mv t2, a0            # next shot: rewind the center pointer
cont:
    blt t0, a3, loop
    li a0, 0
    ecall
"""


# --------------------------------------------------------------------- #
# HDC
# --------------------------------------------------------------------- #
def hdc_source(
    n_measurements: int,
    n_qubits: int,
    hardware_popcount: bool = False,
    precomputed_xor: bool = True,
) -> str:
    """Hyperdimensional classifier (Eqs. 3-4) with per-qubit prototypes.

    Table layout at TABLES_BASE:

    * ``Y`` item hypervectors (global, 16 x 16 B = 256 B);
    * precomputed variant: per qubit, the two X_{C xor x-hat} tables of
      Eq. 4 (XC0 then XC1, 256 B each -- the "only 256 bytes" of extra
      footprint per class the paper accounts);
    * naive variant (ABL-3): the global x-hat item table (256 B) followed
      by per-qubit class prototypes C0, C1 (16 B each).

    Quantization: level = int((v + 2.0) * 4.0) clamped to [0, 15] --
    covering the I/Q range [-2, 2) with 16 levels.
    """
    y_size = 16 * HDC_LEVELS
    pc = lambda src, dst: _popcount(src, dst, hardware_popcount)

    if precomputed_xor:
        per_qubit_stride = 2 * 16 * HDC_LEVELS  # XC0 + XC1
        load_class_words = """
    slli t5, t3, 4
    add  t6, t2, t5
    ld   a5, 0(t6)        # XC0x word 0
    ld   a6, 8(t6)        # XC0x word 1
    addi t6, t6, {xc1_off}
    ld   a7, 0(t6)        # XC1x word 0
    ld   s2, 8(t6)        # XC1x word 1
""".format(xc1_off=16 * HDC_LEVELS)
    else:
        per_qubit_stride = 2 * 8 * HDC_WORDS  # C0 + C1 (16 B each)
        load_class_words = """
    slli t5, t3, 4
    add  t6, s4, t5
    ld   a5, 0(t6)        # x-hat word 0
    ld   a6, 8(t6)        # x-hat word 1
    ld   a7, 0(t2)        # C0 word 0
    ld   s2, 8(t2)        # C0 word 1
    xor  a7, a7, a5       # C0 xor x-hat
    xor  s2, s2, a6
    ld   t5, 16(t2)       # C1 word 0
    ld   t6, 24(t2)
    xor  a5, t5, a5       # C1 xor x-hat
    xor  a6, t6, a6
    # swap so the common tail sees (a5,a6)=class0, (a7,s2)=class1
    xor  a5, a5, a7
    xor  a7, a7, a5
    xor  a5, a5, a7
    xor  a6, a6, s2
    xor  s2, s2, a6
    xor  a6, a6, s2
"""

    extra_bases = ""
    if not precomputed_xor:
        extra_bases = f"""
    li s4, {TABLES_BASE + y_size}          # global x-hat item table
"""
    qtables_base = TABLES_BASE + y_size + (0 if precomputed_xor
                                           else 16 * HDC_LEVELS)

    return f"""
_start:
    li a1, {MEAS_BASE}
    li a2, {OUT_BASE}
    li a3, {n_measurements}
    li a4, {n_qubits}
    li s0, {qtables_base}                  # per-qubit table blocks
    li s3, {TABLES_BASE}                   # global y-hat item table
{extra_bases}
    # Hoisted popcount masks.
    li s6, 0x5555555555555555
    li s7, 0x3333333333333333
    li s8, 0x0F0F0F0F0F0F0F0F
    li s9, 0x0101010101010101
    # Quantization constants: offset 2.0, scale 4.0.
    li t5, 0x4000000000000000
    fmv.d.x ft10, t5
    li t5, 0x4010000000000000
    fmv.d.x ft11, t5
    li s11, {HDC_LEVELS - 1}
    mv t0, zero          # measurement counter
    mv t1, zero          # qubit counter within the shot
    mv t2, s0            # current qubit's table block
loop:
    fld fa0, 0(a1)
    fld fa1, 8(a1)
    # quantize x
    fadd.d ft0, fa0, ft10
    fmul.d ft0, ft0, ft11
    fcvt.w.d t3, ft0
    bge t3, zero, xlo_ok
    mv t3, zero
xlo_ok:
    ble t3, s11, xhi_ok
    mv t3, s11
xhi_ok:
    # quantize y
    fadd.d ft1, fa1, ft10
    fmul.d ft1, ft1, ft11
    fcvt.w.d t4, ft1
    bge t4, zero, ylo_ok
    mv t4, zero
ylo_ok:
    ble t4, s11, yhi_ok
    mv t4, s11
yhi_ok:
{load_class_words}
    # bind with the y item hypervector
    slli t5, t4, 4
    add  t6, s3, t5
    ld   t4, 0(t6)
    ld   t6, 8(t6)
    xor  a5, a5, t4
    xor  a6, a6, t6
    xor  a7, a7, t4
    xor  s2, s2, t6
    # Hamming distances via popcount
{pc("a5", "t3")}
{pc("a6", "t4")}
    add  t3, t3, t4       # d0
{pc("a7", "t4")}
{pc("s2", "a0")}
    add  t4, t4, a0       # d1
    sltu t5, t4, t3       # 1 => class 1 closer
    sb   t5, 0(a2)
    addi a1, a1, 16
    addi a2, a2, 1
    addi t2, t2, {per_qubit_stride}
    addi t1, t1, 1
    addi t0, t0, 1
    blt t1, a4, cont
    mv t1, zero
    mv t2, s0            # next shot: rewind the table pointer
cont:
    blt t0, a3, loop
    li a0, 0
    ecall
"""


# --------------------------------------------------------------------- #
# Dhrystone-like integer benchmark
# --------------------------------------------------------------------- #
def dhrystone_source(iterations: int = 200) -> str:
    """A Dhrystone-flavoured loop: string copy, record assignment,
    integer arithmetic, comparisons and a function call per iteration."""
    return f"""
_start:
    li s0, {MEAS_BASE}        # record buffers
    li s1, {MEAS_BASE + 256}
    li s2, {OUT_BASE}
    li t0, 0
    li t1, {iterations}
outer:
    # Proc: copy a 32-byte "string" byte by byte (strcpy flavour).
    li t2, 0
strcpy:
    add t3, s0, t2
    lb t4, 0(t3)
    add t3, s1, t2
    sb t4, 0(t3)
    addi t2, t2, 1
    li t5, 32
    blt t2, t5, strcpy
    # Record assignment: four doublewords.
    ld t3, 0(s0)
    sd t3, 0(s1)
    ld t3, 8(s0)
    sd t3, 8(s1)
    ld t3, 16(s0)
    sd t3, 16(s1)
    ld t3, 24(s0)
    sd t3, 24(s1)
    # Integer mix with a data-dependent branch.
    addi t3, t0, 7
    slli t4, t3, 3
    sub t4, t4, t0
    andi t5, t4, 1
    beqz t5, even
    addi t4, t4, 13
even:
    mul t4, t4, t3
    sd t4, 0(s2)
    # Function call.
    mv a0, t4
    call func7
    addi t0, t0, 1
    blt t0, t1, outer
    li a0, 0
    ecall
func7:
    andi a0, a0, 127
    addi a0, a0, 1
    ret
"""


# --------------------------------------------------------------------- #
# QEC: repetition-code majority decoder
# --------------------------------------------------------------------- #
def qec_majority_source(n_logical: int, distance: int) -> str:
    """Distance-d repetition-code decoder (paper Section VII's "quantum
    error correction protocols" representative).

    Input at MEAS_BASE: one classified bit per byte, physical-qubit-major
    (logical qubit l occupies bytes [l*d, (l+1)*d)).  Output at OUT_BASE:
    one majority-vote byte per logical qubit.
    """
    if distance < 1 or distance % 2 == 0:
        raise ValueError("distance must be a positive odd number")
    return f"""
_start:
    li a1, {MEAS_BASE}
    li a2, {OUT_BASE}
    li a3, {n_logical}
    li a4, {distance}
    li a5, {distance // 2}
    mv t0, zero           # logical-qubit counter
outer:
    mv t1, zero           # popcount of the block
    mv t2, zero           # physical index
inner:
    add t3, a1, t2
    lbu t4, 0(t3)
    add t1, t1, t4
    addi t2, t2, 1
    blt t2, a4, inner
    slt t4, a5, t1        # 1 when sum > floor(d/2)
    sb t4, 0(a2)
    add a1, a1, a4
    addi a2, a2, 1
    addi t0, t0, 1
    blt t0, a3, outer
    li a0, 0
    ecall
"""


# --------------------------------------------------------------------- #
# VQE classical step: expectation + SPSA parameter update
# --------------------------------------------------------------------- #
def vqe_update_source(n_bits: int, n_params: int) -> str:
    """The classical half of one VQE iteration (paper Section VII).

    Reads ``n_bits`` classified measurement bytes at MEAS_BASE, forms the
    (fixed-point) Z expectation g = 2*sum - n_bits, then applies an
    SPSA-style update to ``n_params`` 64-bit fixed-point parameters at
    TABLES_BASE: theta_j += sign_j ? +g : -g, with the perturbation signs
    stored as bytes after the parameter block.  Updated parameters are
    also mirrored to OUT_BASE for verification.
    """
    signs_off = 8 * n_params
    return f"""
_start:
    li a1, {MEAS_BASE}
    li a2, {TABLES_BASE}
    li a3, {n_bits}
    li a4, {n_params}
    li a5, {OUT_BASE}
    # --- expectation: sum of classified bits -------------------------
    mv t0, zero
    mv t1, zero
sumloop:
    add t2, a1, t0
    lbu t3, 0(t2)
    add t1, t1, t3
    addi t0, t0, 1
    blt t0, a3, sumloop
    slli t1, t1, 1
    li t2, {n_bits}
    sub t1, t1, t2        # g = 2*sum - n  (~ <Z> in fixed point)
    # --- SPSA update over the parameter vector -----------------------
    mv t0, zero
    mv t2, a2             # parameter pointer
    li t4, {signs_off}
    add t4, a2, t4        # sign pointer
updloop:
    ld t3, 0(t2)
    lbu t5, 0(t4)
    beqz t5, negdir
    add t3, t3, t1
    j stored
negdir:
    sub t3, t3, t1
stored:
    sd t3, 0(t2)
    sd t3, 0(a5)
    addi t2, t2, 8
    addi t4, t4, 1
    addi a5, a5, 8
    addi t0, t0, 1
    blt t0, a4, updloop
    li a0, 0
    ecall
"""


# --------------------------------------------------------------------- #
# Data packing
# --------------------------------------------------------------------- #
CENTER_RECORD_BYTES = 64
"""Per-qubit calibration record size: the two centers plus per-qubit
readout metadata (variances, thresholds), padded to one cache line --
the layout a real calibration structure occupies."""


def pack_centers(centers: np.ndarray) -> bytes:
    """Pack per-qubit calibration records for the kNN kernel.

    ``centers`` has shape (n_qubits, 2, 2): [qubit][class][i/q].  Each
    record holds c0x, c0y, c1x, c1y followed by padding metadata up to
    :data:`CENTER_RECORD_BYTES`.
    """
    centers = np.asarray(centers, dtype=float)
    if centers.ndim != 3 or centers.shape[1:] != (2, 2):
        raise ValueError("centers must have shape (n_qubits, 2, 2)")
    pad = bytes(CENTER_RECORD_BYTES - 32)
    out = bytearray()
    for q in range(centers.shape[0]):
        out += struct.pack(
            "<4d",
            centers[q, 0, 0], centers[q, 0, 1],
            centers[q, 1, 0], centers[q, 1, 1],
        )
        out += pad
    return bytes(out)


def pack_measurements(points: np.ndarray) -> bytes:
    """Pack (n, 2) I/Q doubles, shot-major interleaved."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must have shape (n, 2)")
    return points.astype("<f8").tobytes()


def pack_hdc_tables(
    y_items: np.ndarray,
    xc0: np.ndarray | None = None,
    xc1: np.ndarray | None = None,
    x_items: np.ndarray | None = None,
    c0: np.ndarray | None = None,
    c1: np.ndarray | None = None,
) -> bytes:
    """Pack the HDC tables for the kernel's memory layout.

    Precomputed variant (Eq. 4): pass ``xc0``/``xc1`` with shape
    (n_qubits, LEVELS, WORDS).  Naive variant (ABL-3): pass ``x_items``
    (LEVELS, WORDS) plus ``c0``/``c1`` with shape (n_qubits, WORDS).
    ``y_items`` (LEVELS, WORDS) is always required and global.
    """
    def item_block(a: np.ndarray, name: str) -> bytes:
        a = np.asarray(a, dtype=np.uint64)
        if a.shape != (HDC_LEVELS, HDC_WORDS):
            raise ValueError(
                f"{name} must have shape ({HDC_LEVELS}, {HDC_WORDS})"
            )
        return a.astype("<u8").tobytes()

    out = bytearray(item_block(y_items, "y_items"))
    if xc0 is not None or xc1 is not None:
        if xc0 is None or xc1 is None:
            raise ValueError("precomputed layout needs both xc0 and xc1")
        xc0 = np.asarray(xc0, dtype=np.uint64)
        xc1 = np.asarray(xc1, dtype=np.uint64)
        if xc0.shape != xc1.shape or xc0.ndim != 3:
            raise ValueError("xc tables must share shape (n_qubits, L, W)")
        for q in range(xc0.shape[0]):
            out += item_block(xc0[q], "xc0")
            out += item_block(xc1[q], "xc1")
        return bytes(out)
    if x_items is None or c0 is None or c1 is None:
        raise ValueError("naive layout needs x_items, c0 and c1")
    out += item_block(x_items, "x_items")
    c0 = np.asarray(c0, dtype=np.uint64)
    c1 = np.asarray(c1, dtype=np.uint64)
    if c0.shape != c1.shape or c0.ndim != 2 or c0.shape[1] != HDC_WORDS:
        raise ValueError("prototypes must have shape (n_qubits, WORDS)")
    for q in range(c0.shape[0]):
        out += c0[q].astype("<u8").tobytes()
        out += c1[q].astype("<u8").tobytes()
    return bytes(out)
