"""RocketSoC: the assembled system (CPU + caches + memory) and workload
drivers for the paper's classification experiments.

The high-level entry points mirror the paper's evaluation:

* :meth:`RocketSoC.run_knn` / :meth:`RocketSoC.run_hdc` -- classify a
  batch of I/Q measurements; return cycle statistics *and* the computed
  labels so functional correctness is checked against the Python
  reference classifiers in tests;
* :meth:`RocketSoC.run_dhrystone` -- the general-average workload;
* :func:`cycles_per_classification` -- the Table-2 metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.soc.assembler import assemble
from repro.soc.cache import CacheHierarchy
from repro.soc.cpu import CPU, ExecutionStats
from repro.soc.memory import Memory
from repro.soc.programs import (
    CENTERS_BASE,
    CENTER_RECORD_BYTES,
    MEAS_BASE,
    OUT_BASE,
    TABLES_BASE,
    dhrystone_source,
    hdc_source,
    knn_source,
    pack_centers,
    pack_hdc_tables,
    pack_measurements,
)

__all__ = ["RocketSoC", "WorkloadResult", "cycles_per_classification"]


@dataclass
class WorkloadResult:
    """Outcome of one workload run."""

    name: str
    stats: ExecutionStats
    labels: np.ndarray | None = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    def cycles_per_item(self, n_items: int) -> float:
        return self.stats.cycles / n_items if n_items else 0.0


def _traced_run(name: str, cpu: CPU, **run_kwargs):
    """Run a loaded CPU inside a telemetry span.

    Records the architectural effort of the run -- instructions retired,
    cycles, CPI and the cache hit rates the paper's Table 2 discussion
    hinges on -- as span attributes and registry counters.  One enabled
    check per *workload* run, nothing per instruction.
    """
    with telemetry.span("soc.workload", workload=name) as sp:
        stats = cpu.run(**run_kwargs)
        if telemetry.enabled():
            caches = cpu.caches
            sp.set(
                instructions=stats.instructions,
                cycles=stats.cycles,
                cpi=round(stats.cpi, 3),
                l1i_hit_rate=round(1.0 - caches.l1i.stats.miss_rate, 4),
                l1d_hit_rate=round(1.0 - caches.l1d.stats.miss_rate, 4),
                l2_hit_rate=round(1.0 - caches.l2.stats.miss_rate, 4),
            )
            telemetry.count("soc.workload_runs")
            telemetry.count("soc.instructions", stats.instructions)
            telemetry.count("soc.cycles", stats.cycles)
    return stats


class RocketSoC:
    """One SoC instance: fresh memory, caches and CPU per run.

    ``popcount_extension`` wires the ABL-1 custom instruction into the
    core (off by default, like real RV64IMAFDC Rocket).
    ``cache_factory`` builds the memory hierarchy per run; override it to
    explore other off-the-shelf configurations ("off-the-shelf SoCs ...
    are available in a wide range of specifications and capabilities and
    could quickly be swapped in and out", paper Section I-C).
    """

    def __init__(self, popcount_extension: bool = False,
                 warm_l2: bool = True,
                 cache_factory=None):
        self.popcount_extension = popcount_extension
        self.warm_l2 = warm_l2
        self.cache_factory = cache_factory or CacheHierarchy

    def _fresh_cpu(self) -> CPU:
        return CPU(
            memory=Memory(),
            caches=self.cache_factory(),
            popcount_extension=self.popcount_extension,
        )

    def _warm(self, cpu: CPU, base: int, size: int) -> None:
        """Mark a region L2-resident (not L1).

        Measurement words arrive from the readout data path into the
        shared L2 (DMA), not from off-chip memory; without this the
        streaming loads would pay main-memory latency on every line,
        which is not the system the paper times.
        """
        if not self.warm_l2 or size <= 0:
            return
        line = cpu.caches.l2.line_bytes
        for addr in range(base, base + size + line, line):
            cpu.caches.l2.access(addr)
        # Warming is setup, not workload: reset the counters.
        cpu.caches.l2.stats.accesses = 0
        cpu.caches.l2.stats.misses = 0
        cpu.caches.l2.stats.writebacks = 0

    # ------------------------------------------------------------------ #
    # Workload setup: (prepare, read_output, data_regions) triples.
    #
    # ``prepare()`` builds a fresh, fully-loaded CPU; ``read_output(cpu)``
    # extracts the architectural result after a run; ``data_regions`` are
    # the (base, size) byte ranges holding live workload data.  ``run_*``
    # consumes them directly; the fault-injection campaign in
    # :mod:`repro.reliability` re-uses them to re-execute the identical
    # workload an arbitrary number of times under injected faults.
    # ------------------------------------------------------------------ #
    def setup_knn(
        self,
        centers: np.ndarray,
        measurements: np.ndarray,
        n_qubits: int,
        with_sqrt: bool = False,
    ):
        """kNN workload setup; see the section comment for the contract."""
        n = len(measurements)
        meas_bytes = pack_measurements(measurements)
        center_bytes = pack_centers(centers)

        def prepare() -> CPU:
            cpu = self._fresh_cpu()
            cpu.load_program(
                assemble(knn_source(n, n_qubits, with_sqrt=with_sqrt))
            )
            cpu.memory.store_bytes(CENTERS_BASE, center_bytes)
            cpu.memory.store_bytes(MEAS_BASE, meas_bytes)
            self._warm(cpu, MEAS_BASE, len(meas_bytes))
            self._warm(cpu, CENTERS_BASE, len(center_bytes))
            return cpu

        def read_output(cpu: CPU) -> np.ndarray:
            return np.frombuffer(
                cpu.memory.load_bytes(OUT_BASE, n), dtype=np.uint8
            ).astype(int)

        regions = [
            (MEAS_BASE, len(meas_bytes)),
            (CENTERS_BASE, len(center_bytes)),
        ]
        return prepare, read_output, regions

    def run_knn(
        self,
        centers: np.ndarray,
        measurements: np.ndarray,
        n_qubits: int,
        with_sqrt: bool = False,
    ) -> WorkloadResult:
        """Classify measurements with the kNN kernel.

        ``centers``: (n_qubits, 2, 2); ``measurements``: (n, 2) shot-major
        (qubit index cycles fastest).  Returns labels as 0/1.
        """
        prepare, read_output, _ = self.setup_knn(
            centers, measurements, n_qubits, with_sqrt=with_sqrt
        )
        name = "knn_sqrt" if with_sqrt else "knn"
        cpu = prepare()
        stats = _traced_run(name, cpu)
        return WorkloadResult(name=name, stats=stats,
                              labels=read_output(cpu))

    def setup_hdc(
        self,
        tables: bytes,
        measurements: np.ndarray,
        n_qubits: int,
        hardware_popcount: bool = False,
        precomputed_xor: bool = True,
    ):
        """HDC workload setup; see the section comment for the contract."""
        n = len(measurements)
        meas_bytes = pack_measurements(measurements)

        def prepare() -> CPU:
            cpu = self._fresh_cpu()
            cpu.load_program(
                assemble(
                    hdc_source(
                        n, n_qubits,
                        hardware_popcount=hardware_popcount,
                        precomputed_xor=precomputed_xor,
                    )
                )
            )
            cpu.memory.store_bytes(TABLES_BASE, tables)
            cpu.memory.store_bytes(MEAS_BASE, meas_bytes)
            self._warm(cpu, MEAS_BASE, len(meas_bytes))
            self._warm(cpu, TABLES_BASE, len(tables))
            return cpu

        def read_output(cpu: CPU) -> np.ndarray:
            return np.frombuffer(
                cpu.memory.load_bytes(OUT_BASE, n), dtype=np.uint8
            ).astype(int)

        regions = [
            (MEAS_BASE, len(meas_bytes)),
            (TABLES_BASE, len(tables)),
        ]
        return prepare, read_output, regions

    def run_hdc(
        self,
        tables: bytes,
        measurements: np.ndarray,
        n_qubits: int,
        hardware_popcount: bool = False,
        precomputed_xor: bool = True,
    ) -> WorkloadResult:
        """Classify measurements with the HDC kernel.

        ``tables`` comes from
        :func:`repro.soc.programs.pack_hdc_tables`.
        """
        prepare, read_output, _ = self.setup_hdc(
            tables, measurements, n_qubits,
            hardware_popcount=hardware_popcount,
            precomputed_xor=precomputed_xor,
        )
        cpu = prepare()
        stats = _traced_run("hdc", cpu)
        return WorkloadResult(name="hdc", stats=stats,
                              labels=read_output(cpu))

    def setup_qec_decode(self, bits: np.ndarray, distance: int):
        """QEC majority-decode setup; see the section comment."""
        from repro.soc.programs import qec_majority_source

        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % distance:
            raise ValueError("bit count must be a multiple of the distance")
        n_logical = bits.size // distance
        bit_bytes = bits.tobytes()

        def prepare() -> CPU:
            cpu = self._fresh_cpu()
            cpu.load_program(
                assemble(qec_majority_source(n_logical, distance))
            )
            cpu.memory.store_bytes(MEAS_BASE, bit_bytes)
            self._warm(cpu, MEAS_BASE, len(bit_bytes))
            return cpu

        def read_output(cpu: CPU) -> np.ndarray:
            return np.frombuffer(
                cpu.memory.load_bytes(OUT_BASE, n_logical), dtype=np.uint8
            ).astype(int)

        return prepare, read_output, [(MEAS_BASE, len(bit_bytes))]

    def run_qec_decode(
        self, bits: np.ndarray, distance: int
    ) -> WorkloadResult:
        """Majority-decode repetition-code blocks (paper Section VII).

        ``bits``: flat 0/1 array, physical-qubit-major, with length a
        multiple of ``distance``.  Returns the logical values.
        """
        prepare, read_output, _ = self.setup_qec_decode(bits, distance)
        cpu = prepare()
        stats = _traced_run("qec_decode", cpu)
        return WorkloadResult(name="qec_decode", stats=stats,
                              labels=read_output(cpu))

    def run_vqe_update(
        self, bits: np.ndarray, params: np.ndarray, signs: np.ndarray
    ) -> WorkloadResult:
        """One VQE classical step (paper Section VII): expectation from
        classified bits plus an SPSA parameter update.

        ``bits``: 0/1 bytes; ``params``: int64 fixed-point parameters;
        ``signs``: 0/1 perturbation directions.  Returns the updated
        parameter vector in ``labels`` (int64 view).
        """
        from repro.soc.programs import vqe_update_source

        bits = np.asarray(bits, dtype=np.uint8)
        params = np.asarray(params, dtype=np.int64)
        signs = np.asarray(signs, dtype=np.uint8)
        if len(params) != len(signs):
            raise ValueError("params and signs must align")
        cpu = self._fresh_cpu()
        cpu.load_program(assemble(vqe_update_source(bits.size, params.size)))
        cpu.memory.store_bytes(MEAS_BASE, bits.tobytes())
        cpu.memory.store_bytes(TABLES_BASE, params.astype("<i8").tobytes())
        cpu.memory.store_bytes(
            TABLES_BASE + 8 * params.size, signs.tobytes()
        )
        self._warm(cpu, MEAS_BASE, bits.size)
        self._warm(cpu, TABLES_BASE, 9 * params.size)
        stats = _traced_run("vqe_update", cpu)
        updated = np.frombuffer(
            cpu.memory.load_bytes(OUT_BASE, 8 * params.size), dtype="<i8"
        ).astype(np.int64)
        return WorkloadResult(name="vqe_update", stats=stats, labels=updated)

    def run_dhrystone(self, iterations: int = 200) -> WorkloadResult:
        """Run the Dhrystone-like integer benchmark."""
        cpu = self._fresh_cpu()
        program = assemble(dhrystone_source(iterations))
        cpu.load_program(program)
        # Seed the source record with something non-trivial.
        cpu.memory.store_bytes(
            MEAS_BASE, bytes(range(1, 33)) + bytes(224)
        )
        stats = _traced_run("dhrystone", cpu)
        return WorkloadResult(name="dhrystone", stats=stats)


def cycles_per_classification(result: WorkloadResult, n: int) -> float:
    """The Table-2 metric: average clock cycles per measurement."""
    if n <= 0:
        raise ValueError("need a positive measurement count")
    return result.stats.cycles / n
