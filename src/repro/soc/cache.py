"""Set-associative cache simulator with LRU replacement.

Models the paper's hierarchy: split 16 KiB L1I/L1D backed by a shared
512 KiB L2.  Timing is expressed as *additional* stall cycles on a miss;
hits are absorbed in the pipeline.  The effect the paper highlights --
"more qubits result in more cache misses increasing the number of clock
cycles" (Table 2) -- comes straight out of this model once the working
set outgrows the L1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Cache", "CacheHierarchy", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, name: str, size_bytes: int, line_bytes: int = 64,
                 associativity: int = 4):
        if size_bytes % (line_bytes * associativity):
            raise ValueError(f"{name}: size must be a multiple of "
                             "line_bytes * associativity")
        self.name = name
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (line_bytes * associativity)
        # Per set: list of (tag, dirty), most-recently-used last.
        self._sets: list[list[tuple[int, bool]]] = [
            [] for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one address; returns True on hit.

        On a miss the line is filled (allocate-on-miss for both reads and
        writes) and the LRU victim evicted; a dirty victim counts one
        writeback.
        """
        set_idx, tag = self._locate(addr)
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        for k, (t, dirty) in enumerate(ways):
            if t == tag:
                ways.pop(k)
                ways.append((tag, dirty or write))
                return True
        self.stats.misses += 1
        if len(ways) >= self.associativity:
            _, dirty = ways.pop(0)
            if dirty:
                self.stats.writebacks += 1
        ways.append((tag, write))
        return False

    def flush(self) -> None:
        """Invalidate all lines (keeps statistics)."""
        for ways in self._sets:
            ways.clear()

    # Fault injection ----------------------------------------------------- #
    def resident(self, addr: int) -> bool:
        """True if the line containing ``addr`` is currently cached
        (without touching LRU order or statistics)."""
        set_idx, tag = self._locate(addr)
        return any(t == tag for t, _ in self._sets[set_idx])

    def lines(self) -> list[tuple[int, int, bool]]:
        """Snapshot of every valid line as (set, tag, dirty) -- the
        address space a tag-array SEU can strike."""
        out = []
        for set_idx, ways in enumerate(self._sets):
            for tag, dirty in ways:
                out.append((set_idx, tag, dirty))
        return out

    def corrupt_tag(self, set_idx: int, tag: int) -> bool:
        """Model a tag-array SEU on one valid line.

        The flipped tag no longer matches any lookup for the original
        address, so architecturally the line simply vanishes from the
        cache (the next access misses and refills).  A write-allocate
        write-back cache would additionally lose dirty data, which the
        injector models separately via the data array.  Returns True if
        the line was present.
        """
        ways = self._sets[set_idx]
        for k, (t, _dirty) in enumerate(ways):
            if t == tag:
                ways.pop(k)
                return True
        return False


@dataclass
class CacheHierarchy:
    """Split L1 + shared L2 with miss penalties in cycles.

    Geometry defaults match the paper's SoC; penalties are Rocket-class
    (pipelined L1, ~a dozen cycles to L2, ~80 to main memory which in the
    cryogenic setting lives in a warmer domain).
    """

    l1i: Cache = field(
        default_factory=lambda: Cache("l1i", 16 * 1024, 64, 4)
    )
    l1d: Cache = field(
        default_factory=lambda: Cache("l1d", 16 * 1024, 64, 4)
    )
    l2: Cache = field(
        default_factory=lambda: Cache("l2", 512 * 1024, 64, 8)
    )
    l2_hit_cycles: int = 24
    memory_cycles: int = 100

    def fetch(self, addr: int) -> int:
        """Instruction fetch; returns stall cycles."""
        if self.l1i.access(addr):
            return 0
        if self.l2.access(addr):
            return self.l2_hit_cycles
        return self.memory_cycles

    def data_access(self, addr: int, write: bool) -> int:
        """Load/store; returns stall cycles."""
        if self.l1d.access(addr, write):
            return 0
        if self.l2.access(addr, write):
            return self.l2_hit_cycles
        return self.memory_cycles

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
