"""SoC layer: RV64 ISS, caches, assembler and workload kernels.

The architectural half of the paper's SoC evaluation: cycle counts for
kNN/HDC/Dhrystone on a Rocket-class 5-stage in-order pipeline with split
16 KiB L1s and a shared 512 KiB L2 (Tables 2, Fig. 7), plus execution
profiles feeding the activity-based power model (Fig. 6).
"""

from repro.soc.assembler import AssemblyError, Program, assemble
from repro.soc.cache import Cache, CacheHierarchy, CacheStats
from repro.soc.cpu import CPU, ExecutionStats, HaltError
from repro.soc.memory import Memory
from repro.soc.soc import RocketSoC, WorkloadResult, cycles_per_classification

__all__ = [
    "AssemblyError",
    "CPU",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "ExecutionStats",
    "HaltError",
    "Memory",
    "Program",
    "RocketSoC",
    "WorkloadResult",
    "assemble",
    "cycles_per_classification",
]
