"""RV64IMFD-subset instruction encodings and decoder.

Real RISC-V machine encodings (the assembler emits 32-bit words, the CPU
fetches and decodes them), covering what the paper's workloads need:

* RV64I base integer ISA (loads/stores, ALU, branches, jumps, LUI/AUIPC);
* M-extension multiply/divide (the Rocket core is RV64IMAFDC; our kernels
  use MUL/DIV);
* the D-extension subset the kNN classifier's "floating point
  calculations" require (FLD/FSD, FADD/FSUB/FMUL/FDIV.D, comparisons,
  moves and int<->double conversion for quantization);
* ECALL as the halt convention.

Notably there is **no popcount instruction** -- the paper's central
observation about HDC performance ("the lack of a popcount instruction in
the RISC-V instruction set architecture").  The ABL-1 ablation bench adds
a custom one to quantify exactly that gap.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Instruction", "decode", "encode", "OPCODES", "REGISTER_NAMES",
           "FREGISTER_NAMES"]

# ABI register names, index = architectural number.
REGISTER_NAMES = (
    "zero ra sp gp tp t0 t1 t2 s0 s1 a0 a1 a2 a3 a4 a5 a6 a7 "
    "s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 t3 t4 t5 t6"
).split()

FREGISTER_NAMES = (
    "ft0 ft1 ft2 ft3 ft4 ft5 ft6 ft7 fs0 fs1 fa0 fa1 fa2 fa3 fa4 fa5 "
    "fa6 fa7 fs2 fs3 fs4 fs5 fs6 fs7 fs8 fs9 fs10 fs11 ft8 ft9 ft10 ft11"
).split()


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    raw: int = 0


def _sext(value: int, bits: int) -> int:
    """Sign-extend ``bits``-wide value."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


# (mnemonic) -> (format, opcode, funct3, funct7)
# formats: R, I, S, B, U, J, R4 unused here.
OPCODES: dict[str, tuple[str, int, int | None, int | None]] = {
    # RV64I
    "lui": ("U", 0b0110111, None, None),
    "auipc": ("U", 0b0010111, None, None),
    "jal": ("J", 0b1101111, None, None),
    "jalr": ("I", 0b1100111, 0b000, None),
    "beq": ("B", 0b1100011, 0b000, None),
    "bne": ("B", 0b1100011, 0b001, None),
    "blt": ("B", 0b1100011, 0b100, None),
    "bge": ("B", 0b1100011, 0b101, None),
    "bltu": ("B", 0b1100011, 0b110, None),
    "bgeu": ("B", 0b1100011, 0b111, None),
    "lb": ("I", 0b0000011, 0b000, None),
    "lh": ("I", 0b0000011, 0b001, None),
    "lw": ("I", 0b0000011, 0b010, None),
    "ld": ("I", 0b0000011, 0b011, None),
    "lbu": ("I", 0b0000011, 0b100, None),
    "lhu": ("I", 0b0000011, 0b101, None),
    "lwu": ("I", 0b0000011, 0b110, None),
    "sb": ("S", 0b0100011, 0b000, None),
    "sh": ("S", 0b0100011, 0b001, None),
    "sw": ("S", 0b0100011, 0b010, None),
    "sd": ("S", 0b0100011, 0b011, None),
    "addi": ("I", 0b0010011, 0b000, None),
    "slti": ("I", 0b0010011, 0b010, None),
    "sltiu": ("I", 0b0010011, 0b011, None),
    "xori": ("I", 0b0010011, 0b100, None),
    "ori": ("I", 0b0010011, 0b110, None),
    "andi": ("I", 0b0010011, 0b111, None),
    "slli": ("I*", 0b0010011, 0b001, 0b000000),
    "srli": ("I*", 0b0010011, 0b101, 0b000000),
    "srai": ("I*", 0b0010011, 0b101, 0b010000),
    "add": ("R", 0b0110011, 0b000, 0b0000000),
    "sub": ("R", 0b0110011, 0b000, 0b0100000),
    "sll": ("R", 0b0110011, 0b001, 0b0000000),
    "slt": ("R", 0b0110011, 0b010, 0b0000000),
    "sltu": ("R", 0b0110011, 0b011, 0b0000000),
    "xor": ("R", 0b0110011, 0b100, 0b0000000),
    "srl": ("R", 0b0110011, 0b101, 0b0000000),
    "sra": ("R", 0b0110011, 0b101, 0b0100000),
    "or": ("R", 0b0110011, 0b110, 0b0000000),
    "and": ("R", 0b0110011, 0b111, 0b0000000),
    "addiw": ("I", 0b0011011, 0b000, None),
    "slliw": ("I*", 0b0011011, 0b001, 0b000000),
    "srliw": ("I*", 0b0011011, 0b101, 0b000000),
    "sraiw": ("I*", 0b0011011, 0b101, 0b010000),
    "addw": ("R", 0b0111011, 0b000, 0b0000000),
    "subw": ("R", 0b0111011, 0b000, 0b0100000),
    "sllw": ("R", 0b0111011, 0b001, 0b0000000),
    "srlw": ("R", 0b0111011, 0b101, 0b0000000),
    "sraw": ("R", 0b0111011, 0b101, 0b0100000),
    "ecall": ("I", 0b1110011, 0b000, None),
    # RV64M
    "mul": ("R", 0b0110011, 0b000, 0b0000001),
    "mulh": ("R", 0b0110011, 0b001, 0b0000001),
    "div": ("R", 0b0110011, 0b100, 0b0000001),
    "divu": ("R", 0b0110011, 0b101, 0b0000001),
    "rem": ("R", 0b0110011, 0b110, 0b0000001),
    "remu": ("R", 0b0110011, 0b111, 0b0000001),
    "mulw": ("R", 0b0111011, 0b000, 0b0000001),
    # RV64D subset
    "fld": ("I", 0b0000111, 0b011, None),
    "fsd": ("S", 0b0100111, 0b011, None),
    "fadd.d": ("R", 0b1010011, None, 0b0000001),
    "fsub.d": ("R", 0b1010011, None, 0b0000101),
    "fmul.d": ("R", 0b1010011, None, 0b0001001),
    "fdiv.d": ("R", 0b1010011, None, 0b0001101),
    "feq.d": ("R", 0b1010011, 0b010, 0b1010001),
    "flt.d": ("R", 0b1010011, 0b001, 0b1010001),
    "fle.d": ("R", 0b1010011, 0b000, 0b1010001),
    "fmv.x.d": ("R", 0b1010011, 0b000, 0b1110001),
    "fmv.d.x": ("R", 0b1010011, 0b000, 0b1111001),
    "fcvt.w.d": ("R", 0b1010011, 0b001, 0b1100001),  # rm=rtz encoded in f3
    "fcvt.d.w": ("R", 0b1010011, 0b000, 0b1101001),
    "fcvt.d.l": ("R", 0b1010011, 0b000, 0b1101001 | 0),  # distinguished by rs2
    # Custom ablation instruction (ABL-1): population count.  Encoded in
    # the custom-0 opcode space; OFF by default in the CPU unless the
    # `popcount_extension` flag is set.
    "cpop": ("R", 0b0001011, 0b000, 0b0000000),
}

# fcvt.d.l shares funct7 with fcvt.d.w; rs2 field disambiguates (0 vs 2).
_FCVT_RS2 = {"fcvt.w.d": 0, "fcvt.d.w": 0, "fcvt.d.l": 2}


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction back to its 32-bit word."""
    fmt, opcode, funct3, funct7 = OPCODES[instr.mnemonic]
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm
    if instr.mnemonic in _FCVT_RS2:
        rs2 = _FCVT_RS2[instr.mnemonic]
    f3 = funct3 if funct3 is not None else 0b111  # dynamic rounding mode
    if fmt == "R":
        return (
            (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12)
            | (rd << 7) | opcode
        )
    if fmt == "I":
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode
    if fmt == "I*":  # 6-bit shamt + upper funct6
        return (
            (funct7 << 26) | ((imm & 0x3F) << 20) | (rs1 << 15)
            | (f3 << 12) | (rd << 7) | opcode
        )
    if fmt == "S":
        return (
            (((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15)
            | (f3 << 12) | ((imm & 0x1F) << 7) | opcode
        )
    if fmt == "B":
        return (
            (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
            | (rs2 << 20) | (rs1 << 15) | (f3 << 12)
            | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode
        )
    if fmt == "U":
        return ((imm & 0xFFFFF) << 12) | (rd << 7) | opcode
    if fmt == "J":
        return (
            (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7) | opcode
        )
    raise ValueError(f"unknown format {fmt!r}")


def _build_decode_table() -> dict[tuple, str]:
    table: dict[tuple, str] = {}
    for mnemonic, (fmt, opcode, funct3, funct7) in OPCODES.items():
        if fmt == "R" and opcode == 0b1010011:
            # FP: funct7 is the discriminator; funct3 may be rm.
            key = ("fp", opcode, funct7,
                   funct3 if funct3 is not None else None,
                   _FCVT_RS2.get(mnemonic))
            table[key] = mnemonic
        elif fmt == "R":
            table[("r", opcode, funct3, funct7)] = mnemonic
        elif fmt == "I*":
            table[("istar", opcode, funct3, funct7)] = mnemonic
        elif fmt in ("I", "S", "B"):
            table[(fmt.lower(), opcode, funct3)] = mnemonic
        else:
            table[(fmt.lower(), opcode)] = mnemonic
    return table


_DECODE = _build_decode_table()


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word; raises on unknown encodings."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode in (0b0110111, 0b0010111):  # U
        mnemonic = _DECODE[("u", opcode)]
        return Instruction(mnemonic, rd=rd, imm=_sext(word >> 12, 20), raw=word)
    if opcode == 0b1101111:  # J
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Instruction("jal", rd=rd, imm=_sext(imm, 21), raw=word)
    if opcode == 0b1100011:  # B
        mnemonic = _DECODE[("b", opcode, funct3)]
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 1) << 11)
        )
        return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=_sext(imm, 13),
                           raw=word)
    if opcode in (0b0100011, 0b0100111):  # S
        mnemonic = _DECODE[("s", opcode, funct3)]
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=_sext(imm, 12),
                           raw=word)
    if opcode == 0b1010011:  # FP R-type
        for key in (
            ("fp", opcode, funct7, funct3, rs2),
            ("fp", opcode, funct7, funct3, None),
            ("fp", opcode, funct7, None, rs2),
            ("fp", opcode, funct7, None, None),
        ):
            if key in _DECODE:
                return Instruction(_DECODE[key], rd=rd, rs1=rs1, rs2=rs2,
                                   raw=word)
        raise ValueError(f"unknown FP encoding: {word:#010x}")
    if opcode in (0b0110011, 0b0111011, 0b0001011):  # R
        mnemonic = _DECODE[("r", opcode, funct3, funct7)]
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode in (0b0010011, 0b0011011):
        funct6 = (word >> 26) & 0x3F
        key_star = ("istar", opcode, funct3, funct6)
        if key_star in _DECODE:
            shamt = (word >> 20) & 0x3F
            return Instruction(_DECODE[key_star], rd=rd, rs1=rs1, imm=shamt,
                               raw=word)
        mnemonic = _DECODE[("i", opcode, funct3)]
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12),
                           raw=word)
    if opcode in (0b0000011, 0b0000111, 0b1100111, 0b1110011):  # I
        mnemonic = _DECODE[("i", opcode, funct3)]
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12),
                           raw=word)
    raise ValueError(f"unknown opcode {opcode:#04x} in word {word:#010x}")
