"""EXP-F6: Fig. 6 -- average SoC power for kNN classification per corner.

"The dynamic power at cryogenic temperatures is reduced by 10 % from 63.5
to 57.4 mW.  However, the major contributor is the leakage from SRAM,
which is suppressed and reduced to only 0.48 mW at 10 K.  This large
reduction makes the SoC feasible given a cooling capacity of 100 mW."
"""

from __future__ import annotations

from repro.core.feasibility import COOLING_BUDGET_10K
from repro.core.report import format_table

__all__ = ["run", "report", "PAPER_FIG6"]

PAPER_FIG6 = {
    300.0: {"dynamic_mw": 63.5, "leak_logic_mw": 11.0, "leak_sram_mw": 193.0},
    10.0: {"dynamic_mw": 57.4, "leak_total_mw": 0.48},
}


def run(study=None, workload: str = "knn") -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True))
    reports = {t: study.power_report(t, workload) for t in (300.0, 10.0)}
    r300, r10 = reports[300.0], reports[10.0]
    return {
        "workload": workload,
        "reports": reports,
        "dynamic_change": r10.dynamic_total / r300.dynamic_total - 1.0,
        "leakage_reduction": 1.0 - r10.leakage_total / r300.leakage_total,
        "feasible": {
            t: r.fits_budget(COOLING_BUDGET_10K) for t, r in reports.items()
        },
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for t, r in result["reports"].items():
        rows.append([
            f"{t:g} K",
            f"{r.dynamic_total * 1e3:.1f}",
            f"{r.leakage_logic * 1e3:.2f}",
            f"{r.leakage_sram * 1e3:.2f}",
            f"{r.total * 1e3:.1f}",
            "yes" if result["feasible"][t] else "NO",
        ])
    table = format_table(
        ["corner", "dynamic (mW)", "logic leak (mW)", "SRAM leak (mW)",
         "total (mW)", "fits 100 mW"],
        rows,
        title=(
            f"Fig. 6: average power, {result['workload']} workload "
            f"(paper: dyn 63.5 -> 57.4 mW, logic leak 11 mW, "
            f"SRAM leak 193 mW -> total leak 0.48 mW)"
        ),
    )
    summary = (
        f"dynamic change at 10 K: {result['dynamic_change'] * 100:+.1f} % "
        "(paper: -9.6 %)\n"
        f"leakage reduction: {result['leakage_reduction'] * 100:.2f} % "
        "(paper: 99.76 %)"
    )
    return table + "\n" + summary


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("leak_total_10k_mw", PAPER_FIG6[10.0]["leak_total_mw"],
           lambda r: r["reports"][10.0].leakage_total * 1e3,
           abs=0.15, source="Fig. 6 (0.48 mW at 10 K)"),
    metric("leakage_reduction", 0.9976,
           lambda r: r["leakage_reduction"],
           abs=0.005, source="Fig. 6 (99.76 % suppression)"),
    metric("dynamic_change_10k", -0.096,
           lambda r: r["dynamic_change"],
           abs=0.06, source="Fig. 6 (dynamic 63.5 -> 57.4 mW)"),
    metric("fits_100mw_budget_10k", 1.0,
           lambda r: float(r["feasible"][10.0]),
           abs=0.1, source="Fig. 6 (100 mW cooling capacity)"),
))


@experiment("fig6", "Fig. 6 -- SoC power breakdown per corner",
            report=report, order=50, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
