"""EXT-VDD: supply-voltage scaling of the cryogenic SoC (paper §VII).

"Further power reduction could be achieved by ... supply voltage
reduction" -- we rebuild the 10 K library at reduced Vdd, rerun STA and
power on the same physical design, and chart the speed/power trade.
"""

from __future__ import annotations

from repro.cells import CharacterizationConfig, build_library
from repro.core.report import format_table
from repro.power import UncoreModel, activity_from_profile, analyze_power
from repro.sta import analyze as sta_analyze

__all__ = ["run", "report"]


def run(study=None, vdds=(0.70, 0.60, 0.50)) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=15))
    _, knn_result = study.knn_cycles(100)
    activity = activity_from_profile("knn", knn_result.stats.profile())

    corners = {}
    for vdd in vdds:
        lib = build_library(
            study.models,
            CharacterizationConfig(temperature_k=10.0, vdd=vdd),
            name=f"vdd{vdd:g}",
        )
        timing = sta_analyze(
            study.soc_model.netlist, lib, study.placement,
            macro_delay_scale=study.macro_delay_scale(10.0),
        )
        power = analyze_power(
            study.soc_model.netlist, lib, activity, timing.fmax_hz,
            study.models, study.placement, uncore=UncoreModel(),
        )
        corners[vdd] = {"timing": timing, "power": power}
    return {"corners": corners}


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    base = None
    for vdd, data in result["corners"].items():
        f = data["timing"].fmax_hz
        p = data["power"].total
        if base is None:
            base = (f, p)
        rows.append([
            f"{vdd:.2f} V",
            f"{f / 1e6:.0f} MHz ({f / base[0] * 100:.0f} %)",
            f"{data['power'].dynamic_total * 1e3:.1f}",
            f"{data['power'].leakage_total * 1e3:.3f}",
            f"{p * 1e3:.1f} ({p / base[1] * 100:.0f} %)",
            f"{p / f * 1e12:.2f}",
        ])
    return format_table(
        ["Vdd", "fmax", "dynamic (mW)", "leakage (mW)", "total (mW)",
         "energy/cycle (pJ)"],
        rows,
        title="EXT-VDD: 10 K supply-voltage scaling on the same design",
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402


def _totals_by_vdd(result: dict) -> list[float]:
    """Total power ordered by descending Vdd."""
    corners = result["corners"]
    return [corners[v]["power"].total for v in sorted(corners, reverse=True)]


FIDELITY = FidelitySpec(metrics=(
    metric("power_drops_with_vdd", 1.0,
           lambda r: float(all(a > b for a, b in
                               zip(_totals_by_vdd(r), _totals_by_vdd(r)[1:]))),
           abs=0.1,
           source="SVII ('power reduction ... supply voltage reduction')"),
    metric("power_saving_lowest_vdd", 0.70,
           lambda r: 1.0 - _totals_by_vdd(r)[-1] / _totals_by_vdd(r)[0],
           abs=0.15,
           source="SVII claim, reproduction-established baseline"),
))


@experiment("ext_vdd", "EXT -- supply-voltage scaling at 10 K",
            report=report, group="extensions", order=120, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
