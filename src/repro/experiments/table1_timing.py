"""EXP-T1: Table 1 -- SoC critical path and clock frequency per corner."""

from __future__ import annotations

from repro.core.report import format_table

__all__ = ["run", "report", "PAPER_TABLE1"]

PAPER_TABLE1 = {
    300.0: {"delay_ns": 1.04, "freq_mhz": 960},
    10.0: {"delay_ns": 1.09, "freq_mhz": 917},
}


def run(study=None) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True))
    from repro.sta import analyze_hold

    rows = {}
    for t in (300.0, 10.0):
        rep = study.timing[t]
        hold = analyze_hold(
            study.soc_model.netlist, study.libraries[t], study.placement
        )
        rows[t] = {
            "delay_ns": rep.critical_path_delay * 1e9,
            "freq_mhz": rep.fmax_hz / 1e6,
            "endpoint": rep.critical_endpoint,
            "hold_slack_ps": hold.worst_hold_slack * 1e12,
            "hold_clean": hold.clean,
        }
    slowdown = rows[10.0]["delay_ns"] / rows[300.0]["delay_ns"] - 1.0
    return {"corners": rows, "slowdown": slowdown,
            "gate_count": study.soc_model.gate_count}


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for t, data in result["corners"].items():
        paper = PAPER_TABLE1[t]
        rows.append([
            f"{t:g} K",
            f"{data['delay_ns']:.2f} ns",
            f"{data['freq_mhz']:.0f} MHz",
            f"{data['hold_slack_ps']:+.1f} ps"
            + (" (clean)" if data["hold_clean"] else " (VIOLATED)"),
            f"{paper['delay_ns']:.2f} ns / {paper['freq_mhz']} MHz",
        ])
    table = format_table(
        ["temperature", "critical path", "clock", "worst hold slack",
         "paper"],
        rows,
        title=(
            f"Table 1: SoC timing ({result['gate_count']} gates), "
            f"cryogenic slowdown {result['slowdown'] * 100:.1f} % "
            "(paper: 4.6 %, 'less than 10 %')"
        ),
    )
    return table


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("delay_300k_ns", PAPER_TABLE1[300.0]["delay_ns"],
           lambda r: r["corners"][300.0]["delay_ns"],
           rel=0.05, source="Table 1"),
    metric("delay_10k_ns", PAPER_TABLE1[10.0]["delay_ns"],
           lambda r: r["corners"][10.0]["delay_ns"],
           rel=0.05, source="Table 1"),
    metric("freq_10k_mhz", PAPER_TABLE1[10.0]["freq_mhz"],
           lambda r: r["corners"][10.0]["freq_mhz"],
           rel=0.05, source="Table 1"),
    metric("cryo_slowdown", 0.046,
           lambda r: r["slowdown"],
           abs=0.025, source="Table 1 (4.6 %, 'less than 10 %')"),
))


@experiment("table1", "Table 1 -- SoC critical path and clock frequency",
            report=report, order=40, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
