"""EXT-SEU: single-event-upset vulnerability of the readout classifier.

The paper's SoC classifies qubit states *inside* the cryostat, where
the classical logic itself is exposed to the radiation/low-temperature
upset mechanisms the "Intelligent Methods for Test and Reliability"
umbrella project studies.  This experiment asks the obvious follow-up
the paper leaves open: if a single bit flips in the register file, the
data memory or the L1D arrays mid-classification, does the 110 us
decoherence budget ship a wrong label (silent data corruption), a
detectable crash/hang, or nothing at all?

Method: a seeded statistical fault-injection campaign (one flip per
run, outcomes bucketed against a golden run; see
:mod:`repro.reliability.campaign`) on the kNN kernel, reported as
per-structure architectural-vulnerability factors -- then repeated
with task-level software TMR to quantify how much of the SDC rate the
classic mitigation buys back.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.reliability import CampaignConfig, knn_workload, run_campaign

__all__ = ["run", "report"]


def run(
    n_injections: int = 200,
    n_qubits: int = 8,
    shots: int = 12,
    seed: int = 2023,
) -> dict:
    """Campaign on the kNN kernel, without and with software TMR."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 0.8, (n_qubits, 2, 2))
    measurements = rng.normal(0.0, 0.8, (shots * n_qubits, 2))
    spec = knn_workload(centers, measurements, n_qubits)
    base = run_campaign(
        spec, CampaignConfig(n_injections=n_injections, seed=seed)
    )
    tmr = run_campaign(
        spec, CampaignConfig(n_injections=n_injections, seed=seed, tmr=True)
    )
    return {
        "n_injections": n_injections,
        "n_qubits": n_qubits,
        "campaign": base,
        "campaign_tmr": tmr,
        "sdc_rate": base.rate("sdc"),
        "sdc_rate_tmr": tmr.rate("sdc"),
        "avf": {s: base.avf(s) for s in base.structures()},
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    base = result["campaign"]
    tmr = result["campaign_tmr"]
    rows = []
    for s in base.structures():
        c = base.counts(s)
        n = sum(c.values())
        rows.append([
            s,
            n,
            c["masked"],
            c["sdc"],
            c["crash"],
            c["hang"],
            f"{base.avf(s) * 100:.1f} %",
            f"{tmr.rate('sdc', s) * 100:.1f} %",
        ])
    c = base.counts()
    rows.append([
        "TOTAL",
        sum(c.values()),
        c["masked"],
        c["sdc"],
        c["crash"],
        c["hang"],
        f"{base.avf() * 100:.1f} %",
        f"{tmr.rate('sdc') * 100:.1f} %",
    ])
    return format_table(
        ["structure", "n", "masked", "SDC", "crash", "hang", "AVF",
         "SDC w/ TMR"],
        rows,
        title=(
            f"EXT-SEU: {result['n_injections']} injections, kNN kernel, "
            f"{result['n_qubits']} qubits "
            f"(golden {base.golden_cycles} cycles; "
            f"SDC {result['sdc_rate']:.1%} -> "
            f"{result['sdc_rate_tmr']:.1%} with TMR)"
        ),
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("tmr_sdc_rate", 0.0,
           lambda r: r["sdc_rate_tmr"],
           abs=0.01, source="software TMR masks SDC (classic result)"),
    metric("baseline_sdc_rate", 0.07,
           lambda r: r["sdc_rate"],
           abs=0.05,
           source="seeded campaign, reproduction-established baseline"),
))


@experiment("ext_seu", "EXT -- SEU fault-injection campaign",
            report=report, needs_study=False, order=150, fidelity=FIDELITY)
def _experiment(study, config):
    return run()
