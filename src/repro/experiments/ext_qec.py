"""EXT-QEC: repetition-code decoding on the SoC (paper §VII).

"Ultimately, to achieve fully error-corrected quantum computers, complex
quantum error correction protocols have to be executed."  We quantify the
simplest protocol: classify every physical qubit, then majority-decode
distance-d repetition blocks -- both stages on the RISC-V core, both
inside the decoherence budget.
"""

from __future__ import annotations

import numpy as np

from repro.classify.qec import logical_error_rate
from repro.core.report import format_table
from repro.soc import RocketSoC

__all__ = ["run", "report"]


def run(
    study=None,
    distances=(3, 5, 7),
    n_logical: int = 200,
    physical_error: float = 0.013,
) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=15))
    frequency = study.frequency(10.0)
    rng = np.random.default_rng(7)
    rows = {}
    for d in distances:
        n_physical = n_logical * d
        classify_cpm, _ = study.knn_cycles(min(n_physical, 1200))
        bits = rng.integers(0, 2, 30 * n_physical)
        decode = RocketSoC().run_qec_decode(bits, d)
        decode_cpl = decode.cycles / (30 * n_logical)
        classify_t = n_physical * classify_cpm / frequency
        decode_t = n_logical * decode_cpl / frequency
        rows[d] = {
            "n_physical": n_physical,
            "classify_us": classify_t * 1e6,
            "decode_us": decode_t * 1e6,
            "total_us": (classify_t + decode_t) * 1e6,
            "decode_cycles_per_logical": decode_cpl,
            "logical_error": logical_error_rate(physical_error, d),
            "fits": (classify_t + decode_t) <= 110e-6,
        }
    return {
        "n_logical": n_logical,
        "physical_error": physical_error,
        "rows": rows,
        "frequency_mhz": frequency / 1e6,
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for d, data in result["rows"].items():
        rows.append([
            d,
            data["n_physical"],
            f"{data['classify_us']:.1f}",
            f"{data['decode_us']:.1f}",
            f"{data['total_us']:.1f}",
            f"{data['logical_error']:.2e}",
            "yes" if data["fits"] else "NO",
        ])
    return format_table(
        ["distance", "physical qubits", "classify (us)", "decode (us)",
         "total (us)", "logical error", "fits 110 us"],
        rows,
        title=(
            f"EXT-QEC: {result['n_logical']} logical qubits, physical "
            f"error {result['physical_error']:.3f}, "
            f"{result['frequency_mhz']:.0f} MHz clock"
        ),
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("d3_fits_110us_budget", 1.0,
           lambda r: float(r["rows"][3]["fits"]),
           abs=0.1, source="SVII (QEC inside the 110 us budget)"),
    metric("d5_fits_110us_budget", 1.0,
           lambda r: float(r["rows"][5]["fits"]),
           abs=0.1, source="SVII (QEC inside the 110 us budget)"),
    metric("d3_suppresses_error", 1.0,
           lambda r: float(
               r["rows"][3]["logical_error"] < r["physical_error"]),
           abs=0.1, source="SVII ('fully error-corrected')"),
))


@experiment("ext_qec", "EXT -- repetition-code QEC decoding",
            report=report, group="extensions", order=110, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
