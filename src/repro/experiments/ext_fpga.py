"""EXT-FPGA: the embedded-fabric option, quantified (paper §VII).

Compares classifying N qubits in software on the RISC-V core against the
HDC accelerator on the SRAM-based FPGA fabric, in both of the paper's
configurations ("high-power low-latency or ... low-power high-latency").
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.fpga import FPGAFabric, build_hdc_accelerator, lut_map

__all__ = ["run", "report"]


def run(study=None, n_qubits: int = 1500) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=15))
    lib10 = study.libraries[10.0]
    frequency = study.frequency(10.0)

    # Software baselines at the measured large-system cycle counts.
    knn_cpm, _ = study.knn_cycles(400)
    hdc_cpm, _ = study.hdc_cycles(400)
    software = {
        "kNN (software)": n_qubits * knn_cpm / frequency,
        "HDC (software)": n_qubits * hdc_cpm / frequency,
    }

    mapping = lut_map(build_hdc_accelerator(128), k=4)
    fabric = FPGAFabric(lib10, study.models)
    fast = fabric.deploy(mapping, pipeline_stages=None)
    slow = fabric.deploy(mapping, pipeline_stages=1)
    return {
        "n_qubits": n_qubits,
        "software_times": software,
        "mapping": mapping,
        "fast": fast,
        "slow": slow,
        "budget_s": 110e-6,
        "soc_power_w": study.fig6["reports"][10.0].total,
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    n = result["n_qubits"]
    rows = []
    for name, t in result["software_times"].items():
        rows.append([name, f"{t * 1e6:9.2f}", f"{result['soc_power_w'] * 1e3:.1f}",
                     "yes" if t <= result["budget_s"] else "NO"])
    for name, rep in (("HDC fabric, pipelined", result["fast"]),
                      ("HDC fabric, combinational", result["slow"])):
        t = rep.time_for(n)
        rows.append([name, f"{t * 1e6:9.2f}",
                     f"{rep.total_power_w * 1e3:.2f}",
                     "yes" if t <= result["budget_s"] else "NO"])
    mapping = result["mapping"]
    table = format_table(
        ["implementation", "time for all qubits (us)", "power (mW)",
         "fits 110 us"],
        rows,
        title=(
            f"EXT-FPGA: classifying {n} qubits at 10 K "
            f"(accelerator: {mapping.n_luts} LUTs, depth {mapping.depth}, "
            f"config SRAM {result['fast'].config_bits / 8 / 1024:.1f} KiB)"
        ),
    )
    return table


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("fabric_fits_110us_budget", 1.0,
           lambda r: float(
               r["fast"].time_for(r["n_qubits"]) <= r["budget_s"]),
           abs=0.1, source="SVII (110 us decoherence budget)"),
    metric("fabric_below_soc_power", 1.0,
           lambda r: float(r["fast"].total_power_w < r["soc_power_w"]),
           abs=0.1,
           source="SVII ('high-power low-latency or low-power "
                  "high-latency')"),
))


@experiment("ext_fpga", "EXT -- embedded FPGA classification fabric",
            report=report, group="extensions", order=100, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
