"""The formal experiment API: specs, a registry, and a decorator.

Every paper artifact (table, figure, extension) is one
:class:`ExperimentSpec`: a name, a human title, a ``run(study, config)``
producing the data products, and a ``report(result)`` rendering them as
the printable artifact.  Modules register their spec with the
:func:`experiment` decorator::

    @experiment("table1", "Table 1 -- SoC timing closure",
                report=report, order=40)
    def _experiment(study, config):
        return run(study)

The CLI (``python -m repro``) is *generated* from this registry -- its
command list, ``repro all`` expansion and the parallel experiment
fan-out all consume the same specs, so registering an experiment is the
single step that plugs it into everything.

Conventions:

* ``run(study, config)`` receives the shared :class:`CryoStudy` (or
  ``None`` when ``needs_study`` is false) and the run's
  :class:`~repro.core.flow.StudyConfig`;
* ``report(result)`` is pure formatting: result in, string out;
* ``order`` fixes the artifact sequence of ``repro all`` (ascending);
* ``group`` names an umbrella CLI command (e.g. ``extensions``) that
  expands to every member, in order;
* ``in_all=False`` keeps an experiment CLI-reachable but out of
  ``repro all`` (e.g. the heavy SoC-configuration sweep).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.provenance.fidelity import FidelityReport, FidelitySpec

__all__ = [
    "ExperimentSpec",
    "all_specs",
    "experiment",
    "get",
    "group_members",
    "groups",
    "names",
    "register",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One self-contained experiment: how to run it and report it."""

    name: str
    title: str
    run: Callable
    """``run(study, config) -> result`` -- the data products."""
    report: Callable
    """``report(result) -> str`` -- the printable artifact."""
    needs_study: bool = True
    """Whether ``run`` wants the shared :class:`CryoStudy` (False: it
    builds everything it needs, and the CLI passes ``study=None``)."""
    group: str | None = None
    """Umbrella CLI command this experiment expands under, if any."""
    order: int = 0
    """Position in ``repro all`` (ascending)."""
    in_all: bool = True
    """Whether ``repro all`` includes this experiment."""
    fidelity: FidelitySpec | None = None
    """Paper-anchored figures of merit checked after every run (the
    provenance layer's PASS/WARN/FAIL verdict); None = unchecked."""

    def execute(self, study, config) -> str:
        """Run + report in one step (what the CLI fan-out calls)."""
        return self.report(self.run(study if self.needs_study else None,
                                    config))

    def run_result(self, study, config):
        """The raw result dict (what fidelity checks extract from)."""
        return self.run(study if self.needs_study else None, config)

    def check_fidelity(self, result) -> FidelityReport | None:
        """Grade ``result`` against the declared spec, if any."""
        if self.fidelity is None:
            return None
        return self.fidelity.evaluate(self.name, result)


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec; duplicate names are a programming error."""
    if spec.name in _REGISTRY:
        raise ValueError(f"experiment {spec.name!r} already registered")
    if spec.group == spec.name:
        raise ValueError(f"experiment {spec.name!r} cannot group itself")
    _REGISTRY[spec.name] = spec
    return spec


def experiment(
    name: str,
    title: str,
    *,
    report: Callable,
    needs_study: bool = True,
    group: str | None = None,
    order: int = 0,
    in_all: bool = True,
    fidelity: FidelitySpec | None = None,
) -> Callable:
    """Decorator form of :func:`register`; decorates the run callable."""

    def decorate(run: Callable) -> Callable:
        register(ExperimentSpec(
            name=name, title=title, run=run, report=report,
            needs_study=needs_study, group=group, order=order,
            in_all=in_all, fidelity=fidelity,
        ))
        return run

    return decorate


# ---------------------------------------------------------------------- #
# Lookup
# ---------------------------------------------------------------------- #
def get(name: str) -> ExperimentSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"no experiment {name!r} registered (known: {known})"
        ) from None


def names() -> list[str]:
    """Registered experiment names, in ``repro all`` order."""
    return [spec.name for spec in all_specs()]


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec, ordered for ``repro all``."""
    return sorted(_REGISTRY.values(), key=lambda s: (s.order, s.name))


def groups() -> dict[str, list[ExperimentSpec]]:
    """Umbrella command -> ordered member specs."""
    out: dict[str, list[ExperimentSpec]] = {}
    for spec in all_specs():
        if spec.group:
            out.setdefault(spec.group, []).append(spec)
    return out


def group_members(group: str) -> list[ExperimentSpec]:
    members = groups().get(group)
    if not members:
        raise KeyError(f"no experiment group {group!r}")
    return members
