"""EXT-SOC-SWEEP: off-the-shelf SoC configuration exploration.

Paper Section I-C: "Off-the-shelf SoCs, designed for room temperature
use, are available in a wide range of specifications and capabilities and
could quickly be swapped in and out, depending on the requirements of the
tasks."  This experiment swaps the cache configuration and measures where
the Table-2 wall moves: a larger L1D absorbs the per-qubit calibration
records and defers the cache-miss growth to higher qubit counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.soc import RocketSoC
from repro.soc.cache import Cache, CacheHierarchy

__all__ = ["run", "report"]


def _hierarchy_factory(l1d_kib: int):
    def build() -> CacheHierarchy:
        return CacheHierarchy(
            l1d=Cache("l1d", l1d_kib * 1024, 64, 4)
        )

    return build


def run(
    l1d_sizes_kib=(8, 16, 32, 64),
    n_qubits: int = 400,
    shots: int = 30,
    seed: int = 2023,
) -> dict:
    """kNN cycles/measurement at ``n_qubits`` across L1D sizes."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 0.8, (n_qubits, 2, 2))
    measurements = rng.normal(0.0, 0.8, (shots * n_qubits, 2))
    results = {}
    for size in l1d_sizes_kib:
        soc = RocketSoC(cache_factory=_hierarchy_factory(size))
        result = soc.run_knn(centers, measurements, n_qubits)
        results[size] = result.cycles / len(measurements)
    return {
        "n_qubits": n_qubits,
        "cycles": results,
        "working_set_kib": n_qubits * 64 / 1024,
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    baseline = result["cycles"][16]
    for size, cpm in result["cycles"].items():
        note = "paper config" if size == 16 else (
            "fits working set" if size >= result["working_set_kib"] else ""
        )
        rows.append([
            f"{size} KiB",
            f"{cpm:.1f}",
            f"{cpm / baseline * 100:.0f} %",
            note,
        ])
    return format_table(
        ["L1D size", "kNN cycles/meas", "vs 16 KiB", ""],
        rows,
        title=(
            f"EXT-SOC-SWEEP: {result['n_qubits']} qubits "
            f"(calibration working set {result['working_set_kib']:.0f} KiB)"
        ),
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("knn_cycles_16k_400q", 72.8,
           lambda r: r["cycles"][16],
           rel=0.15, source="Table 2 (kNN, 400 qubits, paper config)"),
    metric("bigger_l1d_helps", 1.0,
           lambda r: float(r["cycles"][64] < r["cycles"][16]),
           abs=0.1,
           source="SI-C ('swapped in and out, depending on the "
                  "requirements')"),
))


@experiment("ext_soc_sweep", "EXT -- off-the-shelf SoC configuration sweep",
            report=report, needs_study=False, order=160, in_all=False,
            fidelity=FIDELITY)
def _experiment(study, config):
    return run()
