"""EXT-THERMAL: burst power management on the 10 K stage (paper §VII).

Quantifies "short but high-power processing bursts followed by a
low-power idle phase without impacting the qubits": how long the SoC may
run above the steady cooling budget, and whether a classify-burst/idle
duty cycle for a large quantum system is thermally admissible.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.power.thermal import BurstSchedule, CryostatStage, max_burst_duration

__all__ = ["run", "report"]


def run(
    soc_power_w: float = 0.046,
    burst_powers=(0.15, 0.25, 0.40, 0.80),
    idle_power_w: float = 0.002,
) -> dict:
    """Burst windows and an admissible classification duty cycle.

    ``soc_power_w`` defaults to the measured 10 K kNN power (Fig. 6);
    ``idle_power_w`` to the clock-gated leakage floor.
    """
    stage = CryostatStage()
    windows = {
        p: max_burst_duration(stage, p, idle_power_w=idle_power_w)
        for p in burst_powers
    }
    # A 1500-qubit classify burst: ~110 us of compute at 4x the SoC's
    # average power (boosted clock + both classifiers), every 1 ms.
    classify = BurstSchedule(
        burst_power_w=4 * soc_power_w,
        idle_power_w=idle_power_w,
        burst_duration_s=110e-6,
        period_s=1e-3,
    )
    return {
        "stage": stage,
        "windows": windows,
        "classify_schedule": classify,
        "classify_admissible": classify.admissible(stage),
        "classify_peak_excursion": classify.peak_excursion(stage),
        "sustainable_power_w": stage.sustainable_power(),
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    stage = result["stage"]
    rows = []
    for p, window in result["windows"].items():
        rows.append([
            f"{p * 1e3:.0f} mW",
            "unlimited" if window == float("inf") else f"{window:.2f} s",
        ])
    table = format_table(
        ["burst power", "max burst from idle"],
        rows,
        title=(
            f"EXT-THERMAL: 10 K stage (tau = {stage.tau_s:.1f} s, budget "
            f"{stage.cooling_power_w * 1e3:.0f} mW, excursion limit "
            f"{stage.delta_t_max_k} K)"
        ),
    )
    sched = result["classify_schedule"]
    summary = (
        f"classify burst schedule: {sched.burst_power_w * 1e3:.0f} mW for "
        f"{sched.burst_duration_s * 1e6:.0f} us every "
        f"{sched.period_s * 1e3:.0f} ms "
        f"(avg {sched.average_power_w * 1e3:.1f} mW) -> "
        f"peak excursion {result['classify_peak_excursion'] * 1e3:.1f} mK, "
        f"{'ADMISSIBLE' if result['classify_admissible'] else 'REJECTED'}"
    )
    return table + "\n" + summary


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("classify_burst_admissible", 1.0,
           lambda r: float(r["classify_admissible"]),
           abs=0.1,
           source="SVII (bursts 'without impacting the qubits')"),
    metric("sustainable_ge_100mw", 1.0,
           lambda r: float(r["sustainable_power_w"] >= 0.1),
           abs=0.1, source="Fig. 6 (100 mW cooling capacity)"),
))


@experiment("ext_thermal", "EXT -- burst power management at 10 K",
            report=report, needs_study=False, group="extensions", order=90,
            fidelity=FIDELITY)
def _experiment(study, config):
    return run()
