"""EXT-VQE: hybrid-loop latency, integrated SoC vs. room-temperature host.

Paper Section VII: "For hybrid quantum-classical algorithms, such as the
quantum approximate optimization algorithm or the variational quantum
eigensolver, an integrated SoC decreases the data movement and would,
thus, allow for more optimization steps given a specified runtime budget
leading to higher quality results."

We time one iteration's classical work (classify every qubit, form the
expectation, SPSA-update the ansatz parameters) on the cryogenic SoC and
compare with shipping the raw I/Q samples up the cryostat cabling to a
300 K host.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.soc import RocketSoC

__all__ = ["RemoteHostModel", "run", "report"]


from dataclasses import dataclass


@dataclass(frozen=True)
class RemoteHostModel:
    """Latency model of the conventional 300 K control stack."""

    link_gbps: float = 10.0
    """Serial link bandwidth out of the cryostat."""

    cable_delay_s: float = 40e-9
    """One-way propagation through the ~4 m of cabling and filtering."""

    host_turnaround_s: float = 100e-6
    """Host-side OS / instrument-stack / framework turnaround per
    iteration (the dominant term in practice; qiskit-runtime-class stacks
    measure in the 0.1-10 ms range -- we take the optimistic end)."""

    def iteration_time(self, n_qubits: int, raw_bytes_per_qubit: int = 16,
                       classical_time_s: float = 0.0) -> float:
        """Round-trip time for one hybrid iteration (s)."""
        payload = n_qubits * raw_bytes_per_qubit * 8  # bits up-link
        transfer = payload / (self.link_gbps * 1e9)
        return (
            2 * self.cable_delay_s
            + transfer
            + self.host_turnaround_s
            + classical_time_s
        )


def run(
    study=None,
    n_qubits: int = 400,
    n_params: int = 64,
    runtime_budget_s: float = 1.0,
) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=15))
    frequency = study.frequency(10.0)

    # Local classical step: classify + expectation/update, measured on
    # the ISS.
    knn_cpm, knn_result = study.knn_cycles(n_qubits)
    rng = np.random.default_rng(5)
    update = RocketSoC().run_vqe_update(
        bits=np.asarray(knn_result.labels[:n_qubits], dtype=np.uint8),
        params=rng.integers(-(10**6), 10**6, n_params),
        signs=rng.integers(0, 2, n_params).astype(np.uint8),
    )
    classify_t = n_qubits * knn_cpm / frequency
    update_t = update.cycles / frequency
    local_t = classify_t + update_t

    remote = RemoteHostModel()
    remote_t = remote.iteration_time(n_qubits)

    quantum_t = 30e-6  # state preparation + measurement per iteration
    local_iters = int(runtime_budget_s / (quantum_t + local_t))
    remote_iters = int(runtime_budget_s / (quantum_t + remote_t))
    return {
        "n_qubits": n_qubits,
        "n_params": n_params,
        "classify_us": classify_t * 1e6,
        "update_us": update_t * 1e6,
        "local_us": local_t * 1e6,
        "remote_us": remote_t * 1e6,
        "speedup": remote_t / local_t,
        "runtime_budget_s": runtime_budget_s,
        "local_iterations": local_iters,
        "remote_iterations": remote_iters,
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    table = format_table(
        ["where", "classical step (us)", "iterations in "
         f"{result['runtime_budget_s']:.0f} s budget"],
        [
            ["cryogenic SoC (classify "
             f"{result['classify_us']:.1f} us + update "
             f"{result['update_us']:.1f} us)",
             f"{result['local_us']:.1f}",
             result["local_iterations"]],
            ["300 K host round trip",
             f"{result['remote_us']:.1f}",
             result["remote_iterations"]],
        ],
        title=(
            f"EXT-VQE: one hybrid iteration, {result['n_qubits']} qubits, "
            f"{result['n_params']} ansatz parameters"
        ),
    )
    return table + (
        f"\nintegrated SoC gives {result['speedup']:.1f}x faster classical "
        f"steps -> {result['local_iterations'] / max(result['remote_iterations'], 1):.1f}x "
        "more optimization steps in the same runtime budget"
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("local_faster_than_remote", 1.0,
           lambda r: float(r["speedup"] > 1.0),
           abs=0.1,
           source="SVII ('decreases the data movement ... more "
                  "optimization steps')"),
    metric("iteration_gain", 2.0,
           lambda r: (r["local_iterations"]
                      / max(r["remote_iterations"], 1)),
           abs=1.0,
           source="SVII claim, reproduction-established baseline"),
))


@experiment("ext_vqe", "EXT -- hybrid-loop (VQE) latency budget",
            report=report, group="extensions", order=130, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
