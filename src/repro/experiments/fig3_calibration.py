"""EXP-F3: Fig. 3 -- measured vs. calibrated transfer characteristics.

The paper's panel: Ids-Vgs in linear (|Vds| = 50 mV) and saturation
(|Vds| = 750 mV), n- and p-FinFET, 300 K and 10 K; "symbols and lines show
the data from measurement and calibrated model simulation".  Our metric
is the RMS log-current error per corner plus the headline device shifts.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.device import (
    Calibrator,
    FinFET,
    MeasurementCampaign,
    default_nfet,
    default_pfet,
    extract_figures,
)

__all__ = ["run", "report"]


def run(seed: int = 2023) -> dict:
    """Run the full calibration and collect fit quality + metrics."""
    datasets = MeasurementCampaign(seed=seed).run(n_points=61)
    results = {
        "n": Calibrator(datasets["n"], default_nfet()).calibrate(),
        "p": Calibrator(datasets["p"], default_pfet()).calibrate(),
    }
    metrics = {}
    for pol, result in results.items():
        device = FinFET(result.params)
        sign = -1.0 if pol == "p" else 1.0
        figs = {}
        for t in (300.0, 10.0):
            vg, ids = device.transfer_curve(sign * 0.75, t, n_points=161)
            figs[t] = extract_figures(vg, ids, t)
        metrics[pol] = figs
    return {"datasets": datasets, "calibration": results, "metrics": metrics}


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for pol, cal in result["calibration"].items():
        for corner, err in sorted(cal.validation.items()):
            rows.append([corner, f"{err:.4f}"])
    fit = format_table(
        ["corner", "RMS error (decades)"],
        rows,
        title="Fig. 3: calibrated model vs. measurement, all corners",
    )

    mrows = []
    paper_rise = {"n": "47 %", "p": "39 %"}
    for pol, figs in result["metrics"].items():
        rise = figs[10.0].vth / figs[300.0].vth - 1.0
        mrows.append([
            pol,
            f"{figs[300.0].vth:.3f} -> {figs[10.0].vth:.3f}",
            f"+{rise * 100:.1f} % (paper {paper_rise[pol]})",
            f"{figs[300.0].swing * 1e3:.1f} -> {figs[10.0].swing * 1e3:.1f}",
            f"{figs[300.0].ioff / figs[10.0].ioff:.0f}x",
        ])
    metrics = format_table(
        ["device", "Vth (V)", "Vth rise", "SS (mV/dec)", "Ioff drop"],
        mrows,
        title="Extracted figures of merit, 300 K -> 10 K",
    )
    return fit + "\n\n" + metrics


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402


def _vth_rise(result: dict, pol: str) -> float:
    figs = result["metrics"][pol]
    return figs[10.0].vth / figs[300.0].vth - 1.0


FIDELITY = FidelitySpec(metrics=(
    metric("vth_rise_nfet", 0.47,
           lambda r: _vth_rise(r, "n"),
           abs=0.05, source="Fig. 3 / SIII (Vth +47 %)"),
    metric("vth_rise_pfet", 0.39,
           lambda r: _vth_rise(r, "p"),
           abs=0.05, source="Fig. 3 / SIII (Vth +39 %)"),
    metric("worst_rms_error_decades", 0.0,
           lambda r: max(err for cal in r["calibration"].values()
                         for err in cal.validation.values()),
           abs=0.1, source="Fig. 3 (model matches measurement)"),
))


@experiment("fig3", "Fig. 3 -- staged compact-model calibration",
            report=report, needs_study=False, order=20, fidelity=FIDELITY)
def _experiment(study, config):
    return run()
