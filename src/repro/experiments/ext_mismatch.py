"""EXT-MISMATCH: cryogenic device mismatch and SRAM cell stability.

Paper Section III: "Mismatch in transistor characteristics and Vth
increase at cryogenic temperature are major challenges faced by circuit
designers and affect the circuit design significantly [17]."  We quantify
the bitcell-level consequence: hold static noise margin of the
ultra-low-Vth 6T cell at 300 K vs 10 K, nominal and under Monte-Carlo
mismatch, via the SPICE engine's DC solver.
"""

from __future__ import annotations

from repro.core.report import format_table
from repro.device.sram_cell import SRAMCellAnalysis
from repro.device.variability import MismatchModel

__all__ = ["run", "report"]


def run(models=None, n_cells: int = 16, seed: int = 11) -> dict:
    if models is None:
        from repro.cells import TechModels
        from repro.device import golden_nfet, golden_pfet

        models = TechModels(golden_nfet(), golden_pfet())
    mismatch = MismatchModel()
    analysis = SRAMCellAnalysis.bitcell(models, mismatch=mismatch)
    corners = {}
    for t in (300.0, 10.0):
        mc = analysis.monte_carlo(t, n_cells=n_cells, seed=seed,
                                  n_points=25)
        corners[t] = {
            "nominal_snm": analysis.nominal_snm(t, n_points=25),
            "mc_mean": float(mc.mean()),
            "mc_sigma": float(mc.std()),
            "mc_min": float(mc.min()),
            "sigma_vth": mismatch.sigma_vth(models.nfet, t),
        }
    return {"corners": corners, "n_cells": n_cells}


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for t, data in result["corners"].items():
        rows.append([
            f"{t:g} K",
            f"{data['sigma_vth'] * 1e3:.1f}",
            f"{data['nominal_snm'] * 1e3:.1f}",
            f"{data['mc_mean'] * 1e3:.1f}",
            f"{data['mc_sigma'] * 1e3:.2f}",
            f"{data['mc_min'] * 1e3:.1f}",
        ])
    return format_table(
        ["corner", "sigma Vth (mV)", "nominal SNM (mV)", "MC mean (mV)",
         "MC sigma (mV)", "MC worst (mV)"],
        rows,
        title=(
            f"EXT-MISMATCH: 6T hold SNM, {result['n_cells']}-cell "
            "Monte-Carlo (mismatch grows at cryo; margin holds)"
        ),
    )


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("mismatch_grows_at_cryo", 1.0,
           lambda r: float(r["corners"][10.0]["sigma_vth"]
                           > r["corners"][300.0]["sigma_vth"]),
           abs=0.1,
           source="SIII ('mismatch ... major challenges' at cryo [17])"),
    metric("snm_margin_holds_10k", 1.0,
           lambda r: float(r["corners"][10.0]["mc_min"] > 0.0),
           abs=0.1, source="SIII (SRAM stays functional at 10 K)"),
    metric("nominal_snm_10k_mv", 157.0,
           lambda r: r["corners"][10.0]["nominal_snm"] * 1e3,
           abs=15.0,
           source="SIII claim, reproduction-established baseline"),
))


@experiment("ext_mismatch", "EXT -- mismatch and SRAM noise margins",
            report=report, needs_study=False, group="extensions", order=140,
            fidelity=FIDELITY)
def _experiment(study, config):
    return run()
