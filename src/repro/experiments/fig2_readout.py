"""EXP-F2: Fig. 2 -- Falcon readout scatter and decoherence decay.

(a) 27-qubit I/Q readout with 0/1 classification by proximity to the
calibration centers; (b) fidelity decay with T2 ~ 110 us.
"""

from __future__ import annotations

import numpy as np

from repro.classify import evaluate_accuracy, get_classifier
from repro.core.report import format_table
from repro.quantum import falcon_backend, generate_dataset

__all__ = ["run", "report"]


def run(n_shots: int = 256, seed: int = 27) -> dict:
    """Generate the Fig.-2 data products."""
    backend = falcon_backend(seed=seed)
    dataset = generate_dataset(backend, n_shots=n_shots)
    qubit, truth, points = dataset.interleaved()
    clf = get_classifier("knn").from_centers(dataset.calibration_centers)
    labels = clf.predict(points, qubit=qubit)
    accuracy = evaluate_accuracy(labels, truth, qubit, backend.n_qubits)

    times = np.linspace(0.0, 125e-6, 26)
    decay = backend.state_fidelity(times)

    return {
        "n_qubits": backend.n_qubits,
        "model_digest": clf.model_digest,
        "centers": dataset.calibration_centers,
        "points": points,
        "labels": labels,
        "truth": truth,
        "accuracy": accuracy,
        "decay_times_us": times * 1e6,
        "decay_fidelity": decay,
        "t2_us": backend.t2 * 1e6,
    }


def report(result: dict | None = None) -> str:
    """Printable Fig.-2 summary (per-qubit table + decay samples)."""
    result = result or run()
    acc = result["accuracy"]
    rows = [
        [q,
         f"({result['centers'][q, 0, 0]:+.2f},{result['centers'][q, 0, 1]:+.2f})",
         f"({result['centers'][q, 1, 0]:+.2f},{result['centers'][q, 1, 1]:+.2f})",
         f"{acc.per_qubit[q]:.3f}"]
        for q in range(result["n_qubits"])
    ]
    table = format_table(
        ["qubit", "center |0>", "center |1>", "assign. fidelity"],
        rows,
        title=(
            f"Fig. 2(a): {result['n_qubits']}-qubit readout, overall "
            f"accuracy {acc.overall:.4f}"
        ),
    )
    decay_rows = [
        [f"{t:.0f}", f"{f:.3f}"]
        for t, f in zip(result["decay_times_us"][::5],
                        result["decay_fidelity"][::5])
    ]
    decay = format_table(
        ["t (us)", "fidelity"],
        decay_rows,
        title=f"Fig. 2(b): decoherence decay, T2 = {result['t2_us']:.0f} us",
    )
    return table + "\n\n" + decay


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("overall_accuracy", 0.99,
           lambda r: r["accuracy"].overall,
           abs=0.01, source="Fig. 2(a)"),
    metric("t2_us", 110.0,
           lambda r: r["t2_us"],
           abs=0.5, source="Fig. 2(b) (T2 ~ 110 us)"),
))


@experiment("fig2", "Fig. 2 -- Falcon readout scatter and decoherence",
            report=report, needs_study=False, order=10, fidelity=FIDELITY)
def _experiment(study, config):
    return run()
