"""EXP-F5: Fig. 5 -- cell-delay histograms at 300 K and 10 K.

"Histogram shows the delays across all 200 cells in the standard cell
library ... The large overlap of the histograms for 300 and 10 K
demonstrates that the delay is only slightly increased at cryogenic
temperatures."  We regenerate both populations and quantify the overlap.
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table, histogram_rows

__all__ = ["run", "report", "histogram_overlap"]


def histogram_overlap(a: np.ndarray, b: np.ndarray, bins: int = 40) -> float:
    """Shared-area fraction of two delay populations (1.0 = identical)."""
    edges = np.histogram_bin_edges(np.concatenate([a, b]), bins=bins)
    ha, _ = np.histogram(a, bins=edges, density=True)
    hb, _ = np.histogram(b, bins=edges, density=True)
    return float(np.sum(np.minimum(ha, hb)) / np.sum(ha))


def run(study=None) -> dict:
    """Collect both corners' delay populations from the full library."""
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True))
    d300 = study.libraries[300.0].all_delays()
    d10 = study.libraries[10.0].all_delays()
    return {
        "delays_300k": d300,
        "delays_10k": d10,
        "n_cells": len(study.libraries[300.0]),
        "overlap": histogram_overlap(d300, d10),
        "mean_ratio": float(np.mean(d10) / np.mean(d300)),
        "median_ratio": float(np.median(d10) / np.median(d300)),
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    summary = format_table(
        ["metric", "value", "paper expectation"],
        [
            ["library size", result["n_cells"], "~200 cells"],
            ["histogram overlap", f"{result['overlap']:.2f}",
             "large overlap"],
            ["mean delay ratio 10K/300K",
             f"{result['mean_ratio']:.3f}", "slightly > 1"],
            ["median delay ratio", f"{result['median_ratio']:.3f}",
             "slightly > 1"],
        ],
        title="Fig. 5: standard-cell delay distribution, 300 K vs. 10 K",
    )
    # Clip the long tail for a readable ASCII plot.
    clip = np.percentile(result["delays_300k"], 98)
    h300 = histogram_rows(
        result["delays_300k"][result["delays_300k"] < clip],
        bins=18, label="300 K delays (s):",
    )
    h10 = histogram_rows(
        result["delays_10k"][result["delays_10k"] < clip],
        bins=18, label="10 K delays (s):",
    )
    return summary + "\n\n" + h300 + "\n\n" + h10


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("histogram_overlap", 1.0,
           lambda r: r["overlap"],
           abs=0.1, source="Fig. 5 ('large overlap')"),
    metric("mean_delay_ratio_10k", 1.0,
           lambda r: r["mean_ratio"],
           abs=0.05, source="Fig. 5 ('only slightly increased')"),
    metric("library_cells", 200.0,
           lambda r: r["n_cells"],
           abs=10.0, source="SIV (~200 cells)"),
))


@experiment("fig5", "Fig. 5 -- library delay distributions per corner",
            report=report, order=30, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
