"""EXP-F7: Fig. 7 -- classification time vs. qubit count vs. the budget.

"With an increase in the number of qubits, the time to classify all of
them through a KNN becomes more important ... rendering it a bottleneck
for systems with hundreds or thousands of qubits.  The popcount operation
for HDC requires too many cycles to be competitive."  Section VII pins
the kNN bottleneck at "about 1500 qubits".
"""

from __future__ import annotations

from repro.core.report import format_table

__all__ = ["run", "report", "DEFAULT_QUBIT_COUNTS"]

DEFAULT_QUBIT_COUNTS = (20, 100, 200, 400, 800, 1200)


def run(study=None, qubit_counts=DEFAULT_QUBIT_COUNTS) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=15))
    knn = study.scaling_study("knn", qubit_counts=qubit_counts)
    hdc = study.scaling_study(
        "hdc", qubit_counts=tuple(q for q in qubit_counts if q <= 400)
    )
    return {
        "knn": knn,
        "hdc": hdc,
        "knn_crossover": knn.crossover_qubits(),
        "hdc_crossover": hdc.crossover_qubits(),
        "frequency_mhz": knn.points[0].frequency_hz / 1e6,
        "budget_us": knn.points[0].time_budget_s * 1e6,
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    hdc_by_n = {p.n_qubits: p for p in result["hdc"].points}
    for p in result["knn"].points:
        h = hdc_by_n.get(p.n_qubits)
        rows.append([
            p.n_qubits,
            f"{p.classification_time_s * 1e6:.1f}",
            f"{p.budget_fraction * 100:.1f} %",
            f"{h.classification_time_s * 1e6:.1f}" if h else "-",
            f"{h.budget_fraction * 100:.1f} %" if h else "-",
        ])
    table = format_table(
        ["qubits", "kNN time (us)", "kNN budget", "HDC time (us)",
         "HDC budget"],
        rows,
        title=(
            f"Fig. 7: classification time vs. qubit count at "
            f"{result['frequency_mhz']:.0f} MHz, "
            f"decoherence budget {result['budget_us']:.0f} us"
        ),
    )
    summary = (
        f"kNN bottleneck at ~{result['knn_crossover']} qubits "
        "(paper Section VII: 'about 1500 qubits')\n"
        f"HDC bottleneck at ~{result['hdc_crossover']} qubits "
        "(paper: 'too many cycles to be competitive')"
    )
    return table + "\n" + summary


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("knn_crossover_qubits", 1500.0,
           lambda r: r["knn_crossover"],
           rel=0.10, source="SVII ('about 1500 qubits')"),
    metric("decoherence_budget_us", 110.0,
           lambda r: r["budget_us"],
           abs=0.5, source="SVII (110 us budget)"),
    metric("hdc_crossover_below_knn", 1.0,
           lambda r: float(r["hdc_crossover"] < r["knn_crossover"]),
           abs=0.1, source="SVII ('too many cycles to be competitive')"),
))


@experiment("fig7", "Fig. 7 -- qubit-count scaling study",
            report=report, order=70, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
