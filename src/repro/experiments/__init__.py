"""Experiment drivers: one module per paper table/figure plus ablations.

Each module exposes ``run(...) -> dict`` (the data products) and
``report(...) -> str`` (a printable table mirroring the paper artifact).
The benchmark harness in ``benchmarks/`` wraps these.

Index (see DESIGN.md section 4):

* :mod:`~repro.experiments.fig2_readout`     -- EXP-F2 (Fig. 2 a-b)
* :mod:`~repro.experiments.fig3_calibration` -- EXP-F3 (Fig. 3)
* :mod:`~repro.experiments.fig5_delays`      -- EXP-F5 (Fig. 5)
* :mod:`~repro.experiments.table1_timing`    -- EXP-T1 (Table 1)
* :mod:`~repro.experiments.fig6_power`       -- EXP-F6 (Fig. 6)
* :mod:`~repro.experiments.table2_cycles`    -- EXP-T2 (Table 2)
* :mod:`~repro.experiments.fig7_scaling`     -- EXP-F7 (Fig. 7)
* :mod:`~repro.experiments.ablations`        -- ABL-1..4
* :mod:`~repro.experiments.ext_thermal`      -- EXT: burst power management
* :mod:`~repro.experiments.ext_fpga`         -- EXT: embedded FPGA fabric
* :mod:`~repro.experiments.ext_qec`          -- EXT: repetition-code QEC
* :mod:`~repro.experiments.ext_vdd`          -- EXT: supply-voltage scaling
* :mod:`~repro.experiments.ext_vqe`          -- EXT: hybrid-loop latency
* :mod:`~repro.experiments.ext_mismatch`     -- EXT: mismatch + SRAM SNM
* :mod:`~repro.experiments.ext_soc_sweep`    -- EXT: SoC config sweep
* :mod:`~repro.experiments.ext_seu`          -- EXT: SEU fault injection

Each module also registers an :class:`~repro.experiments.registry.ExperimentSpec`
via the :func:`~repro.experiments.registry.experiment` decorator; the
CLI and ``repro all`` are generated from that registry (see
:mod:`repro.experiments.registry`).
"""

from repro.experiments import (
    ablations,
    ext_fpga,
    ext_mismatch,
    ext_qec,
    ext_seu,
    ext_soc_sweep,
    ext_thermal,
    ext_vdd,
    ext_vqe,
    fig2_readout,
    fig3_calibration,
    fig5_delays,
    fig6_power,
    fig7_scaling,
    registry,
    table1_timing,
    table2_cycles,
)

__all__ = [
    "ablations",
    "ext_fpga",
    "ext_mismatch",
    "ext_qec",
    "ext_seu",
    "ext_soc_sweep",
    "ext_thermal",
    "ext_vdd",
    "ext_vqe",
    "fig2_readout",
    "fig3_calibration",
    "fig5_delays",
    "fig6_power",
    "fig7_scaling",
    "registry",
    "table1_timing",
    "table2_cycles",
]
