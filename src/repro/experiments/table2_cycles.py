"""EXP-T2: Table 2 -- average clock cycles to classify one measurement.

"Although HDC comprises simpler binary and logical instructions, it is
3.3x slower than the distance computations with floating point
calculations ... More qubits result in more cache misses increasing the
number of clock cycles."
"""

from __future__ import annotations

from repro.core.report import format_table

__all__ = ["run", "report", "PAPER_TABLE2"]

PAPER_TABLE2 = {
    "knn": {20: 41.5, 400: 72.8},
    "hdc": {20: 184.8, 400: 242.4},
}


def run(study=None) -> dict:
    if study is None:
        from repro.core import CryoStudy, StudyConfig

        study = CryoStudy(StudyConfig(fast=True, shots=20))
    table2 = study.table2
    return {
        "cycles": table2,
        "hdc_knn_ratio_20": table2["hdc"][20] / table2["knn"][20],
        "hdc_knn_ratio_400": table2["hdc"][400] / table2["knn"][400],
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    rows = []
    for method in ("knn", "hdc"):
        rows.append([
            method.upper(),
            f"{result['cycles'][method][20]:.1f}",
            f"{result['cycles'][method][400]:.1f}",
            f"{PAPER_TABLE2[method][20]:.1f} / {PAPER_TABLE2[method][400]:.1f}",
        ])
    table = format_table(
        ["method", "20 qubits", "400 qubits", "paper (20 / 400)"],
        rows,
        title="Table 2: average clock cycles per classified measurement",
    )
    summary = (
        f"HDC/kNN ratio: {result['hdc_knn_ratio_20']:.1f}x at 20 qubits, "
        f"{result['hdc_knn_ratio_400']:.1f}x at 400 "
        "(paper: 'it is 3.3x slower')"
    )
    return table + "\n" + summary


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("knn_cycles_20q", PAPER_TABLE2["knn"][20],
           lambda r: r["cycles"]["knn"][20],
           rel=0.15, source="Table 2"),
    metric("knn_cycles_400q", PAPER_TABLE2["knn"][400],
           lambda r: r["cycles"]["knn"][400],
           rel=0.15, source="Table 2"),
    metric("hdc_cycles_20q", PAPER_TABLE2["hdc"][20],
           lambda r: r["cycles"]["hdc"][20],
           rel=0.25, source="Table 2"),
    metric("hdc_cycles_400q", PAPER_TABLE2["hdc"][400],
           lambda r: r["cycles"]["hdc"][400],
           rel=0.30, source="Table 2"),
    metric("hdc_knn_ratio_20q", 3.3,
           lambda r: r["hdc_knn_ratio_20"],
           rel=0.10, source="SVI ('3.3x slower')"),
))


@experiment("table2", "Table 2 -- cycles per classification",
            report=report, order=60, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
