"""Ablation experiments (ABL-1..4): design choices the paper discusses.

* ABL-1 popcount hardware: "the lack of a popcount instruction in the
  RISC-V instruction set architecture ... Hardware support would reduce
  the computation time significantly" (Section VI-C);
* ABL-2 kNN sqrt shortcut: "the computationally expensive square root
  operation is unnecessary and removed" (Eq. 2);
* ABL-3 HDC precomputed XOR: Eq. 4's rearrangement vs. the naive form;
* ABL-4 SRAM leakage vs. temperature and supply voltage: the power levers
  of Section VII ("further power reduction could be achieved by ...
  supply voltage reduction").
"""

from __future__ import annotations

import numpy as np

from repro.core.report import format_table
from repro.power.sram import SRAMPowerModel

__all__ = [
    "run",
    "report",
    "run_popcount",
    "run_knn_sqrt",
    "run_hdc_precompute",
    "run_sram_sweep",
    "report_all",
]


def _default_study():
    from repro.core import CryoStudy, StudyConfig

    return CryoStudy(StudyConfig(fast=True, shots=15))


def run_popcount(study=None, n_qubits: int = 20) -> dict:
    """ABL-1: soft popcount vs. custom cpop instruction."""
    study = study or _default_study()
    soft, _ = study.hdc_cycles(n_qubits, hardware_popcount=False)
    hard, _ = study.hdc_cycles(n_qubits, hardware_popcount=True)
    return {
        "n_qubits": n_qubits,
        "software_cycles": soft,
        "hardware_cycles": hard,
        "speedup": soft / hard,
    }


def run_knn_sqrt(study=None, n_qubits: int = 20) -> dict:
    """ABL-2: radicand comparison vs. explicit square root."""
    study = study or _default_study()
    plain, plain_res = study.knn_cycles(n_qubits, with_sqrt=False)
    sqrt, sqrt_res = study.knn_cycles(n_qubits, with_sqrt=True)
    assert np.array_equal(plain_res.labels, sqrt_res.labels), (
        "sqrt must not change labels (monotonicity)"
    )
    return {
        "n_qubits": n_qubits,
        "radicand_cycles": plain,
        "sqrt_cycles": sqrt,
        "overhead": sqrt / plain,
    }


def run_hdc_precompute(study=None, n_qubits: int = 20) -> dict:
    """ABL-3: Eq. 4 precomputed XOR vs. the naive two-XOR form.

    Includes the footprint cost and -- at large qubit counts -- the cache
    side of the trade: bigger per-qubit tables can *lose* to the naive
    form once they thrash the L1.
    """
    study = study or _default_study()
    pre, _ = study.hdc_cycles(n_qubits, precomputed_xor=True)
    naive, _ = study.hdc_cycles(n_qubits, precomputed_xor=False)
    pre_big, _ = study.hdc_cycles(400, precomputed_xor=True)
    naive_big, _ = study.hdc_cycles(400, precomputed_xor=False)
    return {
        "n_qubits": n_qubits,
        "precomputed_cycles": pre,
        "naive_cycles": naive,
        "precomputed_cycles_400q": pre_big,
        "naive_cycles_400q": naive_big,
        "footprint_overhead_bytes": 256,
    }


def run_sram_sweep(
    models=None,
    temperatures=(10.0, 25.0, 50.0, 77.0, 150.0, 300.0),
    vdds=(0.50, 0.60, 0.70),
    total_kib: float = 577.25,
) -> dict:
    """ABL-4: SRAM hold leakage across temperature and supply voltage."""
    if models is None:
        from repro.cells import TechModels
        from repro.device import golden_nfet, golden_pfet

        models = TechModels(golden_nfet(), golden_pfet())
    bits = int(total_kib * 1024 * 8)
    grid = {}
    for vdd in vdds:
        for t in temperatures:
            grid[(vdd, t)] = SRAMPowerModel(models, t, vdd=vdd).total_leakage(
                bits
            )
    return {"grid": grid, "temperatures": temperatures, "vdds": vdds,
            "total_kib": total_kib}


def run(study=None) -> dict:
    """All four ablations as one result bundle (ABL-1..4)."""
    study = study or _default_study()
    return {
        "popcount": run_popcount(study),
        "knn_sqrt": run_knn_sqrt(study),
        "hdc_precompute": run_hdc_precompute(study),
        "sram_sweep": run_sram_sweep(),
    }


def report(result: dict | None = None) -> str:
    result = result or run()
    pc = result["popcount"]
    sq = result["knn_sqrt"]
    hp = result["hdc_precompute"]
    sw = result["sram_sweep"]

    sections = [
        format_table(
            ["variant", "cycles/meas"],
            [
                ["HDC, software popcount", f"{pc['software_cycles']:.1f}"],
                ["HDC, hardware cpop", f"{pc['hardware_cycles']:.1f}"],
                ["speedup", f"{pc['speedup']:.2f}x"],
            ],
            title="ABL-1: popcount hardware support (paper Section VI-C)",
        ),
        format_table(
            ["variant", "cycles/meas"],
            [
                ["kNN, radicand compare", f"{sq['radicand_cycles']:.1f}"],
                ["kNN, explicit sqrt", f"{sq['sqrt_cycles']:.1f}"],
                ["overhead", f"{sq['overhead']:.2f}x"],
            ],
            title="ABL-2: the Eq. 2 square-root shortcut",
        ),
        format_table(
            ["variant", "20 qubits", "400 qubits"],
            [
                ["HDC, Eq. 4 precomputed",
                 f"{hp['precomputed_cycles']:.1f}",
                 f"{hp['precomputed_cycles_400q']:.1f}"],
                ["HDC, naive two-XOR",
                 f"{hp['naive_cycles']:.1f}",
                 f"{hp['naive_cycles_400q']:.1f}"],
            ],
            title=(
                "ABL-3: Eq. 4 precomputation "
                f"(+{hp['footprint_overhead_bytes']} B footprint)"
            ),
        ),
    ]
    rows = []
    for t in sw["temperatures"]:
        rows.append(
            [f"{t:g} K"]
            + [f"{sw['grid'][(v, t)] * 1e3:.3f}" for v in sw["vdds"]]
        )
    sections.append(
        format_table(
            ["temperature"] + [f"Vdd={v:.2f} V (mW)" for v in sw["vdds"]],
            rows,
            title=(
                f"ABL-4: SRAM hold leakage, {sw['total_kib']:.0f} KiB "
                "inventory (paper Section VII power levers)"
            ),
        )
    )
    return "\n\n".join(sections)


def report_all(study=None) -> str:
    """Back-compat wrapper: run + report in one call."""
    return report(run(study))


# ---------------------------------------------------------------------- #
from repro.experiments.registry import experiment  # noqa: E402
from repro.provenance import FidelitySpec, metric  # noqa: E402

FIDELITY = FidelitySpec(metrics=(
    metric("sram_leak_300k_mw", 193.0,
           lambda r: r["sram_sweep"]["grid"][(0.7, 300.0)] * 1e3,
           rel=0.10, source="Fig. 6 (SRAM leak 193 mW at 300 K)"),
    metric("popcount_speedup_gt1", 1.0,
           lambda r: float(r["popcount"]["speedup"] > 1.0),
           abs=0.1,
           source="SVI-C ('hardware support would reduce ... "
                  "significantly')"),
    metric("sqrt_overhead_gt1", 1.0,
           lambda r: float(r["knn_sqrt"]["overhead"] > 1.0),
           abs=0.1, source="Eq. 2 (sqrt 'unnecessary and removed')"),
))


@experiment("ablations", "ABL-1..4 -- design-choice ablations",
            report=report, order=80, fidelity=FIDELITY)
def _experiment(study, config):
    return run(study)
