"""Cut-based technology mapping: AIG -> library cells.

The classic FPGA/ASIC mapping recipe at small scale:

1. enumerate k-feasible cuts (k = 4) per AND node, keeping the best few;
2. compute each cut's local truth table by simulating the cone;
3. match against a pattern index built from the library (every cell with
   <= 4 inputs, under all input permutations);
4. choose covers by dynamic programming on area, falling back to
   NAND2 + INV decomposition when no pattern matches;
5. realize the chosen cover as a :class:`~repro.synth.netlist.GateNetlist`.

This is the path "random" logic (instruction decoders, control FSMs)
takes through our flow; regular datapaths come from
:mod:`repro.synth.rtl` directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.synth.aig import AIG
from repro.synth.netlist import CONST0, CONST1, GateNetlist

__all__ = ["PatternLibrary", "technology_map"]

_MAX_CUT_INPUTS = 4
_CUTS_PER_NODE = 8


@dataclass(frozen=True)
class _Pattern:
    cell: str
    pin_order: tuple[str, ...]  # library pin for each cut leaf position
    area: float


class PatternLibrary:
    """Truth-table -> cheapest cell index for the mapper."""

    def __init__(self, library):
        self.library = library
        self.patterns: dict[tuple[int, int], _Pattern] = {}
        for cell in library.combinational():
            if cell.truth is None or not (1 <= len(cell.input_order) <= _MAX_CUT_INPUTS):
                continue
            n = len(cell.input_order)
            for perm in itertools.permutations(range(n)):
                truth = _permute_truth(cell.truth, perm, n)
                key = (n, truth)
                pins = tuple(cell.input_order[perm[i]] for i in range(n))
                old = self.patterns.get(key)
                if old is None or cell.area_um2 < old.area:
                    self.patterns[key] = _Pattern(
                        cell=cell.name, pin_order=pins, area=cell.area_um2
                    )

    def match(self, n_inputs: int, truth: int) -> _Pattern | None:
        return self.patterns.get((n_inputs, truth))


def _permute_truth(truth: int, perm: tuple[int, ...], n: int) -> int:
    """Truth table after permuting input variables.

    ``perm[i]`` = which original variable sits at position i after the
    permutation; bit k of a minterm index addresses position k.
    """
    out = 0
    for minterm in range(1 << n):
        orig = 0
        for pos in range(n):
            if (minterm >> pos) & 1:
                orig |= 1 << perm[pos]
        if (truth >> orig) & 1:
            out |= 1 << minterm
    return out


def _cut_truth(aig: AIG, root: int, leaves: tuple[int, ...]) -> int:
    """Local truth table of ``root`` over its cut ``leaves`` (node ids)."""
    n = len(leaves)
    truth = 0
    for pattern in range(1 << n):
        values = {leaf: bool((pattern >> i) & 1) for i, leaf in enumerate(leaves)}
        if _eval_cone(aig, root, values):
            truth |= 1 << pattern
    return truth


def _eval_cone(aig: AIG, node: int, leaf_values: dict[int, bool]) -> bool:
    memo = dict(leaf_values)
    memo[0] = False

    def value(nd: int) -> bool:
        if nd in memo:
            return memo[nd]
        f0, f1 = aig.fanins(nd)
        v0 = value(aig.node_of(f0)) ^ bool(aig.phase_of(f0))
        v1 = value(aig.node_of(f1)) ^ bool(aig.phase_of(f1))
        memo[nd] = v0 and v1
        return memo[nd]

    return value(node)


def _enumerate_cuts(aig: AIG) -> dict[int, list[tuple[int, ...]]]:
    """k-feasible cuts per AND node (always includes the trivial cut)."""
    cuts: dict[int, list[tuple[int, ...]]] = {}

    def node_cuts(node: int) -> list[tuple[int, ...]]:
        if not aig.is_and(node):
            return [(node,)]
        return cuts.get(node, [(node,)])

    for node in aig.topological_nodes():
        f0, f1 = aig.fanins(node)
        n0, n1 = aig.node_of(f0), aig.node_of(f1)
        merged: set[tuple[int, ...]] = {(node,)}
        for c0 in node_cuts(n0):
            for c1 in node_cuts(n1):
                union = tuple(sorted(set(c0) | set(c1)))
                if len(union) <= _MAX_CUT_INPUTS:
                    merged.add(union)
        ranked = sorted(merged, key=lambda c: (len(c), c))
        cuts[node] = ranked[:_CUTS_PER_NODE]
    return cuts


def technology_map(
    aig: AIG,
    library,
    netlist: GateNetlist | None = None,
    input_nets: dict[str, str] | None = None,
    module: str = "ctrl",
    prefix: str = "tm",
) -> tuple[GateNetlist, dict[str, str]]:
    """Map an AIG onto library cells.

    Parameters
    ----------
    aig:
        The subject graph with named PIs/POs.
    library:
        A characterized :class:`~repro.cells.library.CellLibrary`.
    netlist:
        Target netlist; a fresh one is created when omitted.  PIs are
        connected through ``input_nets`` (PI name -> existing net) or
        created as primary inputs.
    Returns
    -------
    (netlist, output_nets):
        The netlist plus a map from PO name to its net.
    """
    patterns = PatternLibrary(library)
    if netlist is None:
        netlist = GateNetlist("mapped")
    netlist.ensure_constants()
    input_nets = dict(input_nets or {})
    for name in aig.inputs:
        if name not in input_nets:
            input_nets[name] = netlist.add_input(name)

    cuts = _enumerate_cuts(aig)

    # DP over area: cost of realizing each node (positive phase).
    cost: dict[int, float] = {}
    choice: dict[int, tuple[tuple[int, ...], _Pattern | None]] = {}
    inv_area = library.by_footprint("INV")[0].area_um2
    nand_area = library.by_footprint("NAND2")[0].area_um2

    def leaf_cost(node: int) -> float:
        if not aig.is_and(node):
            return 0.0
        return cost[node]

    for node in aig.topological_nodes():
        best_cost = None
        best = None
        for cut in cuts[node]:
            if cut == (node,):
                continue
            truth = _cut_truth(aig, node, cut)
            pat = patterns.match(len(cut), truth)
            if pat is None:
                continue
            c = pat.area + sum(leaf_cost(leaf) for leaf in cut)
            if best_cost is None or c < best_cost:
                best_cost = c
                best = (cut, pat)
        if best is None:
            # Fallback: NAND2 + INV on the node's own fanins.
            f0, f1 = aig.fanins(node)
            c = (
                nand_area
                + inv_area
                + leaf_cost(aig.node_of(f0))
                + leaf_cost(aig.node_of(f1))
            )
            best_cost = c
            best = ((), None)
        cost[node] = best_cost
        choice[node] = best

    # Realization ----------------------------------------------------------
    net_of_node: dict[int, str] = {}
    inv_cache: dict[str, str] = {}
    counter = itertools.count()

    def inverter(net: str) -> str:
        if net == CONST0:
            return CONST1
        if net == CONST1:
            return CONST0
        if net not in inv_cache:
            inv_cache[net] = netlist.add_gate(
                "INV_X1",
                {"A": net},
                name=f"{prefix}_inv{next(counter)}",
                module=module,
            )
        return inv_cache[net]

    def node_net(node: int) -> str:
        if node == 0:
            return CONST0
        if not aig.is_and(node):
            name = next(k for k, v in aig.inputs.items() if v == node)
            return input_nets[name]
        if node in net_of_node:
            return net_of_node[node]
        cut, pat = choice[node]
        if pat is None:
            f0, f1 = aig.fanins(node)
            a = lit_net(f0)
            b = lit_net(f1)
            nand = netlist.add_gate(
                "NAND2_X1",
                {"A": a, "B": b},
                name=f"{prefix}_nd{next(counter)}",
                module=module,
            )
            out = inverter(nand)
        else:
            pins = {
                pin: node_net(leaf)
                for pin, leaf in zip(pat.pin_order, cut)
            }
            out = netlist.add_gate(
                pat.cell,
                pins,
                name=f"{prefix}_g{next(counter)}",
                module=module,
            )
        net_of_node[node] = out
        return out

    def lit_net(lit: int) -> str:
        net = node_net(aig.node_of(lit))
        return inverter(net) if aig.phase_of(lit) else net

    output_nets: dict[str, str] = {}
    for name, lit in aig.outputs.items():
        output_nets[name] = lit_net(lit)
    return netlist, output_nets
