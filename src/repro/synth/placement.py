"""Toy placement: enough physical awareness to price wires.

Commercial place-and-route gives every net a routed RC; our substitute
assigns cells to a levelized grid (topological depth = column, arrival
order = row) and prices each net by half-perimeter wire length (HPWL).
Columns follow data flow, so most nets span a few microns like a real
placement, while high-fanout nets pay proportionally -- the property STA
and dynamic power actually depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.netlist import GateNetlist

__all__ = ["Placement", "place"]

#: Wire capacitance per micron of HPWL (F/um), ASAP7-like lower metal.
WIRE_CAP_PER_UM = 0.18e-15

#: Row pitch in um (one standard-cell height).
ROW_PITCH_UM = 0.27

#: Column pitch in um.
COL_PITCH_UM = 0.75


@dataclass
class Placement:
    """Cell coordinates plus wire-load queries."""

    netlist: GateNetlist
    positions: dict[str, tuple[float, float]] = field(default_factory=dict)

    def net_hpwl_um(self, net: str) -> float:
        """Half-perimeter wire length of a net in um."""
        points = []
        driver = self.netlist.driver_of(net)
        if driver and driver in self.positions:
            points.append(self.positions[driver])
        for inst, _pin in self.netlist.loads_of(net):
            if inst in self.positions:
                points.append(self.positions[inst])
        if len(points) < 2:
            return 0.0
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def net_wire_cap(self, net: str) -> float:
        """Estimated routed capacitance of a net in F."""
        return self.net_hpwl_um(net) * WIRE_CAP_PER_UM

    def total_wirelength_um(self) -> float:
        return sum(self.net_hpwl_um(n) for n in self.netlist.all_nets())

    @property
    def bounding_box_um(self) -> tuple[float, float]:
        if not self.positions:
            return (0.0, 0.0)
        xs = [p[0] for p in self.positions.values()]
        ys = [p[1] for p in self.positions.values()]
        return (max(xs), max(ys))


def place(netlist: GateNetlist, library) -> Placement:
    """Levelized placement of all gates and macros."""
    placement = Placement(netlist=netlist)

    # Topological depth per gate (sequential cells sit at depth 0).
    depth: dict[str, int] = {}
    seq = {g.name for g in netlist.sequential_gates(library)}
    for g in netlist.sequential_gates(library):
        depth[g.name] = 0
    for gate in netlist.topological_gates(library):
        d = 0
        for net in gate.input_nets():
            drv = netlist.driver_of(net)
            if drv and drv in depth and drv not in seq:
                d = max(d, depth[drv] + 1)
            elif drv and drv in seq:
                d = max(d, 1)
        depth[gate.name] = d

    # Rows per column sized so the die is roughly square.
    columns: dict[int, int] = {}
    for name in sorted(depth):
        col = depth[name]
        row = columns.get(col, 0)
        columns[col] = row + 1
        placement.positions[name] = (col * COL_PITCH_UM, row * ROW_PITCH_UM)

    # Macros park beyond the last column.
    last_col = (max(columns) + 2) if columns else 0
    for i, name in enumerate(sorted(netlist.macros)):
        placement.positions[name] = (
            last_col * COL_PITCH_UM,
            i * 20.0 * ROW_PITCH_UM,
        )
    return placement
