"""And-Inverter Graph with structural hashing.

The generic-logic front end of the synthesis flow: boolean expressions are
compiled into two-input AND nodes with complemented edges, structurally
hashed (identical subgraphs share one node) and constant-folded.  The
technology mapper (:mod:`repro.synth.techmap`) covers the AIG with
library cells.

Literal encoding: literal = 2*node + phase; node 0 is constant FALSE, so
literal 0 = const0 and literal 1 = const1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic import Expr

__all__ = ["AIG"]


@dataclass(frozen=True)
class _Node:
    fanin0: int  # literal
    fanin1: int  # literal


class AIG:
    """A structurally-hashed and-inverter graph."""

    def __init__(self) -> None:
        self._nodes: list[_Node | None] = [None]  # node 0 = const FALSE
        self._strash: dict[tuple[int, int], int] = {}
        self._pis: dict[str, int] = {}  # name -> node id
        self._pos: dict[str, int] = {}  # name -> literal

    # ------------------------------------------------------------------ #
    @property
    def const0(self) -> int:
        return 0

    @property
    def const1(self) -> int:
        return 1

    @staticmethod
    def negate(lit: int) -> int:
        return lit ^ 1

    @staticmethod
    def node_of(lit: int) -> int:
        return lit >> 1

    @staticmethod
    def phase_of(lit: int) -> int:
        return lit & 1

    def is_pi(self, node: int) -> bool:
        return node in self._pi_nodes()

    def _pi_nodes(self) -> set[int]:
        return set(self._pis.values())

    # ------------------------------------------------------------------ #
    def pi(self, name: str) -> int:
        """Add (or fetch) a primary input; returns its positive literal."""
        if name in self._pis:
            return 2 * self._pis[name]
        self._nodes.append(None)
        node = len(self._nodes) - 1
        self._pis[name] = node
        return 2 * node

    def po(self, name: str, lit: int) -> None:
        """Mark a literal as a named primary output."""
        self._pos[name] = lit

    @property
    def inputs(self) -> dict[str, int]:
        return dict(self._pis)

    @property
    def outputs(self) -> dict[str, int]:
        return dict(self._pos)

    @property
    def n_nodes(self) -> int:
        """AND-node count (excludes constants and PIs)."""
        return sum(
            1
            for i, n in enumerate(self._nodes)
            if n is not None
        )

    def fanins(self, node: int) -> tuple[int, int]:
        n = self._nodes[node]
        if n is None:
            raise ValueError(f"node {node} is a PI or constant")
        return n.fanin0, n.fanin1

    def is_and(self, node: int) -> bool:
        return 0 <= node < len(self._nodes) and self._nodes[node] is not None

    # ------------------------------------------------------------------ #
    def and_(self, a: int, b: int) -> int:
        """AND of two literals with folding and structural hashing."""
        if a > b:
            a, b = b, a
        # Constant folding and trivial cases.
        if a == self.const0:
            return self.const0
        if a == self.const1:
            return b
        if a == b:
            return a
        if a == self.negate(b):
            return self.const0
        key = (a, b)
        if key in self._strash:
            return 2 * self._strash[key]
        self._nodes.append(_Node(a, b))
        node = len(self._nodes) - 1
        self._strash[key] = node
        return 2 * node

    def or_(self, a: int, b: int) -> int:
        return self.negate(self.and_(self.negate(a), self.negate(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(
            self.and_(a, self.negate(b)), self.and_(self.negate(a), b)
        )

    def mux_(self, sel: int, a: int, b: int) -> int:
        """sel ? b : a."""
        return self.or_(
            self.and_(self.negate(sel), a), self.and_(sel, b)
        )

    # ------------------------------------------------------------------ #
    def add_expr(self, expr: Expr) -> int:
        """Compile a boolean expression; returns its literal."""
        if expr.op == "var":
            return self.pi(str(expr.name))
        if expr.op == "const":
            return self.const1 if expr.name else self.const0
        lits = [self.add_expr(a) for a in expr.args]
        if expr.op == "not":
            return self.negate(lits[0])
        acc = lits[0]
        for nxt in lits[1:]:
            if expr.op == "and":
                acc = self.and_(acc, nxt)
            elif expr.op == "or":
                acc = self.or_(acc, nxt)
            elif expr.op == "xor":
                acc = self.xor_(acc, nxt)
            else:
                raise ValueError(f"unknown op {expr.op!r}")
        return acc

    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """Evaluate all outputs under a PI assignment."""
        values: dict[int, bool] = {0: False}
        for name, node in self._pis.items():
            values[node] = bool(assignment[name])

        def node_value(node: int) -> bool:
            if node in values:
                return values[node]
            f0, f1 = self.fanins(node)
            v = self.lit_value_cached(f0, values, node_value) and \
                self.lit_value_cached(f1, values, node_value)
            values[node] = v
            return v

        out = {}
        for name, lit in self._pos.items():
            v = node_value(self.node_of(lit))
            out[name] = (not v) if self.phase_of(lit) else v
        return out

    def lit_value_cached(self, lit, values, node_value) -> bool:
        v = node_value(self.node_of(lit))
        return (not v) if self.phase_of(lit) else v

    def topological_nodes(self) -> list[int]:
        """All AND nodes in dependency order (fanins first)."""
        order: list[int] = []
        seen: set[int] = set()

        def visit(node: int) -> None:
            if node in seen or not self.is_and(node):
                return
            seen.add(node)
            f0, f1 = self.fanins(node)
            visit(self.node_of(f0))
            visit(self.node_of(f1))
            order.append(node)

        for lit in self._pos.values():
            visit(self.node_of(lit))
        return order

    def levels(self) -> dict[int, int]:
        """Logic depth per node (PIs/constants at level 0)."""
        level: dict[int, int] = {0: 0}
        for node in self._pi_nodes():
            level[node] = 0
        for node in self.topological_nodes():
            f0, f1 = self.fanins(node)
            level[node] = 1 + max(
                level.get(self.node_of(f0), 0),
                level.get(self.node_of(f1), 0),
            )
        return level
