"""Post-mapping netlist optimizations: sizing and cleanup.

Two passes the commercial flow would run after mapping:

* :func:`upsize_for_load` -- gain-based drive selection: each gate is
  replaced by the weakest drive variant of its footprint whose input
  capacitance is at least ``1/max_gain`` of the load it drives.  This is
  the classic logical-effort sizing rule and is what keeps high-fanout
  nets (register enables, bypass selects) from wrecking the critical path.
* :func:`sweep_dangling` -- remove gates whose outputs drive nothing
  (iteratively, so whole dead cones disappear).
"""

from __future__ import annotations

from repro.synth.netlist import GateNetlist

__all__ = ["upsize_for_load", "sweep_dangling", "net_load",
           "buffer_high_fanout"]


def buffer_high_fanout(
    netlist: GateNetlist,
    library,
    max_fanout: int = 16,
    buffer_cell: str = "BUF_X4",
) -> int:
    """Insert buffer trees on nets whose fanout exceeds ``max_fanout``.

    The standard high-fanout-net synthesis transform (register selects,
    enables): sink pins are split into groups of ``max_fanout``, each fed
    by a buffer; the pass repeats until every net (including the new
    buffer nets) is within bounds.  The clock and constant nets are left
    alone (ideal clock tree; ties have no drive problem).  Returns the
    number of buffers inserted.
    """
    skip = {netlist.clock, "const0", "const1"}
    inserted = 0
    work = [n for n in netlist.all_nets() if n not in skip]
    while work:
        net = work.pop()
        loads = netlist.loads_of(net)
        if len(loads) <= max_fanout:
            continue
        groups = [
            loads[i : i + max_fanout] for i in range(0, len(loads), max_fanout)
        ]
        new_loads: list[tuple[str, str]] = []
        for group in groups:
            buf_out = netlist.add_gate(
                buffer_cell,
                {"A": net},
                output=netlist.new_net("hfbuf"),
                module="buftree",
            )
            buf_name = netlist.driver_of(buf_out)
            inserted += 1
            for inst, pin in group:
                if inst in netlist.gates:
                    netlist.gates[inst].pins[pin] = buf_out
                elif inst in netlist.macros:
                    macro = netlist.macros[inst]
                    macro.inputs = [
                        buf_out if n == net else n for n in macro.inputs
                    ]
                netlist._loads.setdefault(buf_out, []).append((inst, pin))
            new_loads.append((buf_name, "A"))
            work.append(buf_out)
        netlist._loads[net] = new_loads
        work.append(net)
    return inserted


def net_load(netlist: GateNetlist, net: str, library, wire_cap: float = 0.0) -> float:
    """Total capacitive load on a net in F (pins + optional wire)."""
    total = wire_cap
    for inst, pin in netlist.loads_of(net):
        if inst in netlist.gates:
            gate = netlist.gates[inst]
            total += library[gate.cell].pin_capacitance(pin)
        else:
            total += 1.0e-15  # macro input pin: ~1 fF
    return total


def upsize_for_load(
    netlist: GateNetlist,
    library,
    max_gain: float = 6.0,
    wire_cap_per_fanout: float = 0.15e-15,
) -> int:
    """Select drive strengths by bounded gain; returns gates changed.

    Gain = load / input-cap.  For every gate we walk its footprint's drive
    variants (weakest first) and keep the first whose gain is within
    ``max_gain``; the strongest variant is used when none qualifies.
    """
    changed = 0
    for gate in netlist.gates.values():
        cell = library[gate.cell]
        load = net_load(
            netlist,
            gate.output,
            library,
            wire_cap=wire_cap_per_fanout * netlist.fanout(gate.output),
        )
        variants = library.by_footprint(cell.footprint)
        if len(variants) <= 1:
            continue
        best = variants[-1]
        for variant in variants:
            cin = variant.inputs[0].capacitance if variant.inputs else 0.0
            if cin <= 0:
                continue
            if load / cin <= max_gain:
                best = variant
                break
        if best.name != gate.cell:
            gate.cell = best.name
            changed += 1
    return changed


def sweep_dangling(netlist: GateNetlist, protect: set[str] | None = None) -> int:
    """Remove gates whose output net has no loads; returns gates removed.

    ``protect`` lists nets that must stay (primary outputs are always
    protected).
    """
    keep = set(netlist.outputs) | (protect or set())
    removed = 0
    while True:
        dead = [
            name
            for name, gate in netlist.gates.items()
            if gate.output not in keep and netlist.fanout(gate.output) == 0
        ]
        if not dead:
            return removed
        for name in dead:
            gate = netlist.gates.pop(name)
            del netlist._drivers[gate.output]
            for pin, net in gate.pins.items():
                loads = netlist._loads.get(net, [])
                netlist._loads[net] = [
                    (i, p) for (i, p) in loads if i != name
                ]
            removed += 1
