"""Gate-level netlist IR: what synthesis produces and STA/power consume.

A :class:`GateNetlist` is a directed graph of cell instances connected by
named nets.  Cell semantics (function, timing, power) live in the
characterized library; the netlist only records structure:

* ``Gate`` -- one instance: library cell name, pin->net map, output net,
  plus a ``module`` tag used by the activity-based power model;
* ``Macro`` -- a hard block (SRAM array) with fixed port timing, matching
  how the paper consumes ASAP7 SRAM IP ("only include the physical size
  and timing but not their power", which we add from the SRAM model);
* sequential cells (library ``is_sequential``) break combinational cycles:
  their D/CK pins are timing endpoints and Q pins are start points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import NetlistError

__all__ = ["Gate", "Macro", "GateNetlist", "CONST0", "CONST1"]

CONST0 = "const0"
"""Reserved net name tied low (driver ``@const``)."""

CONST1 = "const1"
"""Reserved net name tied high (driver ``@const``)."""


@dataclass
class Gate:
    """One placed cell instance."""

    name: str
    cell: str
    pins: dict[str, str]
    output: str
    module: str = "core"

    def input_nets(self) -> list[str]:
        return list(self.pins.values())


@dataclass
class Macro:
    """A hard macro (SRAM array): fixed timing, ports, size.

    ``clk_to_out`` is the access delay from clock edge to data-out;
    ``input_setup`` the setup requirement on address/data-in pins.  Both
    are in seconds and are *scaled by the library corner* when the STA
    runs (transistors inside the macro slow down like everything else).
    """

    name: str
    kind: str
    inputs: list[str]
    outputs: list[str]
    clk_to_out: float
    input_setup: float
    bits: int
    module: str = "sram"


class GateNetlist:
    """A flat mapped netlist with named nets."""

    def __init__(self, name: str):
        self.name = name
        self.gates: dict[str, Gate] = {}
        self.macros: dict[str, Macro] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.clock: str | None = None
        self._drivers: dict[str, str] = {}
        self._loads: dict[str, list[tuple[str, str]]] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def new_net(self, hint: str = "n") -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    def ensure_constants(self) -> None:
        """Register the tie-low/tie-high nets (idempotent)."""
        self._drivers.setdefault(CONST0, "@const")
        self._drivers.setdefault(CONST1, "@const")

    def add_input(self, net: str) -> str:
        if net in self._drivers:
            raise NetlistError(f"net {net!r} already driven",
                                   element=net)
        self.inputs.append(net)
        self._drivers[net] = "@input"
        return net

    def add_output(self, net: str) -> None:
        self.outputs.append(net)

    def set_clock(self, net: str) -> None:
        self.clock = net

    def add_gate(
        self,
        cell: str,
        pins: dict[str, str],
        output: str | None = None,
        name: str | None = None,
        module: str = "core",
    ) -> str:
        """Instantiate a cell; returns its output net."""
        output = output or self.new_net(cell.split("_")[0].lower())
        name = name or f"g{len(self.gates)}"
        if name in self.gates or name in self.macros:
            raise NetlistError(f"duplicate instance name {name!r}",
                               element=name)
        if output in self._drivers:
            raise NetlistError(f"net {output!r} already driven",
                               element=output)
        gate = Gate(name=name, cell=cell, pins=dict(pins), output=output,
                    module=module)
        self.gates[name] = gate
        self._drivers[output] = name
        for pin, net in pins.items():
            self._loads.setdefault(net, []).append((name, pin))
        return output

    def add_macro(self, macro: Macro) -> None:
        if macro.name in self.macros or macro.name in self.gates:
            raise NetlistError(f"duplicate instance name {macro.name!r}",
                               element=macro.name)
        self.macros[macro.name] = macro
        for net in macro.outputs:
            if net in self._drivers:
                raise NetlistError(f"net {net!r} already driven",
                                   element=net)
            self._drivers[net] = macro.name
        for net in macro.inputs:
            self._loads.setdefault(net, []).append((macro.name, "@macro_in"))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def driver_of(self, net: str) -> str | None:
        """Instance name driving a net ('@input' for primary inputs)."""
        return self._drivers.get(net)

    def loads_of(self, net: str) -> list[tuple[str, str]]:
        """(instance, pin) pairs loading a net."""
        return self._loads.get(net, [])

    def fanout(self, net: str) -> int:
        return len(self.loads_of(net))

    def all_nets(self) -> list[str]:
        nets = set(self._drivers) | set(self._loads)
        return sorted(nets)

    def undriven_nets(self) -> list[str]:
        """Nets consumed but never driven -- a connectivity lint."""
        return sorted(set(self._loads) - set(self._drivers))

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def count_by_cell(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for g in self.gates.values():
            out[g.cell] = out.get(g.cell, 0) + 1
        return dict(sorted(out.items()))

    def count_by_module(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for g in self.gates.values():
            out[g.module] = out.get(g.module, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------ #
    # Topological traversal
    # ------------------------------------------------------------------ #
    def topological_gates(self, library) -> list[Gate]:
        """Combinational gates in dependency order.

        Sequential cells and macros are cut points: their outputs count as
        primary starts, their inputs as ends.  Raises on combinational
        loops.
        """
        seq_gates = {
            name
            for name, g in self.gates.items()
            if g.cell in library and library[g.cell].is_sequential
        }
        comb = [g for name, g in self.gates.items() if name not in seq_gates]
        # in-degree over combinational dependencies only
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for g in comb:
            count = 0
            for net in g.input_nets():
                drv = self._drivers.get(net)
                if drv and drv in self.gates and drv not in seq_gates:
                    count += 1
                    dependents.setdefault(drv, []).append(g.name)
            indeg[g.name] = count
        ready = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: list[Gate] = []
        while ready:
            name = ready.popleft()
            order.append(self.gates[name])
            for dep in dependents.get(name, []):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(comb):
            stuck = [n for n, d in indeg.items() if d > 0][:5]
            raise NetlistError(
                f"combinational loop detected involving {stuck} ...",
                element=stuck[0] if stuck else "")
        return order

    def sequential_gates(self, library) -> list[Gate]:
        """All flip-flop/latch instances."""
        return [
            g
            for g in self.gates.values()
            if g.cell in library and library[g.cell].is_sequential
        ]

    # ------------------------------------------------------------------ #
    def area_um2(self, library) -> float:
        """Total cell area (macros excluded)."""
        return sum(library[g.cell].area_um2 for g in self.gates.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GateNetlist({self.name!r}, {len(self.gates)} gates, "
            f"{len(self.macros)} macros, {len(self.all_nets())} nets)"
        )
