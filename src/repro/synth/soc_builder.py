"""Gate-level structural model of the Rocket-class RISC-V SoC.

The paper's SoC: "a single five-stage in-order Rocket CPU ... combined with
a split L1 cache for data and instructions, each with 16 [KiB] and a shared
L2 cache of 512 [KiB]" (Section V-A).  This module builds the
timing/power-relevant structure of that system as a mapped netlist:

* 64-bit integer datapath: register file (31 x 64 flops, 2 read ports),
  forwarding muxes, ALU (adder, logic unit, barrel shifter, SLT),
  branch compare, PC incrementer and branch-target adder;
* pipeline registers for the five stages;
* an iterative multiplier datapath (RV64M);
* instruction decode mapped from boolean equations through the AIG
  technology mapper (the "random logic" path of the flow);
* L1I/L1D/L2 SRAM arrays as hard macros (ASAP7-style IP: size and timing
  only -- power is added separately by :mod:`repro.power.sram`, exactly
  like the paper adds power to the ASAP7 SRAM IP), plus gate-level tag
  compare and hit/way muxing;
* every gate tagged with a ``module`` for activity-based power analysis.

The cache geometry is chosen so total on-chip SRAM (data + tags) lands at
the paper's "581 [KiB] total on-chip SRAM".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic import AND, NOT, OR, VAR, XOR
from repro.synth.aig import AIG
from repro.synth.netlist import GateNetlist, Macro
from repro.synth.rtl import RTLBuilder, Word
from repro.synth.techmap import technology_map

__all__ = ["SoCConfig", "SoCModel", "build_soc"]

XLEN = 64


@dataclass(frozen=True, kw_only=True)
class SoCConfig:
    """Rocket-class configuration (defaults = the paper's system)."""

    xlen: int = XLEN
    l1i_kib: int = 16
    l1d_kib: int = 16
    l2_kib: int = 512
    line_bytes: int = 64
    adder: str = "carry_select"  # or "ripple"
    adder_block: int = 16
    # SRAM macro timing at the 300 K baseline (s); scaled per corner.
    sram_clk_to_out: float = 420e-12
    sram_input_setup: float = 60e-12

    def __post_init__(self) -> None:
        from repro.errors import ConfigError

        for name in ("l1i_kib", "l1d_kib", "l2_kib", "line_bytes"):
            value = getattr(self, name)
            if value <= 0 or (value & (value - 1)):
                raise ConfigError(
                    f"{name} must be a positive power of two "
                    f"(got {value!r})", field=name)
        if self.adder not in ("carry_select", "ripple"):
            raise ConfigError(f"unknown adder {self.adder!r}", field="adder")

    def tag_bits(self, size_kib: int) -> int:
        import math

        lines = size_kib * 1024 // self.line_bytes
        index_bits = int(math.log2(lines))
        offset_bits = int(math.log2(self.line_bytes))
        # 48-bit physical address space (Sv39-ish), plus valid + dirty.
        return 48 - index_bits - offset_bits + 2

    def tag_array_kib(self, size_kib: int) -> float:
        lines = size_kib * 1024 // self.line_bytes
        return lines * self.tag_bits(size_kib) / 8.0 / 1024.0

    @property
    def total_sram_kib(self) -> float:
        """Data + tag storage, the paper's '581 KiB total on-chip SRAM'."""
        data = self.l1i_kib + self.l1d_kib + self.l2_kib
        tags = (
            self.tag_array_kib(self.l1i_kib)
            + self.tag_array_kib(self.l1d_kib)
            + self.tag_array_kib(self.l2_kib)
        )
        return data + tags

    # -- provenance / cache identity ---------------------------------- #
    def to_dict(self) -> dict:
        """Plain-data view; round-trips through :meth:`from_dict`."""
        from repro.runtime.digest import config_to_dict

        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SoCConfig":
        from repro.runtime.digest import config_from_dict

        return config_from_dict(cls, data)

    def config_digest(self) -> str:
        """Stable content hash: the cache key / provenance stamp."""
        from repro.runtime.digest import stable_digest

        return stable_digest(self)


@dataclass
class SoCModel:
    """The built netlist plus bookkeeping the rest of the flow needs."""

    netlist: GateNetlist
    config: SoCConfig
    module_gate_counts: dict[str, int] = field(default_factory=dict)

    @property
    def gate_count(self) -> int:
        return self.netlist.gate_count

    @property
    def flop_count(self) -> int:
        return sum(
            1 for g in self.netlist.gates.values() if g.cell.startswith("DFF")
        )


def _decode_equations() -> dict[str, object]:
    """RV64 main-decoder equations over opcode/funct bits.

    Variables: op0..op6 (opcode), f3_0..f3_2 (funct3), f7_5 (funct7[5]).
    Outputs: the control signals an in-order pipeline needs.
    """
    op = [VAR(f"op{i}") for i in range(7)]
    f3 = [VAR(f"f3_{i}") for i in range(3)]
    f7_5 = VAR("f7_5")

    def opcode_is(bits: str):
        # bits given MSB first (bit 6 .. bit 0)
        terms = []
        for i, ch in enumerate(reversed(bits)):
            terms.append(op[i] if ch == "1" else NOT(op[i]))
        return AND(*terms)

    load = opcode_is("0000011")
    store = opcode_is("0100011")
    op_imm = opcode_is("0010011")
    op_reg = opcode_is("0110011")
    branch = opcode_is("1100011")
    jal = opcode_is("1101111")
    jalr = opcode_is("1100111")
    lui = opcode_is("0110111")
    auipc = opcode_is("0010111")
    op_imm32 = opcode_is("0011011")
    op_32 = opcode_is("0111011")

    return {
        "ctl_mem_read": load,
        "ctl_mem_write": store,
        "ctl_reg_write": OR(load, op_imm, op_reg, jal, jalr, lui, auipc,
                            op_imm32, op_32),
        "ctl_branch": branch,
        "ctl_jump": OR(jal, jalr),
        "ctl_alu_src_imm": OR(load, store, op_imm, jalr, lui, auipc,
                              op_imm32),
        "ctl_alu_sub": OR(AND(OR(op_reg, op_32), f7_5), branch),
        "ctl_alu_logic": AND(OR(op_imm, op_reg),
                             OR(f3[2], AND(f3[1], f3[0]))),
        "ctl_alu_shift": AND(OR(op_imm, op_reg, op_imm32, op_32),
                             AND(NOT(f3[2]), f3[0])),
        "ctl_alu_slt": AND(OR(op_imm, op_reg),
                           AND(NOT(f3[2]), XOR(f3[1], f3[0]))),
        "ctl_mul": AND(OR(op_reg, op_32), f7_5, NOT(f3[2])),
        "ctl_word_op": OR(op_imm32, op_32),
    }


def build_soc(library, config: SoCConfig | None = None) -> SoCModel:
    """Elaborate the full SoC netlist against a library's cell names.

    The library is only used for cell-name/footprint validity and the
    decode technology mapping; timing/power come later from whichever
    corner library the analyses run with.
    """
    config = config or SoCConfig()
    xlen = config.xlen
    nl = GateNetlist("rocket_soc")
    nl.ensure_constants()
    clk = nl.add_input("clk")
    nl.set_clock(clk)

    # ------------------------------------------------------------------ #
    # Instruction fetch: PC register, PC+4, branch-target adder.
    # ------------------------------------------------------------------ #
    ifu = RTLBuilder(nl, module="ifu")
    branch_taken = nl.add_input("branch_taken")
    pc_q = [nl.new_net(f"pc{i}") for i in range(xlen)]
    pc_plus4 = ifu.incrementer(pc_q, step_bit=2)
    imm_b = ifu.word_input("imm_b", xlen)
    if config.adder == "ripple":
        btarget, _ = ifu.ripple_adder(pc_q, imm_b, "const0")
    else:
        btarget, _ = ifu.carry_select_adder(
            pc_q, imm_b, "const0", block=config.adder_block
        )
    pc_next = ifu.mux_w(pc_plus4, btarget, branch_taken)
    # Close the PC loop: flop outputs are buffered onto the pre-named
    # pc_q feedback nets (keeps construction single-pass and the netlist
    # a DAG at the gate level, with the flops as cut points).
    for i in range(xlen):
        q = ifu.dff(pc_next[i], clk, f"pcff{i}")
        nl.add_gate("BUF_X1", {"A": q}, output=pc_q[i], module="ifu")

    # ------------------------------------------------------------------ #
    # Decode: instruction register + control signals through the techmap.
    # ------------------------------------------------------------------ #
    dec = RTLBuilder(nl, module="decode")
    instr = dec.word_input("instr", 32)
    if_id = dec.register(instr, clk, "ifid")

    aig = AIG()
    for name, expr in _decode_equations().items():
        aig.po(name, aig.add_expr(expr))
    decode_inputs = {
        **{f"op{i}": if_id[i] for i in range(7)},
        **{f"f3_{i}": if_id[12 + i] for i in range(3)},
        "f7_5": if_id[30],
    }
    _, ctl = technology_map(
        aig, library, netlist=nl, input_nets=decode_inputs,
        module="decode", prefix="dec",
    )

    # ------------------------------------------------------------------ #
    # Register file: 31 x 64 flops, write port, two read ports.
    # ------------------------------------------------------------------ #
    rf = RTLBuilder(nl, module="regfile")
    rs1 = if_id[15:20]
    rs2 = if_id[20:25]
    wb_addr = rf.word_input("wb_addr", 5)
    wb_data = rf.word_input("wb_data", xlen)
    wb_en = nl.add_input("wb_en")

    wdec = rf.decoder(wb_addr)  # 32 one-hot lines (x0 unused)
    reg_q: list[Word] = [["const0"] * xlen]  # x0 reads as zero
    for r in range(1, 32):
        we = rf.and2(wdec[r], wb_en)
        q_word: Word = []
        for i in range(xlen):
            q = nl.new_net(f"x{r}_{i}")
            d = rf.mux2(q, wb_data[i], we)
            out = rf.dff(d, clk, f"rf{r}_{i}")
            # Alias flop output onto the feedback net via buffer.
            nl.add_gate("BUF_X1", {"A": out}, output=q, module="regfile")
            q_word.append(q)
        reg_q.append(q_word)

    rdata1 = rf.mux_tree(reg_q, rs1)
    rdata2 = rf.mux_tree(reg_q, rs2)

    # ------------------------------------------------------------------ #
    # Execute: forwarding, ALU, branch resolve.
    # ------------------------------------------------------------------ #
    ex = RTLBuilder(nl, module="alu")
    id_ex_a = ex.register(rdata1, clk, "idexa")
    id_ex_b = ex.register(rdata2, clk, "idexb")
    imm_i = ex.word_input("imm_i", xlen)

    fwd_a_sel = nl.add_input("fwd_a")
    fwd_b_sel = nl.add_input("fwd_b")
    mem_fwd = ex.word_input("mem_fwd", xlen)
    op_a = ex.mux_w(id_ex_a, mem_fwd, fwd_a_sel)
    op_b0 = ex.mux_w(id_ex_b, mem_fwd, fwd_b_sel)
    op_b = ex.mux_w(op_b0, imm_i, ctl["ctl_alu_src_imm"])

    # Adder with subtract support.
    b_inv = ex.xor_w(op_b, [ctl["ctl_alu_sub"]] * xlen)
    if config.adder == "ripple":
        add_out, cout = ex.ripple_adder(op_a, b_inv, ctl["ctl_alu_sub"])
    else:
        add_out, cout = ex.carry_select_adder(
            op_a, b_inv, ctl["ctl_alu_sub"], block=config.adder_block
        )

    and_out = ex.and_w(op_a, op_b)
    or_out = ex.or_w(op_a, op_b)
    xor_out = ex.xor_w(op_a, op_b)
    logic_out = ex.mux_w(
        ex.mux_w(and_out, or_out, ctl["ctl_alu_shift"]),
        xor_out,
        ctl["ctl_alu_slt"],
    )

    shamt = op_b[:6]
    shift_out = ex.barrel_shifter(op_a, shamt, right=True)

    slt_bit = ex.xor2(add_out[-1], cout)  # signed less-than (approx.)
    slt_out = [slt_bit] + ["const0"] * (xlen - 1)

    alu_mid = ex.mux_w(add_out, logic_out, ctl["ctl_alu_logic"])
    alu_mid2 = ex.mux_w(alu_mid, shift_out, ctl["ctl_alu_shift"])
    alu_out = ex.mux_w(alu_mid2, slt_out, ctl["ctl_alu_slt"])

    is_eq = ex.equal(op_a, op_b0)
    br_take = ex.and2(ctl["ctl_branch"], is_eq)
    nl.add_output(br_take)

    ex_mem = ex.register(alu_out, clk, "exmem")

    # ------------------------------------------------------------------ #
    # Iterative multiplier datapath (RV64M).
    # ------------------------------------------------------------------ #
    mul = RTLBuilder(nl, module="mul")
    mul_acc_q = [nl.new_net(f"macc{i}") for i in range(xlen)]
    if config.adder == "ripple":
        mul_add, _ = mul.ripple_adder(mul_acc_q, op_a, "const0")
    else:
        mul_add, _ = mul.carry_select_adder(
            mul_acc_q, op_a, "const0", block=config.adder_block
        )
    mul_next = mul.mux_w(mul_acc_q, mul_add, op_b[0])
    for i in range(xlen):
        q = mul.dff(mul_next[i], clk, f"mulff{i}")
        nl.add_gate("BUF_X1", {"A": q}, output=mul_acc_q[i], module="mul")

    # ------------------------------------------------------------------ #
    # L1D access path: macros + tag compare + hit mux + aligner.
    # ------------------------------------------------------------------ #
    mem = RTLBuilder(nl, module="l1d")
    tag_bits = config.tag_bits(config.l1d_kib)

    l1d_data = Macro(
        name="l1d_data",
        kind="sram_data",
        inputs=[nl.new_net("l1d_a") for _ in range(14)],
        outputs=[nl.new_net("l1d_do") for _ in range(xlen)],
        clk_to_out=config.sram_clk_to_out,
        input_setup=config.sram_input_setup,
        bits=config.l1d_kib * 1024 * 8,
        module="l1d",
    )
    l1d_tags = Macro(
        name="l1d_tags",
        kind="sram_tag",
        inputs=[nl.new_net("l1dt_a") for _ in range(8)],
        outputs=[nl.new_net("l1dt_do") for _ in range(tag_bits)],
        clk_to_out=config.sram_clk_to_out * 0.7,
        input_setup=config.sram_input_setup,
        bits=int(config.tag_array_kib(config.l1d_kib) * 1024 * 8),
        module="l1d",
    )
    nl.add_macro(l1d_data)
    nl.add_macro(l1d_tags)
    # Address pins driven by the ALU result (AGU output).
    for k, net in enumerate(l1d_data.inputs):
        nl.add_gate("BUF_X2", {"A": ex_mem[k % xlen]}, output=net,
                    module="l1d")
    for k, net in enumerate(l1d_tags.inputs):
        nl.add_gate("BUF_X2", {"A": ex_mem[(k + 6) % xlen]}, output=net,
                    module="l1d")

    # Tag compare against the physical tag (from the EX/MEM address).
    ptag = ex_mem[-(tag_bits - 2):]
    hit = mem.equal(list(l1d_tags.outputs[: tag_bits - 2]), list(ptag))
    load_aligned = mem.barrel_shifter(
        list(l1d_data.outputs), ex_mem[:3], right=True
    )
    load_data = mem.mux_w(ex_mem, load_aligned, hit)
    mem_wb = mem.register(load_data, clk, "memwb")

    # Writeback result visible at the boundary.
    wb = RTLBuilder(nl, module="wb")
    final_wb = wb.mux_w(mem_wb, ex_mem, ctl["ctl_mem_read"])
    for net in final_wb:
        nl.add_output(net)

    # L1I and L2 arrays: power-relevant macros (timing on the I-side and
    # the L2 is pipelined over multiple cycles and never the critical
    # single-cycle path in this design).
    nl.add_macro(
        Macro(
            name="l1i_data",
            kind="sram_data",
            inputs=[nl.new_net("l1i_a") for _ in range(8)],
            outputs=[nl.new_net("l1i_do") for _ in range(32)],
            clk_to_out=config.sram_clk_to_out,
            input_setup=config.sram_input_setup,
            bits=config.l1i_kib * 1024 * 8,
            module="l1i",
        )
    )
    for k, net in enumerate(nl.macros["l1i_data"].inputs):
        nl.add_gate("BUF_X2", {"A": pc_plus4[k + 2]}, output=net,
                    module="l1i")
    # The L2 macro absorbs all remaining storage (L2 data, L2 tags, L1I
    # tags) so the macro inventory totals config.total_sram_kib -- the
    # paper's 581 KiB of on-chip SRAM.
    accounted_kib = (
        config.l1d_kib
        + config.tag_array_kib(config.l1d_kib)
        + config.l1i_kib
    )
    nl.add_macro(
        Macro(
            name="l2_data",
            kind="sram_data",
            inputs=[],
            outputs=[],
            clk_to_out=config.sram_clk_to_out * 2.2,
            input_setup=config.sram_input_setup,
            bits=int((config.total_sram_kib - accounted_kib) * 1024 * 8),
            module="l2",
        )
    )

    model = SoCModel(netlist=nl, config=config)
    model.module_gate_counts = nl.count_by_module()
    return model
