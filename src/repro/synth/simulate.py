"""Gate-level simulation of mapped netlists.

Two uses:

* functional verification of generated netlists against reference models
  (tests);
* cycle-by-cycle switching-activity extraction for the power flow, the
  equivalent of the paper's gate-level simulation feeding Cadence Voltus
  ("actual switching activity numbers are extracted from these
  simulations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.netlist import CONST0, CONST1, GateNetlist

__all__ = ["NetlistSimulator", "ActivityTrace"]


@dataclass
class ActivityTrace:
    """Per-net toggle counts over a simulated window."""

    cycles: int = 0
    toggles: dict[str, int] = field(default_factory=dict)

    def activity(self, net: str) -> float:
        """Average toggles per cycle for one net."""
        if self.cycles == 0:
            return 0.0
        return self.toggles.get(net, 0) / self.cycles


class NetlistSimulator:
    """Two-valued, zero-delay simulator with flop state.

    Combinational values settle instantly each cycle; flops capture on
    :meth:`clock` calls.  Cell functions come from the library's stored
    truth tables.
    """

    def __init__(self, netlist: GateNetlist, library):
        self.netlist = netlist
        self.library = library
        self._order = netlist.topological_gates(library)
        self._seq = netlist.sequential_gates(library)
        self.values: dict[str, bool] = {CONST0: False, CONST1: True}
        for net in netlist.inputs:
            self.values[net] = False
        for gate in self._seq:
            self.values[gate.output] = False
        self.trace = ActivityTrace()

    # ------------------------------------------------------------------ #
    def set_inputs(self, assignment: dict[str, bool]) -> None:
        for net, value in assignment.items():
            if net not in self.netlist.inputs:
                raise KeyError(f"{net!r} is not a primary input")
            self.values[net] = bool(value)

    def _eval_gate(self, gate) -> bool:
        cell = self.library[gate.cell]
        if cell.truth is None:
            raise ValueError(f"cell {gate.cell} has no truth table")
        idx = 0
        for k, pin in enumerate(cell.input_order):
            if self.values[gate.pins[pin]]:
                idx |= 1 << k
        return bool((cell.truth >> idx) & 1)

    def settle(self) -> None:
        """Propagate combinational logic for the current inputs/state."""
        for gate in self._order:
            new = self._eval_gate(gate)
            old = self.values.get(gate.output)
            if old is not None and old != new:
                self.trace.toggles[gate.output] = (
                    self.trace.toggles.get(gate.output, 0) + 1
                )
            self.values[gate.output] = new

    def clock(self) -> None:
        """One clock edge: capture all flop D values, then settle."""
        captured = {}
        for gate in self._seq:
            cell = self.library[gate.cell]
            captured[gate.output] = self.values[gate.pins[cell.data_pin]]
        for net, value in captured.items():
            if self.values.get(net) != value:
                self.trace.toggles[net] = self.trace.toggles.get(net, 0) + 1
            self.values[net] = value
        self.trace.cycles += 1
        self.settle()

    def value(self, net: str) -> bool:
        return self.values[net]

    def word(self, nets: list[str]) -> int:
        """Read an LSB-first word as an int."""
        out = 0
        for i, net in enumerate(nets):
            if self.values[net]:
                out |= 1 << i
        return out

    def set_word(self, nets: list[str], value: int) -> None:
        """Drive an LSB-first input word from an int."""
        for i, net in enumerate(nets):
            self.set_inputs({net: bool((value >> i) & 1)})
