"""Synthesis layer: netlist IR, structural RTL, optimization, placement.

Plays the role of the commercial synthesis + place-and-route step in the
paper's flow (Section V-A): elaborated datapaths are emitted as mapped
gate netlists, sized for load, and placed on a levelized grid for wire
loads.  Random control logic can additionally go through the AIG-based
technology mapper in :mod:`repro.synth.techmap`.
"""

from repro.synth.netlist import CONST0, CONST1, Gate, GateNetlist, Macro
from repro.synth.opt import net_load, sweep_dangling, upsize_for_load
from repro.synth.placement import Placement, place
from repro.synth.rtl import RTLBuilder
from repro.synth.verilog import to_verilog, write_verilog

__all__ = [
    "CONST0",
    "CONST1",
    "Gate",
    "GateNetlist",
    "Macro",
    "Placement",
    "RTLBuilder",
    "net_load",
    "place",
    "sweep_dangling",
    "to_verilog",
    "upsize_for_load",
    "write_verilog",
]
