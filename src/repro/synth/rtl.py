"""Structural RTL builder: word-level hardware described in Python.

This plays the role of the Chisel/FIRRTL elaboration step in the paper's
flow (Chipyard generates the HDL; a synthesis tool maps it).  Here the
datapath generators emit mapped gates directly -- the standard structural
idioms (ripple adders, barrel shifters, mux trees, one-hot decoders) using
catalog cell names -- so the result is immediately an analyzable
:class:`~repro.synth.netlist.GateNetlist`.

A word is simply a list of net names, LSB first.
"""

from __future__ import annotations

from repro.synth.netlist import GateNetlist

__all__ = ["RTLBuilder", "Word"]

Word = list[str]


class RTLBuilder:
    """Convenience wrapper emitting gates into a netlist.

    All emitters take and return net names (or LSB-first lists of them).
    ``module`` tags every emitted gate for the activity-based power model.
    """

    def __init__(self, netlist: GateNetlist, module: str = "core"):
        self.netlist = netlist
        self.module = module
        netlist.ensure_constants()

    # ------------------------------------------------------------------ #
    # Bit-level primitives
    # ------------------------------------------------------------------ #
    def _gate(self, cell: str, pins: dict[str, str], hint: str) -> str:
        return self.netlist.add_gate(
            cell, pins, output=self.netlist.new_net(hint), module=self.module
        )

    def inv(self, a: str) -> str:
        return self._gate("INV_X1", {"A": a}, "inv")

    def buf(self, a: str) -> str:
        return self._gate("BUF_X1", {"A": a}, "buf")

    def nand2(self, a: str, b: str) -> str:
        return self._gate("NAND2_X1", {"A": a, "B": b}, "nand")

    def nor2(self, a: str, b: str) -> str:
        return self._gate("NOR2_X1", {"A": a, "B": b}, "nor")

    def and2(self, a: str, b: str) -> str:
        return self._gate("AND2_X1", {"A": a, "B": b}, "and")

    def or2(self, a: str, b: str) -> str:
        return self._gate("OR2_X1", {"A": a, "B": b}, "or")

    def xor2(self, a: str, b: str) -> str:
        return self._gate("XOR2_X1", {"A": a, "B": b}, "xor")

    def xnor2(self, a: str, b: str) -> str:
        return self._gate("XNOR2_X1", {"A": a, "B": b}, "xnor")

    def xor3(self, a: str, b: str, c: str) -> str:
        return self._gate("XOR3_X1", {"A": a, "B": b, "C": c}, "xor3")

    def maj3(self, a: str, b: str, c: str) -> str:
        return self._gate("MAJ3_X1", {"A": a, "B": b, "C": c}, "maj")

    def mux2(self, a: str, b: str, sel: str) -> str:
        """Returns ``a`` when sel=0, ``b`` when sel=1."""
        return self._gate("MUX2_X1", {"A": a, "B": b, "S": sel}, "mux")

    def and_tree(self, nets: Word) -> str:
        """Reduction AND via a balanced tree."""
        return self._tree(nets, self.and2)

    def or_tree(self, nets: Word) -> str:
        """Reduction OR via a balanced tree."""
        return self._tree(nets, self.or2)

    def _tree(self, nets: Word, op) -> str:
        if not nets:
            raise ValueError("reduction over empty word")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def dff(self, d: str, clk: str, hint: str = "q") -> str:
        """Positive-edge flop; returns the Q net."""
        return self._gate("DFF_X1", {"D": d, "CK": clk}, hint)

    # ------------------------------------------------------------------ #
    # Word-level operators (LSB first)
    # ------------------------------------------------------------------ #
    def word_input(self, name: str, width: int) -> Word:
        return [self.netlist.add_input(f"{name}[{i}]") for i in range(width)]

    def not_w(self, a: Word) -> Word:
        return [self.inv(x) for x in a]

    def and_w(self, a: Word, b: Word) -> Word:
        self._check(a, b)
        return [self.and2(x, y) for x, y in zip(a, b)]

    def or_w(self, a: Word, b: Word) -> Word:
        self._check(a, b)
        return [self.or2(x, y) for x, y in zip(a, b)]

    def xor_w(self, a: Word, b: Word) -> Word:
        self._check(a, b)
        return [self.xor2(x, y) for x, y in zip(a, b)]

    def mux_w(self, a: Word, b: Word, sel: str) -> Word:
        self._check(a, b)
        return [self.mux2(x, y, sel) for x, y in zip(a, b)]

    def register(self, d: Word, clk: str, hint: str = "r") -> Word:
        return [self.dff(x, clk, f"{hint}{i}") for i, x in enumerate(d)]

    @staticmethod
    def _check(a: Word, b: Word) -> None:
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry)."""
        s = self.xor3(a, b, cin)
        c = self.maj3(a, b, cin)
        return s, c

    def ripple_adder(self, a: Word, b: Word, cin: str) -> tuple[Word, str]:
        """LSB-first ripple-carry adder; returns (sum word, carry out).

        A 64-bit ripple chain is the area-optimal choice and -- with this
        library's MAJ3 delay -- lands the SoC critical path at the ~1 ns
        the paper reports (Table 1).
        """
        self._check(a, b)
        sums: Word = []
        carry = cin
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            sums.append(s)
        return sums, carry

    def carry_select_adder(
        self, a: Word, b: Word, cin: str, block: int = 16
    ) -> tuple[Word, str]:
        """Carry-select adder: ripple blocks computed for both carries.

        Cuts the carry chain to ``block`` full adders plus one mux per
        block boundary -- the timing-optimized option the synthesis flow
        picks when the ripple chain would dominate the clock period.
        """
        self._check(a, b)
        sums: Word = []
        carry = cin
        for start in range(0, len(a), block):
            xa = a[start : start + block]
            xb = b[start : start + block]
            if start == 0:
                s, carry = self.ripple_adder(xa, xb, cin)
                sums.extend(s)
                continue
            s0, c0 = self.ripple_adder(xa, xb, "const0")
            s1, c1 = self.ripple_adder(xa, xb, "const1")
            sums.extend(self.mux_w(s0, s1, carry))
            carry = self.mux2(c0, c1, carry)
        return sums, carry

    def subtractor(self, a: Word, b: Word) -> tuple[Word, str]:
        """a - b via two's complement; returns (difference, ~borrow)."""
        one = self.netlist.driver_of("const1")
        if one is None:
            raise ValueError("netlist needs a driven 'const1' net")
        return self.ripple_adder(a, self.not_w(b), "const1")

    def prefix_and(self, a: Word) -> Word:
        """Parallel-prefix AND (Sklansky): out[i] = a[0] & ... & a[i].

        Log depth with n log n gates -- the carry network of a fast
        incrementer.
        """
        p = list(a)
        step = 1
        while step < len(a):
            nxt = list(p)
            for i in range(step, len(a)):
                nxt[i] = self.and2(p[i], p[i - step])
            p = nxt
            step *= 2
        return p

    def incrementer(self, a: Word, step_bit: int = 0) -> Word:
        """a + 2^step_bit with a log-depth carry network (PC+4 uses 2).

        carry into bit i (> step_bit) is AND(a[step_bit..i-1]), computed
        by :meth:`prefix_and`; the serial half-adder chain this replaces
        would otherwise dominate the fetch-stage timing.
        """
        out = list(a[:step_bit])
        body = a[step_bit:]
        if not body:
            return out
        out.append(self.inv(body[0]))
        if len(body) > 1:
            carries = self.prefix_and(body[:-1])
            for i in range(1, len(body)):
                out.append(self.xor2(body[i], carries[i - 1]))
        return out

    def equal(self, a: Word, b: Word) -> str:
        """1 when the words match."""
        self._check(a, b)
        bits = [self.xnor2(x, y) for x, y in zip(a, b)]
        return self.and_tree(bits)

    def is_zero(self, a: Word) -> str:
        return self.inv(self.or_tree(a))

    # ------------------------------------------------------------------ #
    # Shifters / selectors
    # ------------------------------------------------------------------ #
    def barrel_shifter(
        self, a: Word, amount: Word, right: bool = True, fill: str | None = None
    ) -> Word:
        """Logarithmic shifter: one mux layer per shift-amount bit."""
        if fill is None:
            fill = "const0"
        word = list(a)
        for k, sel in enumerate(amount):
            step = 1 << k
            shifted = []
            n = len(word)
            for i in range(n):
                src = i + step if right else i - step
                shifted.append(word[src] if 0 <= src < n else fill)
            word = [self.mux2(w, s, sel) for w, s in zip(word, shifted)]
        return word

    def mux_tree(self, words: list[Word], select: Word) -> Word:
        """2^k-way word selector from k select bits (LSB first)."""
        if len(words) != (1 << len(select)):
            raise ValueError(
                f"need {1 << len(select)} words for {len(select)} select bits"
            )
        level = [list(w) for w in words]
        for sel in select:
            nxt = []
            for i in range(0, len(level), 2):
                nxt.append(self.mux_w(level[i], level[i + 1], sel))
            level = nxt
        return level[0]

    def decoder(self, select: Word) -> Word:
        """k-bit one-hot decoder (2^k outputs)."""
        inv_sel = [self.inv(s) for s in select]
        outs: Word = []
        for code in range(1 << len(select)):
            bits = [
                select[k] if (code >> k) & 1 else inv_sel[k]
                for k in range(len(select))
            ]
            outs.append(self.and_tree(bits) if len(bits) > 1 else bits[0])
        return outs
