"""Chrome/Perfetto ``trace_event`` export of the telemetry span tree.

The JSONL trace (:mod:`repro.telemetry.sinks`) is lossless but raw;
this module renders the same tree in the `trace_event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
so any run opens directly in ``ui.perfetto.dev`` or
``chrome://tracing``:

* every finished :class:`~repro.telemetry.spans.Span` becomes one
  complete event (``ph="X"``) with microsecond ``ts``/``dur`` and its
  attributes as ``args``;
* spans that overlap a sibling -- the re-parented worker subtrees a
  parallel fan-out merges back across the thread/pickle boundary --
  are placed on their own synthetic track (``tid``), so executor
  workers render as parallel lanes instead of corrupting the nesting;
* each track gets a ``thread_name`` metadata event and the process a
  ``process_name``, so the UI labels lanes ``main`` / ``lane-N``;
* a :class:`~repro.observe.sampler.ResourceSampler` timeseries, when
  provided, becomes counter tracks (``ph="C"``) for RSS, CPU and
  thread count drawn above the spans.

The output is one JSON object (``{"traceEvents": [...]}``), the
variant every trace viewer accepts.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.telemetry.spans import Span

__all__ = ["counter_track_events", "trace_events", "write_chrome_trace"]

#: Synthetic pid for all events: the tree may span real processes, but
#: by merge time it is one logical trace.
_PID = 1

_MAIN_TID = 1

#: Serial siblings may jitter a hair "backwards" (start_wall is
#: time.time() while durations are perf_counter deltas); within this
#: grace they reuse the lane instead of spuriously fanning out.
_LANE_GRACE_S = 1e-3


def _span_events(roots: Iterable[Span]) -> tuple[list[dict], int]:
    """Complete events for every span; returns (events, track count).

    Track allocation: a span inherits its parent's track unless its
    time range overlaps an earlier sibling on that track, in which
    case it claims the next free track.  Serial children therefore
    stay on one lane while parallel (worker) children fan out.
    """
    events: list[dict] = []
    next_tid = _MAIN_TID + 1

    def place(span: Span, tid: int) -> None:
        nonlocal next_tid
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_wall * 1e6,
            "dur": max(span.duration_s, 0.0) * 1e6,
            "pid": _PID,
            "tid": tid,
            "args": {k: _jsonable(v) for k, v in span.attrs.items()},
        })
        lanes: list[tuple[int, float]] = []  # (tid, end wall) per lane
        for child in sorted(span.children, key=lambda s: s.start_wall):
            child_tid = None
            for i, (lane_tid, lane_end) in enumerate(lanes):
                if child.start_wall >= lane_end - _LANE_GRACE_S:
                    child_tid = lane_tid
                    lanes[i] = (lane_tid, child.start_wall
                                + child.duration_s)
                    break
            if child_tid is None:
                if not lanes:
                    child_tid = tid
                else:
                    child_tid = next_tid
                    next_tid += 1
                lanes.append((child_tid,
                              child.start_wall + child.duration_s))
            place(child, child_tid)

    root_lanes: list[tuple[int, float]] = []
    for root in sorted(roots, key=lambda s: s.start_wall):
        tid = None
        for i, (lane_tid, lane_end) in enumerate(root_lanes):
            if root.start_wall >= lane_end - _LANE_GRACE_S:
                tid = lane_tid
                root_lanes[i] = (lane_tid, root.start_wall + root.duration_s)
                break
        if tid is None:
            if not root_lanes:
                tid = _MAIN_TID
            else:
                tid = next_tid
                next_tid += 1
            root_lanes.append((tid, root.start_wall + root.duration_s))
        place(root, tid)
    return events, next_tid - _MAIN_TID


def _metadata_events(track_count: int) -> list[dict]:
    events = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": _MAIN_TID,
        "args": {"name": "repro"},
    }]
    for offset in range(track_count):
        tid = _MAIN_TID + offset
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": "main" if tid == _MAIN_TID
                     else f"lane-{offset}"},
        })
    return events


def _counter_events(samples) -> list[dict]:
    events = []
    for s in samples:
        ts = s.wall * 1e6
        events.append({
            "name": "rss_mb", "cat": "resources", "ph": "C",
            "ts": ts, "pid": _PID,
            "args": {"rss_mb": round(s.rss_bytes / 1e6, 3)},
        })
        events.append({
            "name": "cpu_s", "cat": "resources", "ph": "C",
            "ts": ts, "pid": _PID, "args": {"cpu_s": round(s.cpu_s, 4)},
        })
        events.append({
            "name": "threads", "cat": "resources", "ph": "C",
            "ts": ts, "pid": _PID, "args": {"threads": s.threads},
        })
    return events


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):
        return value.item()
    return str(value)


# ---------------------------------------------------------------------- #
# Public API
# ---------------------------------------------------------------------- #
def counter_track_events(points: Iterable[tuple[float, dict]]) -> list[dict]:
    """Generic ``ph="C"`` counter tracks from a (wall, values) series.

    Each point is ``(wall seconds, {counter name: value})``; every named
    counter becomes its own track.  The serving layer uses this to draw
    its periodic live-metrics timeline (inflight depth, request rate,
    windowed p99) under the tail-sampled request spans.
    """
    events = []
    for wall, values in points:
        ts = wall * 1e6
        for name, value in values.items():
            events.append({
                "name": name, "cat": "live", "ph": "C",
                "ts": ts, "pid": _PID,
                "args": {name: _jsonable(value)},
            })
    return events


def trace_events(roots: Iterable[Span], samples=None,
                 counters: Iterable[tuple[float, dict]] | None = None
                 ) -> list[dict]:
    """The full event list (metadata + spans + optional counters)."""
    span_events, track_count = _span_events(roots)
    events = _metadata_events(max(1, track_count)) + span_events
    if samples:
        events += _counter_events(samples)
    if counters:
        events += counter_track_events(counters)
    return events


def write_chrome_trace(file: str | IO[str], roots: Iterable[Span],
                       samples=None, counters=None) -> int:
    """Write a ``trace_event`` JSON document; returns the event count.

    ``file`` is a path or an open text handle.  ``samples`` is an
    optional :class:`~repro.observe.sampler.ResourceSampler` timeseries
    rendered as counter tracks; ``counters`` an optional
    ``(wall, {name: value})`` series (see :func:`counter_track_events`).
    """
    events = trace_events(roots, samples=samples, counters=counters)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observe"},
    }
    own = isinstance(file, str)
    fh: IO[str] = open(file, "w") if own else file  # noqa: SIM115
    try:
        json.dump(document, fh)
        fh.write("\n")
    finally:
        if own:
            fh.close()
    return len(events)
