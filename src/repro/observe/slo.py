"""Service-level objectives: declared targets, burn-rate verdicts.

An :class:`SLOSpec` declares what the serving layer promises:

* **latency** -- at most an ``error_budget`` fraction of requests may
  exceed ``latency_ms`` (the paper's per-classification decoherence
  budget, scaled for the JSON-over-socket host service exactly as the
  serving benchmark scales it);
* **errors** -- at most an ``error_budget`` fraction of requests may
  fail server-side (deadline expiries and internal errors burn budget;
  client mistakes -- 400/404 -- and typed 429 back-pressure do not:
  rejecting work *is* the overload contract).

:func:`evaluate` turns observed counts into an :class:`SLOReport` on
the same PASS/WARN/FAIL scale the fidelity machinery uses, graded by
**burn rate** -- the ratio of the observed bad fraction to the budget.
Burn rate <= 1.0 means the budget outlives the session (PASS); above
1.0 the budget is burning faster than allowed (WARN), and above
``FAST_BURN`` it is burning so fast the objective is effectively gone
(FAIL) -- the verdict ``repro report --strict`` gates on.

The same evaluation runs twice per session: over the rolling window
(the live view in the ``{"op": "stats"}`` snapshot and ``repro top``)
and over the cumulative session counts folded into the
``kind="serve"`` RunRecord at shutdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.provenance.fidelity import FAIL, PASS, WARN

__all__ = ["SLOReport", "SLOSpec", "evaluate"]

#: The paper's per-classification decoherence budget (Fig. 2(c)).
DECOHERENCE_BUDGET_MS = 0.110

#: Wire scale for a batched JSON host service (matches the serving
#: benchmark's ``BUDGET_SCALE``): 110 us x 1000 = 110 ms per request.
DEFAULT_LATENCY_MS = DECOHERENCE_BUDGET_MS * 1000

#: Default error budget: 1 % of requests may be slow/failed.
DEFAULT_ERROR_BUDGET = 0.01

#: Burn rate beyond which an objective FAILs instead of WARNing.
FAST_BURN = 2.0


@dataclass(frozen=True)
class SLOSpec:
    """Declared objectives of one serving session (validated)."""

    latency_ms: float = DEFAULT_LATENCY_MS
    """Per-request latency target; requests above it burn budget."""
    error_budget: float = DEFAULT_ERROR_BUDGET
    """Allowed fraction of budget-burning requests per objective."""

    def __post_init__(self):
        if not self.latency_ms > 0:
            raise ConfigError(
                f"latency_ms must be positive, got {self.latency_ms!r}",
                field="latency_ms")
        if not 0 < self.error_budget < 1:
            raise ConfigError(
                f"error_budget must be in (0, 1), got "
                f"{self.error_budget!r}", field="error_budget")

    def to_dict(self) -> dict:
        return {"latency_ms": self.latency_ms,
                "error_budget": self.error_budget}


@dataclass(frozen=True)
class SLOReport:
    """Graded objectives; shape mirrors the fidelity report dicts."""

    verdict: str
    checks: tuple[dict, ...]
    total: int

    def to_dict(self) -> dict:
        return {"verdict": self.verdict,
                "checks": [dict(c) for c in self.checks],
                "total": self.total}

    def metrics(self) -> dict[str, float]:
        """Flat burn-rate metrics for RunRecord.metrics."""
        return {f"serve.slo_{c['name']}_burn_rate": c["burn_rate"]
                for c in self.checks}


def _grade(burn_rate: float, fast_burn: float) -> str:
    if burn_rate <= 1.0:
        return PASS
    if burn_rate <= fast_burn:
        return WARN
    return FAIL


def evaluate(spec: SLOSpec, *, total: int, latency_violations: int,
             errors: int, fast_burn: float = FAST_BURN) -> SLOReport:
    """Grade observed counts against the spec (see module docstring).

    ``total`` requests, of which ``latency_violations`` exceeded the
    latency target and ``errors`` failed server-side.  Zero traffic is
    a PASS with zero burn: an idle service has burned nothing.
    """
    checks = []
    worst = PASS
    for name, bad, objective in (
        ("latency", latency_violations,
         f"p(latency > {spec.latency_ms:g} ms) <= {spec.error_budget:g}"),
        ("errors", errors,
         f"p(server error) <= {spec.error_budget:g}"),
    ):
        fraction = bad / total if total else 0.0
        burn = fraction / spec.error_budget
        status = _grade(burn, fast_burn)
        checks.append({
            "name": name,
            "objective": objective,
            "bad": int(bad),
            "fraction": round(fraction, 6),
            "burn_rate": round(burn, 4),
            "status": status,
        })
        order = (PASS, WARN, FAIL)
        if order.index(status) > order.index(worst):
            worst = status
    return SLOReport(verdict=worst, checks=tuple(checks), total=int(total))
