"""repro.observe: deep observability on top of :mod:`repro.telemetry`.

Telemetry (PR 2) answers "how long did each stage take"; this package
answers the three questions that layer cannot:

* **What did the run cost?**  :mod:`repro.observe.sampler` -- a
  background thread sampling ``/proc/self`` (RSS, CPU, threads, FDs)
  into a bounded timeseries whose peaks fold into every
  :class:`~repro.provenance.records.RunRecord`.
* **Where does wall-clock go, visually?**
  :mod:`repro.observe.perfetto` -- the span tree (worker subtrees
  included) exported as Chrome/Perfetto ``trace_event`` JSON that
  opens in ``ui.perfetto.dev``.
* **Are the workers healthy?**  :mod:`repro.observe.health` --
  per-task heartbeats from thread/process workers, live stall
  detection, and p99/median straggler skew.

``repro profile <experiment>`` (:mod:`repro.observe.profile`) runs all
three at once and prints a self-time attribution table.

The *live* layer serves long-running sessions (:mod:`repro.serve`):
:mod:`repro.observe.live` provides fixed-memory rolling-window metrics
(windowed latency quantiles, throughput, queue-depth/batch-size
gauges), the per-request :class:`TraceContext` span trees the service
tail-samples into Perfetto exports, and the ``repro top`` dashboard
rendering; :mod:`repro.observe.slo` grades declared latency/error-rate
objectives by burn rate into the PASS/WARN/FAIL verdicts the
``kind="serve"`` session records and ``repro report --strict`` carry.

Everything is stdlib-only and off by default, matching the telemetry
layer's one-branch-when-disabled discipline.  This is the layer the
future ``repro.serve`` middleware and multi-host ledger merge plug
into: the sampler/heartbeat summaries are plain dicts designed to
cross process and host boundaries.
"""

from __future__ import annotations

from repro.observe import health, slo
from repro.observe.live import (
    LiveMetrics,
    RollingCounter,
    RollingHistogram,
    TraceContext,
    render_top,
)
from repro.observe.perfetto import (
    counter_track_events,
    trace_events,
    write_chrome_trace,
)
from repro.observe.profile import (
    ProfileResult,
    run_profile,
    self_time_rows,
    self_time_table,
)
from repro.observe.sampler import (
    ResourceSample,
    ResourceSampler,
    read_sample,
)

__all__ = [
    "LiveMetrics",
    "ProfileResult",
    "ResourceSample",
    "ResourceSampler",
    "RollingCounter",
    "RollingHistogram",
    "TraceContext",
    "counter_track_events",
    "health",
    "read_sample",
    "render_top",
    "run_profile",
    "self_time_rows",
    "self_time_table",
    "slo",
    "trace_events",
    "write_chrome_trace",
]
