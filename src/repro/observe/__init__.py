"""repro.observe: deep observability on top of :mod:`repro.telemetry`.

Telemetry (PR 2) answers "how long did each stage take"; this package
answers the three questions that layer cannot:

* **What did the run cost?**  :mod:`repro.observe.sampler` -- a
  background thread sampling ``/proc/self`` (RSS, CPU, threads, FDs)
  into a bounded timeseries whose peaks fold into every
  :class:`~repro.provenance.records.RunRecord`.
* **Where does wall-clock go, visually?**
  :mod:`repro.observe.perfetto` -- the span tree (worker subtrees
  included) exported as Chrome/Perfetto ``trace_event`` JSON that
  opens in ``ui.perfetto.dev``.
* **Are the workers healthy?**  :mod:`repro.observe.health` --
  per-task heartbeats from thread/process workers, live stall
  detection, and p99/median straggler skew.

``repro profile <experiment>`` (:mod:`repro.observe.profile`) runs all
three at once and prints a self-time attribution table.

Everything is stdlib-only and off by default, matching the telemetry
layer's one-branch-when-disabled discipline.  This is the layer the
future ``repro.serve`` middleware and multi-host ledger merge plug
into: the sampler/heartbeat summaries are plain dicts designed to
cross process and host boundaries.
"""

from __future__ import annotations

from repro.observe import health
from repro.observe.perfetto import trace_events, write_chrome_trace
from repro.observe.profile import (
    ProfileResult,
    run_profile,
    self_time_rows,
    self_time_table,
)
from repro.observe.sampler import (
    ResourceSample,
    ResourceSampler,
    read_sample,
)

__all__ = [
    "ProfileResult",
    "ResourceSample",
    "ResourceSampler",
    "health",
    "read_sample",
    "run_profile",
    "self_time_rows",
    "self_time_table",
    "trace_events",
    "write_chrome_trace",
]
