"""Executor health: per-task heartbeats, stall and straggler detection.

The runtime's pooled backends (:mod:`repro.runtime.executor`) fan work
out to threads or processes that the caller never sees individually --
a worker wedged on a pathological solve looks identical to a long
queue.  This module gives the fan-out a pulse:

* every task execution emits a **start** and an **end** heartbeat
  (:class:`HeartbeatFn` wraps the mapped function; thread workers beat
  straight into the shared monitor, process workers through a managed
  queue drained by the parent -- the :class:`ProcessChannel`);
* the :class:`HealthMonitor` keeps per-worker state (last beat, open
  task, completed count) and a bounded task-duration series;
* a watchdog thread flags **stalled** workers -- an open task older
  than ``stall_timeout_s`` -- the moment it happens (counter
  ``runtime.health.stall_events``, gauge
  ``runtime.health.stalled_workers``), not after the map returns;
* **stragglers** surface as the p99/median task-duration skew
  (``runtime.health.straggler_skew``), the classic tail-latency smell
  of an uneven shard.

Like telemetry, the layer is a module-level façade that is off by
default: :func:`enabled` is one branch on the executor's hot path, and
``repro profile`` / ``repro stats`` turn it on for the duration of a
run.  The summary lands in ``repro stats`` and, via
:mod:`repro.observe.profile`, in the run ledger.
"""

from __future__ import annotations

import os
import threading
import time

from repro import telemetry

__all__ = [
    "HealthMonitor",
    "HeartbeatFn",
    "LagTracker",
    "ProcessChannel",
    "disable",
    "enable",
    "enabled",
    "monitor",
    "summary",
]

#: Default seconds an open task may run before its worker is stalled.
DEFAULT_STALL_TIMEOUT_S = 5.0

#: Default p99/median skew beyond which the tail is flagged.
DEFAULT_STRAGGLER_SKEW = 4.0

#: Task-duration observations kept for percentile math.
_MAX_DURATIONS = 10_000

#: Drainer shutdown sentinel (must pickle).
_STOP = ("__stop__", "", "", 0.0, 0.0)


class _WorkerState:
    __slots__ = ("last_beat", "task", "task_start", "completed")

    def __init__(self):
        self.last_beat = 0.0
        self.task: str | None = None
        self.task_start = 0.0
        self.completed = 0


class HealthMonitor:
    """Aggregates heartbeats; see the module docstring."""

    def __init__(self, stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
                 straggler_skew: float = DEFAULT_STRAGGLER_SKEW):
        if not stall_timeout_s > 0:
            raise ValueError(
                f"stall_timeout_s must be > 0, got {stall_timeout_s!r}")
        self.stall_timeout_s = float(stall_timeout_s)
        self.straggler_skew = float(straggler_skew)
        self._lock = threading.Lock()
        self._workers: dict[str, _WorkerState] = {}
        self._durations: list[float] = []
        self._tasks_started = 0
        self._tasks_completed = 0
        self._stall_events: list[dict] = []
        self._flagged: set[tuple[str, str]] = set()

    # -------------------------------------------------------------- #
    # Beat ingestion.  Beats are plain tuples so they cross the
    # process boundary through a managed queue unchanged:
    # (phase, worker, task, wall, duration_s).
    # -------------------------------------------------------------- #
    def record(self, beat: tuple) -> None:
        phase, worker, task, wall, duration_s = beat
        with self._lock:
            state = self._workers.get(worker)
            if state is None:
                state = self._workers[worker] = _WorkerState()
            state.last_beat = wall
            if phase == "start":
                state.task = task
                state.task_start = wall
                self._tasks_started += 1
            elif phase == "end":
                state.task = None
                state.completed += 1
                self._tasks_completed += 1
                self._durations.append(duration_s)
                if len(self._durations) > _MAX_DURATIONS:
                    del self._durations[:_MAX_DURATIONS // 2]

    def record_start(self, worker: str, task: str,
                     wall: float | None = None) -> None:
        self.record(("start", worker, task,
                     time.time() if wall is None else wall, 0.0))

    def record_end(self, worker: str, task: str, duration_s: float,
                   wall: float | None = None) -> None:
        self.record(("end", worker, task,
                     time.time() if wall is None else wall, duration_s))

    # -------------------------------------------------------------- #
    # Detection
    # -------------------------------------------------------------- #
    def stalled(self, now: float | None = None) -> list[dict]:
        """Workers whose open task exceeds the stall timeout, now."""
        now = time.time() if now is None else now
        out = []
        with self._lock:
            for worker, state in self._workers.items():
                if state.task is None:
                    continue
                age = now - state.task_start
                if age > self.stall_timeout_s:
                    out.append({"worker": worker, "task": state.task,
                                "age_s": age})
        return out

    def check(self, now: float | None = None) -> list[dict]:
        """One detector pass: flag new stalls, refresh the gauges.

        Each (worker, task) stall is counted once however many passes
        observe it; the returned list is the *newly* flagged set.
        """
        stalled = self.stalled(now)
        fresh = []
        with self._lock:
            for event in stalled:
                key = (event["worker"], event["task"])
                if key in self._flagged:
                    continue
                self._flagged.add(key)
                self._stall_events.append(dict(event))
                fresh.append(event)
        for _ in fresh:
            telemetry.count("runtime.health.stall_events")
        telemetry.gauge("runtime.health.stalled_workers", len(stalled))
        skew = self._skew()
        if skew is not None:
            telemetry.gauge("runtime.health.straggler_skew", skew)
        telemetry.gauge("runtime.health.workers", len(self._workers))
        telemetry.gauge("runtime.health.tasks_completed",
                        self._tasks_completed)
        return fresh

    def _percentile(self, ordered: list[float], q: float) -> float:
        k = min(len(ordered) - 1,
                max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[k]

    def _skew(self) -> float | None:
        with self._lock:
            if len(self._durations) < 4:
                return None
            ordered = sorted(self._durations)
        median = self._percentile(ordered, 50)
        p99 = self._percentile(ordered, 99)
        if median <= 0:
            return None
        return p99 / median

    # -------------------------------------------------------------- #
    def summary(self) -> dict:
        """The health section ``repro stats`` / ``repro profile`` print."""
        skew = self._skew()
        with self._lock:
            durations = sorted(self._durations)
            active = sum(1 for s in self._workers.values()
                         if s.task is not None)
            out = {
                "workers": len(self._workers),
                "active": active,
                "tasks_started": self._tasks_started,
                "tasks_completed": self._tasks_completed,
                "stall_events": list(self._stall_events),
                "stall_timeout_s": self.stall_timeout_s,
            }
        if durations:
            out["task_p50_s"] = self._percentile(durations, 50)
            out["task_p99_s"] = self._percentile(durations, 99)
        if skew is not None:
            out["straggler_skew"] = skew
            out["stragglers_flagged"] = skew > self.straggler_skew
        return out


# ---------------------------------------------------------------------- #
# Scheduler-lag tracking: how late do periodic ticks fire?
# ---------------------------------------------------------------------- #
class LagTracker:
    """Bounded record of tick lateness for one periodic loop.

    The serving layer schedules a tick every ``interval_s`` on its
    asyncio loop and reports how late each tick actually fired --
    event-loop lag, the single best proxy for "is the service about to
    miss deadlines".  Keeps a bounded ring of recent lags; summaries
    are last/p99/max in milliseconds.  Thread-safe (ticks land on the
    loop, summaries are read by stats snapshots).
    """

    __slots__ = ("capacity", "_lags_ms", "_index", "_count", "_lock")

    def __init__(self, capacity: int = 256):
        if not capacity > 0:
            raise ValueError(f"capacity must be > 0, got {capacity!r}")
        self.capacity = capacity
        self._lags_ms: list[float] = [0.0] * capacity
        self._index = 0
        self._count = 0
        self._lock = threading.Lock()

    def record(self, lag_s: float) -> None:
        with self._lock:
            self._lags_ms[self._index] = max(0.0, lag_s) * 1e3
            self._index = (self._index + 1) % self.capacity
            self._count += 1

    def summary(self) -> dict:
        with self._lock:
            n = min(self._count, self.capacity)
            if not n:
                return {"ticks": 0}
            recent = sorted(self._lags_ms[:n])
            last = self._lags_ms[(self._index - 1) % self.capacity]
        p99 = recent[min(n - 1, max(0, round(0.99 * (n - 1))))]
        return {
            "ticks": self._count,
            "loop_lag_last_ms": round(last, 3),
            "loop_lag_p99_ms": round(p99, 3),
            "loop_lag_max_ms": round(recent[-1], 3),
        }


# ---------------------------------------------------------------------- #
# The picklable heartbeat wrapper the executor wraps mapped fns in.
# ---------------------------------------------------------------------- #
def _worker_id() -> str:
    return f"pid{os.getpid()}-t{threading.get_ident() & 0xFFFF:04x}"


class HeartbeatFn:
    """Wraps ``fn`` so every call beats start/end around the work.

    With ``queue=None`` beats land directly in this process's monitor
    (thread workers share the address space); with a managed queue they
    are shipped to the parent, which drains them on a
    :class:`ProcessChannel` thread.  Pickles iff ``fn`` does: managed
    queue proxies reconnect on unpickle in the worker.
    """

    def __init__(self, fn, queue=None):
        self.fn = fn
        self.queue = queue

    def _emit(self, beat: tuple) -> None:
        if self.queue is not None:
            try:
                self.queue.put(beat)
            except Exception:  # noqa: BLE001 - a dead channel never
                pass           # takes the work down with it
        else:
            mon = monitor()
            if mon is not None:
                mon.record(beat)

    def __call__(self, item):
        worker = _worker_id()
        task = repr(item)
        if len(task) > 80:
            task = task[:77] + "..."
        start = time.time()
        self._emit(("start", worker, task, start, 0.0))
        result = self.fn(item)
        end = time.time()
        self._emit(("end", worker, task, end, end - start))
        return result


class ProcessChannel:
    """Parent-side heartbeat channel for one process-pool fan-out.

    Owns a ``multiprocessing.Manager`` queue (proxy objects pickle into
    workers, unlike raw ``mp.Queue``) and a drainer thread feeding the
    monitor live -- stalls are visible *while* the map runs.
    """

    def __init__(self, mon: HealthMonitor):
        import multiprocessing

        self._monitor = mon
        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-health-drain", daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        while True:
            try:
                beat = self.queue.get(timeout=0.25)
            except Exception:  # noqa: BLE001 - timeout or closed manager
                if self._manager is None:
                    return
                continue
            if beat[0] == _STOP[0]:
                return
            self._monitor.record(beat)

    def close(self) -> None:
        try:
            self.queue.put(_STOP)
        except Exception:  # noqa: BLE001 - manager already gone
            pass
        self._thread.join(timeout=2.0)
        manager, self._manager = self._manager, None
        manager.shutdown()


# ---------------------------------------------------------------------- #
# Module-level façade (mirrors repro.telemetry's enable/disable shape).
# ---------------------------------------------------------------------- #
_MONITOR: HealthMonitor | None = None
_WATCHDOG: threading.Thread | None = None
_WATCHDOG_STOP = threading.Event()


def enabled() -> bool:
    """Whether heartbeat collection is on (one branch, executor-hot)."""
    return _MONITOR is not None


def monitor() -> HealthMonitor | None:
    """The live monitor, if any."""
    return _MONITOR


def enable(stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
           straggler_skew: float = DEFAULT_STRAGGLER_SKEW,
           watchdog: bool = True) -> HealthMonitor:
    """Start a fresh monitor (and its stall watchdog); returns it."""
    global _MONITOR, _WATCHDOG
    disable()
    _MONITOR = HealthMonitor(stall_timeout_s=stall_timeout_s,
                             straggler_skew=straggler_skew)
    if watchdog:
        _WATCHDOG_STOP.clear()
        interval = max(0.02, min(0.5, stall_timeout_s / 4.0))
        _WATCHDOG = threading.Thread(
            target=_watch, args=(_MONITOR, interval),
            name="repro-health-watchdog", daemon=True)
        _WATCHDOG.start()
    return _MONITOR


def disable() -> None:
    """Stop collecting; the last monitor's data is dropped."""
    global _MONITOR, _WATCHDOG
    _MONITOR = None
    if _WATCHDOG is not None:
        _WATCHDOG_STOP.set()
        _WATCHDOG.join(timeout=2.0)
        _WATCHDOG = None


def _watch(mon: HealthMonitor, interval: float) -> None:
    while not _WATCHDOG_STOP.wait(interval):
        if _MONITOR is not mon:
            return
        mon.check()


def summary() -> dict:
    """The live monitor's summary ({} while disabled)."""
    return _MONITOR.summary() if _MONITOR is not None else {}
