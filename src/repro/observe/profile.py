"""``repro profile``: run one experiment under the full deep-observability
stack and answer "where does the time and memory go?".

One call wires together everything this package provides:

* telemetry tracing is reset and enabled, so the run produces a full
  span tree (worker spans included, re-parented by the runtime);
* a :class:`~repro.observe.sampler.ResourceSampler` watches RSS/CPU/
  threads/FDs for the duration;
* executor health monitoring (:mod:`repro.observe.health`) collects
  per-task heartbeats from any fan-out the experiment performs;
* the span tree is exported as a Chrome/Perfetto ``trace_event`` JSON
  (or the legacy JSONL), ready for ``ui.perfetto.dev``;
* a **self-time attribution table** ranks span names by *exclusive*
  wall time -- the time spent in a span minus its children -- which is
  the "what should I optimize next" view the inclusive tree hides;
* the run lands in the provenance ledger as a ``kind="profile"``
  :class:`~repro.provenance.records.RunRecord` whose ``resources``
  field carries the sampler peaks, so profiles are comparable across
  commits with ``repro compare`` like any other run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.observe import health
from repro.observe.perfetto import write_chrome_trace
from repro.observe.sampler import DEFAULT_INTERVAL_S, ResourceSampler

__all__ = ["ProfileResult", "run_profile", "self_time_rows",
           "self_time_table"]

#: Rows shown in the attribution table by default.
DEFAULT_TOP_N = 15

TRACE_FORMATS = ("chrome", "jsonl")


# ---------------------------------------------------------------------- #
# Self-time attribution
# ---------------------------------------------------------------------- #
def self_time_rows(roots) -> list[dict]:
    """Aggregate spans by name; sorted by exclusive wall time, desc.

    ``self_s`` is a span's duration minus its children's -- summed over
    every span of that name -- so a hot leaf beats a long umbrella.
    """
    agg: dict[str, dict] = {}
    for root in roots:
        for _, span in root.walk():
            child_s = sum(c.duration_s for c in span.children)
            row = agg.get(span.name)
            if row is None:
                row = agg[span.name] = {
                    "name": span.name, "calls": 0,
                    "total_s": 0.0, "self_s": 0.0,
                }
            row["calls"] += 1
            row["total_s"] += span.duration_s
            row["self_s"] += max(0.0, span.duration_s - child_s)
    rows = sorted(agg.values(), key=lambda r: -r["self_s"])
    grand = sum(r["self_s"] for r in rows) or 1.0
    for row in rows:
        row["self_pct"] = 100.0 * row["self_s"] / grand
    return rows


def self_time_table(roots, top_n: int = DEFAULT_TOP_N) -> str:
    """The printable attribution table (top ``top_n`` span names)."""
    from repro.core.report import format_table

    rows = self_time_rows(roots)
    shown = rows[:top_n]
    body = [
        [r["name"], str(r["calls"]), f"{r['self_s'] * 1e3:.2f}",
         f"{r['self_pct']:.1f} %", f"{r['total_s'] * 1e3:.2f}"]
        for r in shown
    ]
    hidden = len(rows) - len(shown)
    title = "Self-time attribution (exclusive wall time)"
    if hidden > 0:
        title += f" -- top {len(shown)} of {len(rows)} span names"
    return format_table(
        ["span", "calls", "self (ms)", "self %", "incl (ms)"],
        body, title=title)


# ---------------------------------------------------------------------- #
# The profile run
# ---------------------------------------------------------------------- #
@dataclass
class ProfileResult:
    """Everything one ``repro profile`` invocation produced."""

    experiment: str
    report_text: str
    """The experiment's own artifact report."""
    attribution: str
    """The rendered self-time table."""
    trace_path: str
    trace_format: str
    trace_events: int
    resources: dict = field(default_factory=dict)
    health: dict = field(default_factory=dict)
    record: object = None
    """The ledger :class:`~repro.provenance.records.RunRecord`."""


def _default_trace_path(name: str, trace_format: str) -> str:
    suffix = "trace.json" if trace_format == "chrome" else "trace.jsonl"
    return f"profile_{name}.{suffix}"


def run_profile(name: str, config, *,
                interval_s: float = DEFAULT_INTERVAL_S,
                trace_format: str = "chrome",
                trace_path: str | None = None,
                stall_timeout_s: float = health.DEFAULT_STALL_TIMEOUT_S,
                top_n: int = DEFAULT_TOP_N) -> ProfileResult:
    """Run registered experiment ``name`` under sampler+tracer+health.

    The caller owns ledger appends (the CLI does it so ``--no-ledger``
    keeps working); everything else -- tracing lifecycle, trace file,
    attribution, resource fold-in -- happens here.
    """
    from repro.errors import ConfigError
    from repro.experiments import registry
    from repro.provenance import RunRecord, telemetry_snapshot

    if trace_format not in TRACE_FORMATS:
        raise ConfigError(
            f"unknown trace format {trace_format!r}; "
            f"pick from {TRACE_FORMATS}", field="trace_format")
    spec = registry.get(name)
    path = trace_path or _default_trace_path(name, trace_format)

    telemetry.reset()
    telemetry.enable()
    health.enable(stall_timeout_s=stall_timeout_s)
    sampler = ResourceSampler(interval_s=interval_s)
    start_ts = telemetry.iso_ts(time.time())
    t0 = time.perf_counter()
    study = None
    try:
        with sampler, telemetry.span("profile", experiment=name):
            if spec.needs_study:
                from repro.core import CryoStudy

                study = CryoStudy(config)
            result = spec.run_result(study, config)
        wall_s = time.perf_counter() - t0
        report_text = spec.report(result)
        fidelity = spec.check_fidelity(result)
        resources = sampler.summary()
        health_summary = health.summary()
    finally:
        health.disable()

    telemetry.gauge("observe.peak_rss_bytes",
                    resources.get("peak_rss_bytes", 0))
    telemetry.gauge("observe.cpu_utilization",
                    resources.get("cpu_utilization", 0.0))

    roots = telemetry.trace_roots()
    if trace_format == "chrome":
        n_events = write_chrome_trace(path, roots,
                                      samples=sampler.samples)
    else:
        n_events = telemetry.write_jsonl(roots, path)

    snapshot = telemetry_snapshot(study)
    snapshot["health"] = health_summary
    record = RunRecord(
        experiment=name,
        kind="profile",
        start_ts=start_ts,
        wall_s=wall_s,
        config_digest=config.config_digest() if config is not None else None,
        telemetry=snapshot,
        resources=resources,
        metrics=fidelity.metrics if fidelity is not None else {},
        fidelity=fidelity.to_dict() if fidelity is not None else None,
    )
    return ProfileResult(
        experiment=name,
        report_text=report_text,
        attribution=self_time_table(roots, top_n=top_n),
        trace_path=path,
        trace_format=trace_format,
        trace_events=n_events,
        resources=resources,
        health=health_summary,
        record=record,
    )
