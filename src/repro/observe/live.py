"""Live streaming metrics + request-scoped tracing for long-running services.

The cumulative counters of :mod:`repro.telemetry` answer "what happened
since the process started"; a serving session needs "what is happening
*right now*".  This module provides the two primitives the
classification service (:mod:`repro.serve`) wires in:

**Rolling-window metrics** -- :class:`RollingCounter` and
:class:`RollingHistogram` keep a ring of per-slot aggregates covering
the last ``window_s`` seconds in **fixed memory**, however many
observations stream through:

* a counter's ring holds one count per slot, so :meth:`RollingCounter.rate`
  is the true windowed throughput;
* a histogram bins observations into geometrically spaced buckets
  (relative spacing ``rel_error``), one bin array per slot, so windowed
  quantiles (:meth:`RollingHistogram.percentile`) are exact to within
  one bin -- a bounded relative error -- and a one-million-sample soak
  allocates nothing.  A second, cumulative bin array feeds the
  session-record summaries (queue-depth and batch-size histograms)
  without keeping raw samples.

**Request-scoped tracing** -- a :class:`TraceContext` is minted per wire
request (in :mod:`repro.serve.protocol`) and threaded through the
middleware pipeline, the micro-batcher and the predict-executor hop.
Each hop appends a finished child :class:`~repro.telemetry.spans.Span`
(``serve.queue`` -> ``serve.batch`` -> ``serve.predict`` ->
``serve.write``), building a per-request span tree *detached from the
global tracer* (so tracing works with telemetry disabled and costs a
few microseconds).  The server tail-samples: only slow or failed
requests are kept, bounded, for Perfetto export.

:class:`LiveMetrics` bundles the serving instruments and produces the
internally consistent snapshot the in-band ``{"op": "stats"}`` request
and the ``repro top`` dashboard render.
"""

from __future__ import annotations

import itertools
import math
import threading
import time

import numpy as np

from repro.telemetry.spans import Span

__all__ = [
    "LiveMetrics",
    "RollingCounter",
    "RollingHistogram",
    "TraceContext",
    "render_top",
]

#: Default rolling window: ten one-second slots.
DEFAULT_WINDOW_S = 10.0
DEFAULT_SLOTS = 10

#: Default per-bin relative spacing of the log-scaled histogram: a
#: windowed quantile is exact to within one bin, i.e. ~4 % relative.
DEFAULT_REL_ERROR = 0.04


class RollingCounter:
    """A monotonic count with a fixed-memory rolling-window rate.

    ``add()`` lands in the ring slot owning the current time;
    :meth:`rate` sums the slots still inside the window and divides by
    the window they cover.  ``total`` is cumulative (never expires).
    """

    __slots__ = ("slot_s", "slots", "total", "_counts", "_stamps", "_lock")

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 slots: int = DEFAULT_SLOTS):
        if not window_s > 0 or not slots > 0:
            raise ValueError(
                f"window_s and slots must be positive, got "
                f"{window_s!r}/{slots!r}")
        self.slot_s = window_s / slots
        self.slots = slots
        self.total = 0
        self._counts = [0] * slots
        self._stamps = [-1] * slots  # absolute slot number, -1 = empty
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _slot(self, now: float) -> int:
        """Claim the ring slot for ``now``, recycling a stale one."""
        absolute = int(now / self.slot_s)
        index = absolute % self.slots
        if self._stamps[index] != absolute:
            self._stamps[index] = absolute
            self._counts[index] = 0
        return index

    def add(self, n: int = 1, now: float | None = None) -> None:
        now = time.time() if now is None else now
        with self._lock:
            self._counts[self._slot(now)] += n
            self.total += n

    def window_count(self, now: float | None = None) -> int:
        """Observations inside the window ending at ``now``."""
        now = time.time() if now is None else now
        oldest = int(now / self.slot_s) - self.slots + 1
        with self._lock:
            return sum(c for c, s in zip(self._counts, self._stamps)
                       if s >= oldest)

    def rate(self, now: float | None = None) -> float:
        """Windowed throughput in events/second."""
        return self.window_count(now) / (self.slot_s * self.slots)


class RollingHistogram:
    """Fixed-memory rolling-window quantile estimator.

    Observations are binned geometrically: bin edges grow by
    ``1 + rel_error`` per bin between ``lo`` and ``hi``, values outside
    clamp to the end bins.  The ring holds one ``int64`` bin array per
    slot; a windowed percentile walks the summed live slots and returns
    the geometric midpoint of the bin holding the target rank -- exact
    to within one bin, i.e. a relative error bounded by ``rel_error``.

    A parallel *cumulative* bin array (plus exact count/sum/min/max)
    summarizes the whole stream for session records.  Total memory is
    ``(slots + 1) * n_bins`` int64 regardless of how many observations
    stream through -- the property the 1M-sample soak test pins.
    """

    __slots__ = ("lo", "hi", "rel_error", "slot_s", "slots", "_growth",
                 "_n_bins", "_ring", "_stamps", "_cum", "count", "sum",
                 "min", "max", "_lock")

    def __init__(self, *, lo: float = 1e-3, hi: float = 1e6,
                 rel_error: float = DEFAULT_REL_ERROR,
                 window_s: float = DEFAULT_WINDOW_S,
                 slots: int = DEFAULT_SLOTS):
        if not (0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got {lo!r}/{hi!r}")
        if not 0 < rel_error < 1:
            raise ValueError(f"rel_error must be in (0, 1), got "
                             f"{rel_error!r}")
        self.lo = lo
        self.hi = hi
        self.rel_error = rel_error
        self.slot_s = window_s / slots
        self.slots = slots
        self._growth = math.log1p(rel_error)
        self._n_bins = int(math.log(hi / lo) / self._growth) + 2
        self._ring = np.zeros((slots, self._n_bins), dtype=np.int64)
        self._stamps = [-1] * slots
        self._cum = np.zeros(self._n_bins, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _bin(self, value: float) -> int:
        if not value > self.lo:
            return 0
        index = int(math.log(value / self.lo) / self._growth) + 1
        return min(index, self._n_bins - 1)

    def observe(self, value: float, now: float | None = None) -> None:
        value = float(value)
        now = time.time() if now is None else now
        absolute = int(now / self.slot_s)
        index = absolute % self.slots
        b = self._bin(value)
        with self._lock:
            if self._stamps[index] != absolute:
                self._stamps[index] = absolute
                self._ring[index, :] = 0
            self._ring[index, b] += 1
            self._cum[b] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # ------------------------------------------------------------------ #
    def _live_bins(self, now: float) -> np.ndarray:
        oldest = int(now / self.slot_s) - self.slots + 1
        live = [self._ring[i] for i, s in enumerate(self._stamps)
                if s >= oldest]
        if not live:
            return np.zeros(self._n_bins, dtype=np.int64)
        return np.sum(live, axis=0)

    def _bin_value(self, index: int) -> float:
        """The geometric midpoint a bin reports as its value."""
        if index <= 0:
            return self.lo
        edge_lo = self.lo * math.exp((index - 1) * self._growth)
        return edge_lo * math.exp(self._growth / 2.0)

    @staticmethod
    def _rank_bin(bins: np.ndarray, q: float) -> int | None:
        total = int(bins.sum())
        if total == 0:
            return None
        rank = min(total - 1, max(0, round(q / 100.0 * (total - 1))))
        cumulative = np.cumsum(bins)
        return int(np.searchsorted(cumulative, rank + 1))

    def percentile(self, q: float, now: float | None = None) -> float:
        """Windowed percentile (0.0 when the window is empty)."""
        now = time.time() if now is None else now
        with self._lock:
            index = self._rank_bin(self._live_bins(now), q)
        return 0.0 if index is None else self._bin_value(index)

    def window_count(self, now: float | None = None) -> int:
        now = time.time() if now is None else now
        with self._lock:
            return int(self._live_bins(now).sum())

    def cumulative_percentile(self, q: float) -> float:
        """Whole-stream percentile from the cumulative bins."""
        with self._lock:
            index = self._rank_bin(self._cum, q)
        return 0.0 if index is None else self._bin_value(index)

    def summary(self) -> dict:
        """Whole-stream summary for session records (plain floats)."""
        with self._lock:
            if not self.count:
                return {"count": 0}
            out = {
                "count": self.count,
                "mean": self.sum / self.count,
                "min": self.min,
                "max": self.max,
            }
        for q in (50, 95, 99):
            out[f"p{q}"] = self.cumulative_percentile(q)
        return out

    @property
    def nbytes(self) -> int:
        """Bin storage footprint -- constant by construction."""
        return self._ring.nbytes + self._cum.nbytes


# ---------------------------------------------------------------------- #
# Request-scoped tracing
# ---------------------------------------------------------------------- #
_TRACE_SEQ = itertools.count(1)


class TraceContext:
    """One request's span tree, detached from the global tracer.

    The root span opens at mint time; hops append finished children via
    :meth:`add` (timings measured elsewhere, e.g. by the micro-batcher)
    or :meth:`span` (a live ``with`` region).  :meth:`finish` closes the
    root and returns it for tail-sampling.  Everything is plain
    :class:`~repro.telemetry.spans.Span` objects, so a sampled tree
    exports through the existing Chrome/Perfetto writer unchanged.
    """

    __slots__ = ("trace_id", "root", "_t0")

    def __init__(self, name: str = "serve.request", **attrs):
        self.trace_id = f"req-{next(_TRACE_SEQ):06x}"
        self.root = Span(name, {"trace_id": self.trace_id, **attrs}, None)
        self.root.start_wall = time.time()
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------ #
    def add(self, name: str, start_wall: float, duration_s: float,
            **attrs) -> Span:
        """Append an already-timed child span."""
        span = Span(name, attrs, None)
        span.start_wall = start_wall
        span.duration_s = max(0.0, duration_s)
        self.root.children.append(span)
        return span

    def span(self, name: str, **attrs) -> Span:
        """A live child region: ``with trace.span("serve.write"): ...``."""
        span = Span(name, attrs, None)
        self.root.children.append(span)
        return span

    def attach(self, span: Span) -> None:
        """Adopt a span built elsewhere (e.g. the shared predict span a
        fused batch appends to every participating request)."""
        self.root.children.append(span)

    def set(self, **attrs) -> "TraceContext":
        self.root.attrs.update(attrs)
        return self

    def finish(self, **attrs) -> Span:
        """Close the root span (idempotent) and return it."""
        if attrs:
            self.root.attrs.update(attrs)
        if not self.root.duration_s:
            self.root.duration_s = time.perf_counter() - self._t0
        self.root.children.sort(key=lambda s: s.start_wall)
        return self.root

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._t0


# ---------------------------------------------------------------------- #
# The serving instrument bundle
# ---------------------------------------------------------------------- #
class LiveMetrics:
    """Every live instrument of one serving session, one snapshot call.

    All instruments share the same window geometry, so one
    :meth:`snapshot` reads a consistent picture of the last
    ``window_s`` seconds; latency is in milliseconds throughout.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 slots: int = DEFAULT_SLOTS):
        self.window_s = window_s
        kw = {"window_s": window_s, "slots": slots}
        # Latencies in ms: 1 us .. 1000 s covers a stalled deadline.
        self.latency_ms = RollingHistogram(lo=1e-3, hi=1e6, **kw)
        self.queue_depth = RollingHistogram(lo=0.5, hi=1e6, **kw)
        self.batch_shots = RollingHistogram(lo=0.5, hi=1e8, **kw)
        self.batch_requests = RollingHistogram(lo=0.5, hi=1e6, **kw)
        self.requests = RollingCounter(**kw)
        self.shots = RollingCounter(**kw)
        self.errors = RollingCounter(**kw)
        self.rejected = RollingCounter(**kw)
        self.latency_violations = RollingCounter(**kw)

    # ------------------------------------------------------------------ #
    def snapshot(self, now: float | None = None) -> dict:
        """The rolling-window section of the live stats snapshot."""
        now = time.time() if now is None else now
        lat = self.latency_ms
        return {
            "window_s": self.window_s,
            "requests": self.requests.window_count(now),
            "requests_per_sec": round(self.requests.rate(now), 2),
            "shots_per_sec": round(self.shots.rate(now), 1),
            "errors": self.errors.window_count(now),
            "rejected": self.rejected.window_count(now),
            "latency_violations":
                self.latency_violations.window_count(now),
            "latency_p50_ms": round(lat.percentile(50, now), 3),
            "latency_p95_ms": round(lat.percentile(95, now), 3),
            "latency_p99_ms": round(lat.percentile(99, now), 3),
            "queue_depth_p50": round(self.queue_depth.percentile(50, now), 1),
            "queue_depth_p99": round(self.queue_depth.percentile(99, now), 1),
            "batch_shots_p50": round(self.batch_shots.percentile(50, now), 1),
            "batch_requests_p50":
                round(self.batch_requests.percentile(50, now), 1),
        }

    def record_summaries(self) -> dict[str, float]:
        """Whole-session histogram metrics for the ``kind="serve"``
        RunRecord (queue-depth and fused-batch-size distributions)."""
        out: dict[str, float] = {}
        for prefix, hist in (("serve.queue_depth", self.queue_depth),
                             ("serve.batch_shots", self.batch_shots),
                             ("serve.batch_requests", self.batch_requests)):
            summary = hist.summary()
            if not summary.get("count"):
                continue
            out[f"{prefix}_p50"] = round(summary["p50"], 1)
            out[f"{prefix}_p95"] = round(summary["p95"], 1)
            out[f"{prefix}_max"] = round(summary["max"], 1)
        return out


# ---------------------------------------------------------------------- #
# The `repro top` rendering (pure text in, so it is trivially testable)
# ---------------------------------------------------------------------- #
def _num(value, digits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.{digits}f}"
    return f"{value:,}"


def render_top(snapshot: dict, endpoint: str = "") -> str:
    """One refresh frame of the ``repro top`` terminal dashboard."""
    window = snapshot.get("window", {})
    counters = snapshot.get("counters", {})
    slo = snapshot.get("slo", {})
    health = snapshot.get("health", {})
    models = snapshot.get("models", {})
    lines = [
        f"repro serve {endpoint or snapshot.get('endpoint', '?')} -- "
        f"up {snapshot.get('uptime_s', 0.0):,.1f} s, "
        f"{len(models)} model(s): {', '.join(sorted(models)) or '-'}",
        f"window ({window.get('window_s', 0):g} s): "
        f"{_num(window.get('requests_per_sec'))} req/s  "
        f"{_num(window.get('shots_per_sec'), 0)} shots/s  "
        f"latency p50 {_num(window.get('latency_p50_ms'), 2)} ms  "
        f"p95 {_num(window.get('latency_p95_ms'), 2)}  "
        f"p99 {_num(window.get('latency_p99_ms'), 2)}",
        f"queue: depth now {snapshot.get('inflight', 0)} of "
        f"{snapshot.get('max_queue', 0)} (window p99 "
        f"{_num(window.get('queue_depth_p99'))})  "
        f"batch: shots p50 {_num(window.get('batch_shots_p50'))}, "
        f"requests p50 {_num(window.get('batch_requests_p50'))}",
        f"totals: {_num(counters.get('serve.requests', 0))} requests  "
        f"{_num(counters.get('serve.shots', 0))} shots  "
        f"{_num(counters.get('serve.rejected', 0))} rejected  "
        f"{_num(counters.get('serve.deadline_expired', 0))} deadline  "
        f"{_num(counters.get('serve.internal_errors', 0))} errors",
    ]
    checks = slo.get("checks", [])
    if checks:
        parts = []
        for check in checks:
            parts.append(
                f"{check.get('name', '?')} burn "
                f"{check.get('burn_rate', 0.0):.2f}x "
                f"{check.get('status', '?')}")
        lines.append(f"SLO [{slo.get('verdict', '?')}]: "
                     + "  ".join(parts))
    lines.append(
        f"health: loop lag p99 "
        f"{_num(health.get('loop_lag_p99_ms'), 2)} ms  "
        f"{_num(counters.get('serve.slow_client_disconnects', 0))} "
        f"slow-client disconnects  "
        f"{_num(counters.get('serve.stats_scrapes', 0))} scrapes")
    return "\n".join(lines)
