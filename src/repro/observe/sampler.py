"""Background resource sampler: what a run *costs*, not just how long.

The telemetry layer (PR 2) times spans; this module watches the process
itself while those spans run.  A :class:`ResourceSampler` is a daemon
thread that wakes on a configurable interval and reads ``/proc/self``
(RSS, cumulative CPU time, thread count, open file descriptors) into a
bounded in-memory timeseries.  On hosts without ``/proc`` it degrades
to the stdlib ``resource``/``os.times`` view -- always dependency-free,
never a hard failure.

Two consumers:

* :meth:`ResourceSampler.summary` -- scalar peaks and rates (peak RSS,
  mean CPU utilization, peak thread/FD counts) that the provenance
  layer folds into every :class:`~repro.provenance.records.RunRecord`
  and ``repro report`` renders as the resource column;
* :meth:`ResourceSampler.samples` -- the raw timeseries, which the
  Perfetto exporter (:mod:`repro.observe.perfetto`) turns into counter
  tracks so memory/CPU draw under the span tree in ``ui.perfetto.dev``.

The sampler holds no locks shared with the measured code and allocates
one small tuple per tick, so leaving it on costs well under the 2 %
overhead budget ``benchmarks/test_bench_observe.py`` pins.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = ["ResourceSample", "ResourceSampler", "read_sample"]

#: Default wall-clock seconds between samples.
DEFAULT_INTERVAL_S = 0.05

#: Default timeseries bound (ring buffer semantics: oldest dropped).
DEFAULT_MAX_SAMPLES = 4096

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096
_CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100


@dataclass(frozen=True)
class ResourceSample:
    """One observation of the process, stamped with wall-clock time."""

    wall: float
    """Epoch seconds the sample was taken."""
    rss_bytes: int
    """Resident set size."""
    cpu_s: float
    """Cumulative process CPU time (user + system), seconds."""
    threads: int
    """Live thread count."""
    fds: int
    """Open file descriptors (0 where unreadable)."""

    def to_dict(self) -> dict:
        return {
            "wall": self.wall,
            "rss_bytes": self.rss_bytes,
            "cpu_s": self.cpu_s,
            "threads": self.threads,
            "fds": self.fds,
        }


# ---------------------------------------------------------------------- #
# One-shot readers.  /proc when available, stdlib fallback otherwise.
# ---------------------------------------------------------------------- #
def _read_proc() -> tuple[int, float, int]:
    """(rss_bytes, cpu_s, threads) from ``/proc/self/stat``.

    The comm field (2nd) may contain spaces/parens, so fields are
    counted from the *last* ``)``; utime/stime are fields 14/15 and
    num_threads field 20 (1-indexed per proc(5)).
    """
    with open("/proc/self/stat", "rb") as fh:
        raw = fh.read().decode("ascii", "replace")
    rest = raw[raw.rindex(")") + 2:].split()
    # rest[0] is field 3 ("state"): utime=rest[11], stime=rest[12],
    # num_threads=rest[17], rss pages=rest[21].
    cpu_s = (int(rest[11]) + int(rest[12])) / _CLK_TCK
    threads = int(rest[17])
    rss_bytes = int(rest[21]) * _PAGE_SIZE
    return rss_bytes, cpu_s, threads


def _read_fallback() -> tuple[int, float, int]:
    """Portable stand-in when ``/proc`` is unavailable."""
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    # ru_maxrss is KiB on Linux, bytes on macOS; Linux has /proc, so
    # the KiB interpretation only matters as a lower-fidelity fallback.
    rss_bytes = int(usage.ru_maxrss) * 1024
    times = os.times()
    return rss_bytes, times.user + times.system, threading.active_count()


def _count_fds() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return 0


def read_sample() -> ResourceSample:
    """One immediate observation of the current process."""
    try:
        rss, cpu, threads = _read_proc()
    except (OSError, ValueError, IndexError):
        rss, cpu, threads = _read_fallback()
    return ResourceSample(
        wall=time.time(),
        rss_bytes=rss,
        cpu_s=cpu,
        threads=threads,
        fds=_count_fds(),
    )


# ---------------------------------------------------------------------- #
# The sampler thread
# ---------------------------------------------------------------------- #
class ResourceSampler:
    """Periodic :func:`read_sample` into a bounded timeseries.

    Use as a context manager (or ``start()``/``stop()``)::

        with ResourceSampler(interval_s=0.05) as sampler:
            run_experiment()
        print(sampler.summary()["peak_rss_bytes"])

    ``stop()`` always takes one final sample, so even a run shorter
    than the interval yields a start/end pair and a meaningful CPU
    utilization.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 max_samples: int = DEFAULT_MAX_SAMPLES):
        if not interval_s > 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples!r}")
        self.interval_s = float(interval_s)
        self.max_samples = int(max_samples)
        self._samples: list[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._dropped = 0

    # -------------------------------------------------------------- #
    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._record(read_sample())
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> "ResourceSampler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._record(read_sample())
        return self

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        return self._thread is not None

    # -------------------------------------------------------------- #
    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._record(read_sample())

    def _record(self, sample: ResourceSample) -> None:
        self._samples.append(sample)
        if len(self._samples) > self.max_samples:
            # Drop every other retained sample: the series stays bounded
            # and evenly thinned instead of forgetting the run's start.
            self._samples = self._samples[::2]
            self._dropped += 1

    # -------------------------------------------------------------- #
    @property
    def samples(self) -> list[ResourceSample]:
        """The retained timeseries, oldest first (snapshot copy)."""
        return list(self._samples)

    def summary(self) -> dict:
        """Scalar peaks/rates for the run ledger; {} with no samples."""
        samples = self._samples
        if not samples:
            return {}
        first, last = samples[0], samples[-1]
        wall_s = max(0.0, last.wall - first.wall)
        cpu_delta = max(0.0, last.cpu_s - first.cpu_s)
        return {
            "peak_rss_bytes": max(s.rss_bytes for s in samples),
            "mean_rss_bytes": int(
                sum(s.rss_bytes for s in samples) / len(samples)),
            "cpu_s": cpu_delta,
            "cpu_utilization": cpu_delta / wall_s if wall_s > 0 else 0.0,
            "peak_threads": max(s.threads for s in samples),
            "peak_fds": max(s.fds for s in samples),
            "wall_s": wall_s,
            "samples": len(samples),
            "interval_s": self.interval_s,
            "thinned": self._dropped,
        }
