"""Readout datasets: calibration + evaluation shots packaged for the
classifiers and the SoC kernels (Fig. 2(a) data products)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quantum.backend import QuantumBackend

__all__ = ["ReadoutDataset", "generate_dataset"]


@dataclass
class ReadoutDataset:
    """One experiment's worth of readout data.

    ``calibration_centers``: (nq, 2, 2) centers estimated from calibration
    shots (what the classifiers train on -- *not* the ground truth).
    ``states``: (n_shots, nq) prepared states; ``points``: matching I/Q.
    """

    backend: QuantumBackend
    calibration_centers: np.ndarray
    states: np.ndarray
    points: np.ndarray

    @property
    def n_qubits(self) -> int:
        return self.backend.n_qubits

    @property
    def n_measurements(self) -> int:
        return self.states.size

    def interleaved(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten shot-major: (qubit idx, truth labels, I/Q points).

        This is the layout the SoC kernels and
        ``classify_interleaved`` consume (qubit index cycles fastest).
        """
        n_shots, nq = self.states.shape
        qubit = np.tile(np.arange(nq), n_shots)
        truth = self.states.reshape(-1)
        pts = self.points.reshape(-1, 2)
        return qubit, truth, pts


def generate_dataset(
    backend: QuantumBackend,
    n_shots: int = 256,
    n_calibration_shots: int = 1024,
    seed: int | None = None,
) -> ReadoutDataset:
    """Calibrate, then measure random prepared states."""
    shots0, shots1 = backend.calibration_shots(n_calibration_shots)
    centers = np.stack(
        [shots0.mean(axis=1), shots1.mean(axis=1)], axis=1
    )
    states, points = backend.random_shots(n_shots, seed=seed)
    return ReadoutDataset(
        backend=backend,
        calibration_centers=centers,
        states=states,
        points=points,
    )
