"""Synthetic superconducting-qubit backend: the IBM-Falcon substitute.

The paper measures 27 qubits of an IBM Falcon processor through qiskit;
those cloud services are not available offline, so this module generates
statistically equivalent readout:

* each qubit has two I/Q plane "blobs" -- the mean signal for |0> and
  |1> with Gaussian scatter -- at a random angle and separation, like the
  pairs of black/gray dots in Fig. 2(a);
* readout assignment fidelity per qubit falls in the Falcon's typical
  97-99 % band (set by the separation-to-sigma ratio);
* decoherence: state fidelity decays as exp(-t/T2) with the paper's
  measured T2 ~ 110 us (Fig. 2(b)).

Everything is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QubitReadoutModel", "QuantumBackend", "falcon_backend"]

#: The paper's measured decoherence time on the IBM Falcon (s).
FALCON_T2 = 110e-6

#: Falcon qubit count (27-qubit processor of Fig. 2(a)).
FALCON_QUBITS = 27


@dataclass(frozen=True)
class QubitReadoutModel:
    """I/Q readout statistics of one qubit."""

    center_0: tuple[float, float]
    center_1: tuple[float, float]
    sigma: float

    @property
    def separation(self) -> float:
        d = np.subtract(self.center_1, self.center_0)
        return float(np.hypot(*d))

    @property
    def expected_fidelity(self) -> float:
        """Analytic single-shot assignment fidelity (2-D Gaussian)."""
        from scipy.stats import norm

        return float(norm.cdf(self.separation / (2 * self.sigma)))


@dataclass
class QuantumBackend:
    """A collection of qubits with readout and decoherence models."""

    qubits: list[QubitReadoutModel]
    t2: float = FALCON_T2
    seed: int = 0
    _rng: np.ndarray = field(default=None, repr=False)  # type: ignore

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    @property
    def centers(self) -> np.ndarray:
        """(n_qubits, 2, 2) center array -- the calibration ground truth."""
        return np.array(
            [[q.center_0, q.center_1] for q in self.qubits], dtype=float
        )

    # ------------------------------------------------------------------ #
    def measure(
        self, states: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Readout signals for prepared states.

        ``states``: (n_shots, n_qubits) of 0/1.  Returns I/Q points of
        shape (n_shots, n_qubits, 2).
        """
        rng = rng or self._rng
        states = np.asarray(states, dtype=int)
        if states.ndim != 2 or states.shape[1] != self.n_qubits:
            raise ValueError(
                f"states must have shape (n_shots, {self.n_qubits})"
            )
        centers = self.centers  # (nq, 2, 2)
        means = centers[np.arange(self.n_qubits)[None, :], states]
        noise = rng.normal(
            0.0,
            [[q.sigma] for q in self.qubits],
            (states.shape[0], self.n_qubits, 2),
        )
        return means + noise

    def calibration_shots(
        self, n_shots: int = 1024
    ) -> tuple[np.ndarray, np.ndarray]:
        """The paper's calibration procedure: measure all-|0> then all-|1>.

        Returns (shots_0, shots_1), each (n_qubits, n_shots, 2).
        """
        zeros = self.measure(np.zeros((n_shots, self.n_qubits), dtype=int))
        ones = self.measure(np.ones((n_shots, self.n_qubits), dtype=int))
        return zeros.transpose(1, 0, 2), ones.transpose(1, 0, 2)

    def random_shots(
        self, n_shots: int, seed: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Random prepared states + their readout.

        Returns (states (n_shots, nq), points (n_shots, nq, 2)).
        """
        rng = np.random.default_rng(self.seed + 1 if seed is None else seed)
        states = rng.integers(0, 2, (n_shots, self.n_qubits))
        return states, self.measure(states, rng=rng)

    # ------------------------------------------------------------------ #
    def state_fidelity(self, t: np.ndarray | float) -> np.ndarray:
        """Quantum-state fidelity after computation time ``t`` (Fig. 2(b)):
        exponential decay with the backend's T2."""
        return np.exp(-np.asarray(t, dtype=float) / self.t2)

    def time_budget(self) -> float:
        """The classification deadline: the decoherence time (Fig. 2(c))."""
        return self.t2


def falcon_backend(
    n_qubits: int = FALCON_QUBITS,
    seed: int = 27,
    fidelity_band: tuple[float, float] = (0.97, 0.995),
) -> QuantumBackend:
    """Build a Falcon-like backend (default: the paper's 27 qubits).

    Works for any qubit count -- the Fig. 7 scaling study builds
    thousands-of-qubit variants of the same model.
    """
    from scipy.stats import norm

    rng = np.random.default_rng(seed)
    qubits = []
    for _ in range(n_qubits):
        angle = rng.uniform(0, 2 * np.pi)
        radius = rng.uniform(0.4, 0.9)
        mid_i = rng.uniform(-0.7, 0.7)
        mid_q = rng.uniform(-0.7, 0.7)
        c0 = (mid_i - radius * np.cos(angle), mid_q - radius * np.sin(angle))
        c1 = (mid_i + radius * np.cos(angle), mid_q + radius * np.sin(angle))
        fidelity = rng.uniform(*fidelity_band)
        # Invert the fidelity formula to pick sigma.
        z = norm.ppf(fidelity)
        sigma = float(np.hypot(*(np.subtract(c1, c0)))) / (2 * z)
        qubits.append(QubitReadoutModel(c0, c1, sigma))
    return QuantumBackend(qubits=qubits, seed=seed)
