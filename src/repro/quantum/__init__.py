"""Quantum substrate: synthetic superconducting-qubit readout.

Replaces the paper's IBM Falcon / qiskit data source (Fig. 2): per-qubit
I/Q readout blobs, calibration-shot generation, decoherence decay with
T2 ~ 110 us, and arbitrary qubit counts for the Fig. 7 scaling study.
"""

from repro.quantum.backend import (
    FALCON_QUBITS,
    FALCON_T2,
    QuantumBackend,
    QubitReadoutModel,
    falcon_backend,
)
from repro.quantum.readout import ReadoutDataset, generate_dataset

__all__ = [
    "FALCON_QUBITS",
    "FALCON_T2",
    "QuantumBackend",
    "QubitReadoutModel",
    "ReadoutDataset",
    "falcon_backend",
    "generate_dataset",
]
