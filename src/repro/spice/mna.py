"""Modified nodal analysis: matrix assembly for the nonlinear solver.

The MNA unknown vector is ``[node voltages..., source branch currents...]``.
Nonlinear FinFETs are linearized around the current guess with a standard
Norton companion model; their I-V and derivatives are evaluated *batched
per model object* so a whole cell costs one vectorized compact-model call
per Newton iteration instead of one call per transistor.
"""

from __future__ import annotations

import numpy as np

from repro.spice.netlist import GROUND_NAMES, Circuit

__all__ = ["MNASystem"]

#: Finite-difference step for device linearization (V).
_DERIV_STEP = 1e-5

#: Conductance from every node to ground, aiding DC convergence and making
#: capacitor-only nodes non-singular.
GMIN_DEFAULT = 1e-12


class MNASystem:
    """Precomputed index maps and stamping routines for one circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.nodes = circuit.node_names()
        self._index = {name: i for i, name in enumerate(self.nodes)}
        for g in GROUND_NAMES:
            self._index[g] = -1
        self.n_nodes = len(self.nodes)
        self.n_sources = len(circuit.sources)
        self.dim = self.n_nodes + self.n_sources

        # Static (bias-independent) stamps: resistors and source incidence.
        self._static = np.zeros((self.dim, self.dim))
        for r in circuit.resistors:
            g = 1.0 / r.resistance
            self._stamp_conductance(self._static, r.n1, r.n2, g)
        for k, src in enumerate(circuit.sources):
            row = self.n_nodes + k
            for node, sign in ((src.pos, 1.0), (src.neg, -1.0)):
                i = self.index(node)
                if i >= 0:
                    self._static[i, row] += sign
                    self._static[row, i] += sign

        # Group FinFETs by model object for batched evaluation.
        self._fet_groups: list[tuple[object, list[int], list[int], list[int]]] = []
        by_model: dict[int, list] = {}
        for fet in circuit.finfets:
            by_model.setdefault(id(fet.model), []).append(fet)
        for fets in by_model.values():
            model = fets[0].model
            d = [self.index(f.drain) for f in fets]
            g = [self.index(f.gate) for f in fets]
            s = [self.index(f.source) for f in fets]
            self._fet_groups.append((model, d, g, s))

    # ------------------------------------------------------------------ #
    def index(self, node: str) -> int:
        """Return the matrix row of a node (-1 for ground)."""
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def _stamp_conductance(
        self, matrix: np.ndarray, n1: str | int, n2: str | int, g: float
    ) -> None:
        i = self.index(n1) if isinstance(n1, str) else n1
        j = self.index(n2) if isinstance(n2, str) else n2
        if i >= 0:
            matrix[i, i] += g
        if j >= 0:
            matrix[j, j] += g
        if i >= 0 and j >= 0:
            matrix[i, j] -= g
            matrix[j, i] -= g

    def _voltage(self, v: np.ndarray, idx: int) -> float | np.ndarray:
        return v[idx] if idx >= 0 else 0.0

    # ------------------------------------------------------------------ #
    def assemble(
        self,
        v_guess: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Build the linearized system ``A x = z`` around ``v_guess``.

        ``cap_companion`` carries per-capacitor (geq, ieq) arrays from the
        transient integrator; ``None`` means DC (capacitors open).
        ``source_scale`` multiplies every independent source value -- the
        continuation parameter for source stepping.
        """
        a = self._static.copy()
        z = np.zeros(self.dim)

        # gmin to ground on every node.
        for i in range(self.n_nodes):
            a[i, i] += gmin

        # Sources: branch equation V(pos) - V(neg) = value(t).
        for k, src in enumerate(self.circuit.sources):
            z[self.n_nodes + k] = source_scale * src.value(t)

        # Capacitors as Norton companions (transient only).
        if cap_companion is not None:
            geq, ieq = cap_companion
            for c, g, i_eq in zip(self.circuit.capacitors, geq, ieq):
                self._stamp_conductance(a, c.n1, c.n2, g)
                i = self.index(c.n1)
                j = self.index(c.n2)
                if i >= 0:
                    z[i] -= i_eq
                if j >= 0:
                    z[j] += i_eq

        # FinFETs: batched linearization.
        temp = self.circuit.temperature_k
        for model, d_idx, g_idx, s_idx in self._fet_groups:
            vd = np.array([self._voltage(v_guess, i) for i in d_idx])
            vg = np.array([self._voltage(v_guess, i) for i in g_idx])
            vs = np.array([self._voltage(v_guess, i) for i in s_idx])
            vgs = vg - vs
            vds = vd - vs
            n = len(d_idx)
            # One vectorized call: base point plus two perturbed points.
            vgs_all = np.concatenate([vgs, vgs + _DERIV_STEP, vgs])
            vds_all = np.concatenate([vds, vds, vds + _DERIV_STEP])
            ids_all = np.asarray(model.ids(vgs_all, vds_all, temp))
            i0 = ids_all[:n]
            gm = (ids_all[n : 2 * n] - i0) / _DERIV_STEP
            gds = (ids_all[2 * n :] - i0) / _DERIV_STEP
            # Keep the Jacobian positive semi-definite-ish: tiny negative
            # numerical slopes are clipped.
            gm = np.maximum(gm, 0.0)
            gds = np.maximum(gds, 1e-15)
            ieq = i0 - gm * vgs - gds * vds
            for k in range(n):
                di, gi, si = d_idx[k], g_idx[k], s_idx[k]
                if di >= 0:
                    if gi >= 0:
                        a[di, gi] += gm[k]
                    if di >= 0:
                        a[di, di] += gds[k]
                    if si >= 0:
                        a[di, si] -= gm[k] + gds[k]
                    z[di] -= ieq[k]
                if si >= 0:
                    if gi >= 0:
                        a[si, gi] -= gm[k]
                    if di >= 0:
                        a[si, di] -= gds[k]
                    a[si, si] += gm[k] + gds[k]
                    z[si] += ieq[k]
        return a, z

    def device_currents(self, v: np.ndarray) -> dict[str, float]:
        """Evaluate every FinFET's drain current at solution ``v``."""
        temp = self.circuit.temperature_k
        out: dict[str, float] = {}
        pos = 0
        for model, d_idx, g_idx, s_idx in self._fet_groups:
            vd = np.array([self._voltage(v, i) for i in d_idx])
            vg = np.array([self._voltage(v, i) for i in g_idx])
            vs = np.array([self._voltage(v, i) for i in s_idx])
            ids = np.asarray(model.ids(vg - vs, vd - vs, temp))
            group_fets = [
                f for f in self.circuit.finfets if id(f.model) == id(model)
            ]
            for fet, current in zip(group_fets, ids):
                out[fet.name] = float(current)
            pos += len(d_idx)
        return out
