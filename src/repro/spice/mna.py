"""Modified nodal analysis: matrix assembly for the nonlinear solver.

The MNA unknown vector is ``[node voltages..., source branch currents...]``.
Nonlinear FinFETs are linearized around the current guess with a standard
Norton companion model; their I-V and derivatives are evaluated through a
*stacked* evaluator (per-device parameter arrays, see
``repro.device.finfet.stack_models``) so a whole cell costs one vectorized
compact-model call per Newton iteration instead of one call per transistor
or per model group.

Two assembly kernels are provided:

* ``compiled`` (default) -- every stamp is compiled once in ``__init__``
  into flat scatter-index/value arrays (static conductances, the gmin
  diagonal, capacitor companions, per-device FinFET entry coefficients
  with ground masked out at compile time).  ``assemble`` is then a
  handful of ``np.add.at`` scatters plus one stacked compact-model call
  for the whole circuit -- no Python loop over devices, capacitors, or
  nodes per Newton iteration.  The compiled kernel also exposes
  :meth:`residual` (the exact nonlinear residual from a single n-point
  model call) and :meth:`rhs` (the RHS with frozen device companions),
  which together make the solver's modified-Newton bypass iterations
  free of compact-model calls entirely.
* ``reference`` -- the original per-element Python stamping loop,
  retained verbatim for kernel-equivalence tests and the speedup
  benchmark (``benchmarks/test_bench_spice_kernel.py``).

Both kernels stamp the same terms; any difference is floating-point
summation order (~1 ulp), which the equivalence suite pins.
"""

from __future__ import annotations

import numpy as np

from repro.device.finfet import stack_models
from repro.errors import ConfigError, NetlistError
from repro.spice.netlist import GROUND_NAMES, Circuit

__all__ = ["MNASystem", "ReplicatedMNASystem"]

#: Finite-difference step for device linearization (V).
_DERIV_STEP = 1e-5

#: Conductance from every node to ground, aiding DC convergence and making
#: capacitor-only nodes non-singular.
GMIN_DEFAULT = 1e-12

#: Per-device companion stamp pattern: (row, col, gm coeff, gds coeff)
#: selectors into the (drain, gate, source) index triple.  Ground rows and
#: columns are masked out at compile time.
_FET_MATRIX_PATTERN = (
    ("d", "g", 1.0, 0.0),
    ("d", "d", 0.0, 1.0),
    ("d", "s", -1.0, -1.0),
    ("s", "g", -1.0, 0.0),
    ("s", "d", 0.0, -1.0),
    ("s", "s", 1.0, 1.0),
)


class _FetGroup:
    """One model object's devices: batched-evaluation metadata."""

    __slots__ = ("model", "sl", "d", "g", "s", "names")

    def __init__(self, model, sl, d, g, s, names):
        self.model = model
        self.sl = sl
        self.d = d
        self.g = g
        self.s = s
        self.names = names


class MNASystem:
    """Precomputed index maps and stamping routines for one circuit.

    ``kernel`` selects the assembly implementation: ``"compiled"``
    (vectorized scatter kernel, default) or ``"reference"`` (the retained
    per-element loop).  Both produce the same ``A, z`` up to summation
    order.
    """

    def __init__(self, circuit: Circuit, kernel: str = "compiled"):
        if kernel not in ("compiled", "reference"):
            raise ConfigError(f"unknown MNA kernel {kernel!r}",
                              field="kernel")
        self.kernel = kernel
        self.circuit = circuit
        self.nodes = circuit.node_names()
        self._index = {name: i for i, name in enumerate(self.nodes)}
        for g in GROUND_NAMES:
            self._index[g] = -1
        self.n_nodes = len(self.nodes)
        self.n_sources = len(circuit.sources)
        self.dim = self.n_nodes + self.n_sources

        #: Jacobian/LU reuse state installed by the solver (kept here so
        #: the solver's internal call signatures stay monkeypatch-stable).
        self.jacobian_cache = None
        #: Last (gmin, geq-array, matrix) base bake; see _base_matrix.
        self._baked = None

        # Static (bias-independent) stamps: resistors and source incidence.
        self._static = np.zeros((self.dim, self.dim))
        for r in circuit.resistors:
            g = 1.0 / r.resistance
            self._stamp_conductance(self._static, r.n1, r.n2, g)
        for k, src in enumerate(circuit.sources):
            row = self.n_nodes + k
            for node, sign in ((src.pos, 1.0), (src.neg, -1.0)):
                i = self.index(node)
                if i >= 0:
                    self._static[i, row] += sign
                    self._static[row, i] += sign

        # ------------------------------------------------------------- #
        # Compile-once scatter indices for the vectorized kernel.
        # ------------------------------------------------------------- #
        dim = self.dim
        #: Flat indices of the node-diagonal entries (gmin stamp).
        self._diag_flat = np.arange(self.n_nodes) * (dim + 1)
        #: RHS rows of the source branch equations.
        self._src_rows = self.n_nodes + np.arange(self.n_sources)

        # Capacitors: per-cap terminal indices (-1 = ground) plus the
        # masked scatter pattern for the four conductance entries and the
        # two RHS entries of each companion.
        caps = circuit.capacitors
        self._cap_i = np.array([self.index(c.n1) for c in caps], dtype=int)
        self._cap_j = np.array([self.index(c.n2) for c in caps], dtype=int)
        mat_flat, mat_sign, mat_k = [], [], []
        rhs_row, rhs_sign, rhs_k = [], [], []
        for k, (i, j) in enumerate(zip(self._cap_i, self._cap_j)):
            for r, c, sign in ((i, i, 1.0), (j, j, 1.0),
                               (i, j, -1.0), (j, i, -1.0)):
                if r >= 0 and c >= 0:
                    mat_flat.append(r * dim + c)
                    mat_sign.append(sign)
                    mat_k.append(k)
            if i >= 0:
                rhs_row.append(i)
                rhs_sign.append(-1.0)
                rhs_k.append(k)
            if j >= 0:
                rhs_row.append(j)
                rhs_sign.append(1.0)
                rhs_k.append(k)
        self._cap_mat_flat = np.array(mat_flat, dtype=int)
        self._cap_mat_sign = np.array(mat_sign)
        self._cap_mat_k = np.array(mat_k, dtype=int)
        self._cap_rhs_row = np.array(rhs_row, dtype=int)
        self._cap_rhs_sign = np.array(rhs_sign)
        self._cap_rhs_k = np.array(rhs_k, dtype=int)

        # FinFETs: group by model object for batched evaluation, with one
        # global device ordering so all groups share one scatter pass.
        by_model: dict[int, list] = {}
        for fet in circuit.finfets:
            by_model.setdefault(id(fet.model), []).append(fet)
        self._groups: list[_FetGroup] = []
        pos = 0
        for fets in by_model.values():
            d = np.array([self.index(f.drain) for f in fets], dtype=int)
            g = np.array([self.index(f.gate) for f in fets], dtype=int)
            s = np.array([self.index(f.source) for f in fets], dtype=int)
            sl = slice(pos, pos + len(fets))
            self._groups.append(
                _FetGroup(fets[0].model, sl, d, g, s,
                          tuple(f.name for f in fets))
            )
            pos += len(fets)
        self._n_fets = pos
        self.n_fets = pos
        if pos:
            self._fet_d = np.concatenate([grp.d for grp in self._groups])
            self._fet_g = np.concatenate([grp.g for grp in self._groups])
            self._fet_s = np.concatenate([grp.s for grp in self._groups])
            # Stacked evaluators: one compact-model call for the whole
            # circuit, with per-device parameter/derived arrays.  The
            # 3x-tiled variant serves the finite-difference linearization
            # layout [base | vgs+step | vds+step].
            models = [grp.model for grp in self._groups]
            counts = [grp.sl.stop - grp.sl.start for grp in self._groups]
            self._stack1 = stack_models(models, counts, tile=1)
            self._stack3 = stack_models(models, counts, tile=3)
        else:
            self._fet_d = self._fet_g = self._fet_s = np.empty(0, dtype=int)
            self._stack1 = self._stack3 = None

        mat_flat, mat_cgm, mat_cgds, mat_k = [], [], [], []
        rhs_row, rhs_sign, rhs_k = [], [], []
        for k in range(pos):
            terminal = {"d": self._fet_d[k], "g": self._fet_g[k],
                        "s": self._fet_s[k]}
            for rt, ct, cgm, cgds in _FET_MATRIX_PATTERN:
                r, c = terminal[rt], terminal[ct]
                if r >= 0 and c >= 0:
                    mat_flat.append(r * dim + c)
                    mat_cgm.append(cgm)
                    mat_cgds.append(cgds)
                    mat_k.append(k)
            if terminal["d"] >= 0:
                rhs_row.append(terminal["d"])
                rhs_sign.append(-1.0)
                rhs_k.append(k)
            if terminal["s"] >= 0:
                rhs_row.append(terminal["s"])
                rhs_sign.append(1.0)
                rhs_k.append(k)
        self._fet_mat_flat = np.array(mat_flat, dtype=int)
        self._fet_mat_cgm = np.array(mat_cgm)
        self._fet_mat_cgds = np.array(mat_cgds)
        self._fet_mat_k = np.array(mat_k, dtype=int)
        self._fet_rhs_row = np.array(rhs_row, dtype=int)
        self._fet_rhs_sign = np.array(rhs_sign)
        self._fet_rhs_k = np.array(rhs_k, dtype=int)

    # ------------------------------------------------------------------ #
    def index(self, node: str) -> int:
        """Return the matrix row of a node (-1 for ground)."""
        try:
            return self._index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}",
                               element=node) from None

    def _stamp_conductance(
        self, matrix: np.ndarray, n1: str | int, n2: str | int, g: float
    ) -> None:
        i = self.index(n1) if isinstance(n1, str) else n1
        j = self.index(n2) if isinstance(n2, str) else n2
        if i >= 0:
            matrix[i, i] += g
        if j >= 0:
            matrix[j, j] += g
        if i >= 0 and j >= 0:
            matrix[i, j] -= g
            matrix[j, i] -= g

    def _voltage(self, v: np.ndarray, idx: int) -> float | np.ndarray:
        return v[idx] if idx >= 0 else 0.0

    def _extended(self, v: np.ndarray) -> np.ndarray:
        """Solution vector with a trailing 0.0 so index -1 reads ground."""
        return np.append(v, 0.0)

    def _source_values(self, t: float) -> np.ndarray:
        return np.array([src.value(t) for src in self.circuit.sources])

    def cap_voltages(self, v: np.ndarray) -> np.ndarray:
        """Per-capacitor branch voltages v(n1) - v(n2) at solution ``v``."""
        v_ext = self._extended(v)
        return v_ext[self._cap_i] - v_ext[self._cap_j]

    # ------------------------------------------------------------------ #
    def assemble(
        self,
        v_guess: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Build the linearized system ``A x = z`` around ``v_guess``.

        ``cap_companion`` carries per-capacitor (geq, ieq) arrays from the
        transient integrator; ``None`` means DC (capacitors open).
        ``source_scale`` multiplies every independent source value -- the
        continuation parameter for source stepping.
        """
        if self.kernel == "reference":
            return self.assemble_reference(v_guess, t, gmin, cap_companion,
                                           source_scale)
        return self.assemble_compiled(v_guess, t, gmin, cap_companion,
                                      source_scale)

    def assemble_compiled(
        self,
        v_guess: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized assembly: precompiled scatters, no per-element loops."""
        a, z, _ = self.assemble_with_companions(v_guess, t, gmin,
                                                cap_companion, source_scale)
        return a, z

    def assemble_with_companions(
        self,
        v_guess: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compiled assembly returning ``(A, z, fet_ieq)``.

        ``fet_ieq`` is the per-device Norton companion current used for
        the device RHS stamps.  The solver caches it next to the LU
        factorization: together with :meth:`rhs` it lets a modified-Newton
        bypass iteration rebuild ``z`` for a new timestep *without any
        compact-model call* (the matrix is frozen, so only sources and
        capacitor companions change).
        """
        a = self._base_matrix(gmin, cap_companion)
        a_flat = a.ravel()  # view into the copy
        z = np.zeros(self.dim)

        # Sources: branch equation V(pos) - V(neg) = value(t).
        if self.n_sources:
            z[self._src_rows] = source_scale * self._source_values(t)

        # Capacitor companion currents (transient only).
        if cap_companion is not None and self._cap_i.size:
            ieq = np.asarray(cap_companion[1])
            np.add.at(z, self._cap_rhs_row,
                      self._cap_rhs_sign * ieq[self._cap_rhs_k])

        # FinFETs: batched linearization, one scatter for every device.
        ieq_f = np.empty(0)
        if self._n_fets:
            gm, gds, ieq_f = self._device_linearization(v_guess)
            np.add.at(
                a_flat, self._fet_mat_flat,
                self._fet_mat_cgm * gm[self._fet_mat_k]
                + self._fet_mat_cgds * gds[self._fet_mat_k],
            )
            np.add.at(z, self._fet_rhs_row,
                      self._fet_rhs_sign * ieq_f[self._fet_rhs_k])
        return a, z, ieq_f

    def _base_matrix(self, gmin: float, cap_companion) -> np.ndarray:
        """Static + gmin + capacitor-geq matrix, baked across iterations.

        Within one transient the integrator passes the *same* geq array
        object every step and gmin only changes on escalation, so the
        bias-independent part of ``A`` is cached keyed on
        ``(gmin, id(geq))`` and re-copied instead of re-scattered.  The
        bake performs the identical additions in the identical order, so
        the result is bit-equal to scattering afresh.
        """
        if cap_companion is None:
            a = self._static.copy()
            a.ravel()[self._diag_flat] += gmin
            return a
        geq = np.asarray(cap_companion[0])
        baked = self._baked
        if baked is not None and baked[0] == gmin and baked[1] is geq:
            return baked[2].copy()
        a = self._static.copy()
        a_flat = a.ravel()
        a_flat[self._diag_flat] += gmin
        if self._cap_i.size:
            np.add.at(a_flat, self._cap_mat_flat,
                      self._cap_mat_sign * geq[self._cap_mat_k])
        self._baked = (gmin, geq, a)
        return a.copy()

    def rhs(
        self,
        t: float,
        cap_companion: tuple[np.ndarray, np.ndarray] | None,
        source_scale: float,
        fet_ieq: np.ndarray,
    ) -> np.ndarray:
        """RHS vector ``z`` with *frozen* device companions ``fet_ieq``.

        Sources and capacitor companions are re-stamped for the new
        timestep; the device Norton currents are taken verbatim from a
        previous linearization.  Paired with that linearization's cached
        LU this is the zero-model-call bypass iteration of the
        modified-Newton solver.
        """
        z = np.zeros(self.dim)
        if self.n_sources:
            z[self._src_rows] = source_scale * self._source_values(t)
        if cap_companion is not None and self._cap_i.size:
            ieq = np.asarray(cap_companion[1])
            np.add.at(z, self._cap_rhs_row,
                      self._cap_rhs_sign * ieq[self._cap_rhs_k])
        if self._n_fets:
            np.add.at(z, self._fet_rhs_row,
                      self._fet_rhs_sign * fet_ieq[self._fet_rhs_k])
        return z

    def _device_linearization(
        self, v_guess: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(gm, gds, ieq) for every FinFET from one stacked model call."""
        temp = self.circuit.temperature_k
        v_ext = self._extended(v_guess)
        vgs = v_ext[self._fet_g] - v_ext[self._fet_s]
        vds = v_ext[self._fet_d] - v_ext[self._fet_s]
        n = self._n_fets
        # One stacked call for the whole circuit: base point plus two
        # perturbed points, all devices at once.
        vgs_all = np.concatenate([vgs, vgs + _DERIV_STEP, vgs])
        vds_all = np.concatenate([vds, vds, vds + _DERIV_STEP])
        ids_all = np.asarray(self._stack3.ids(vgs_all, vds_all, temp))
        i0 = ids_all[:n]
        gm = (ids_all[n : 2 * n] - i0) / _DERIV_STEP
        gds = (ids_all[2 * n :] - i0) / _DERIV_STEP
        # Keep the Jacobian positive semi-definite-ish: tiny negative
        # numerical slopes are clipped.
        gm = np.maximum(gm, 0.0)
        gds = np.maximum(gds, 1e-15)
        ieq = i0 - gm * vgs - gds * vds
        return gm, gds, ieq

    def residual(
        self,
        v: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> np.ndarray:
        """Exact nonlinear residual ``F(v) = A(v) v - z(v)``.

        Because the companion linearization is exact at its expansion
        point, the device contribution collapses to the *actual* drain
        current: one n-point compact-model call per group, no derivative
        perturbations, and no matrix.  This is the cheap inner evaluation
        of the solver's modified-Newton (Jacobian reuse) iterations.
        """
        f = self._static @ v
        f[: self.n_nodes] += gmin * v[: self.n_nodes]
        if self.n_sources:
            f[self._src_rows] -= source_scale * self._source_values(t)
        v_ext = self._extended(v)
        if cap_companion is not None and self._cap_i.size:
            geq, ieq = cap_companion
            i_cap = (np.asarray(geq) * (v_ext[self._cap_i] - v_ext[self._cap_j])
                     + np.asarray(ieq))
            np.add.at(f, self._cap_rhs_row,
                      -self._cap_rhs_sign * i_cap[self._cap_rhs_k])
        if self._n_fets:
            temp = self.circuit.temperature_k
            ids = np.asarray(self._stack1.ids(
                v_ext[self._fet_g] - v_ext[self._fet_s],
                v_ext[self._fet_d] - v_ext[self._fet_s],
                temp,
            ))
            np.add.at(f, self._fet_rhs_row,
                      -self._fet_rhs_sign * ids[self._fet_rhs_k])
        return f

    # ------------------------------------------------------------------ #
    def assemble_reference(
        self,
        v_guess: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seed-kernel assembly: the retained per-element stamping loop."""
        a = self._static.copy()
        z = np.zeros(self.dim)

        # gmin to ground on every node.
        for i in range(self.n_nodes):
            a[i, i] += gmin

        # Sources: branch equation V(pos) - V(neg) = value(t).
        for k, src in enumerate(self.circuit.sources):
            z[self.n_nodes + k] = source_scale * src.value(t)

        # Capacitors as Norton companions (transient only).
        if cap_companion is not None:
            geq, ieq = cap_companion
            for c, g, i_eq in zip(self.circuit.capacitors, geq, ieq):
                self._stamp_conductance(a, c.n1, c.n2, g)
                i = self.index(c.n1)
                j = self.index(c.n2)
                if i >= 0:
                    z[i] -= i_eq
                if j >= 0:
                    z[j] += i_eq

        # FinFETs: batched linearization.
        temp = self.circuit.temperature_k
        for grp in self._groups:
            d_idx, g_idx, s_idx = grp.d, grp.g, grp.s
            vd = np.array([self._voltage(v_guess, i) for i in d_idx])
            vg = np.array([self._voltage(v_guess, i) for i in g_idx])
            vs = np.array([self._voltage(v_guess, i) for i in s_idx])
            vgs = vg - vs
            vds = vd - vs
            n = len(d_idx)
            # One vectorized call: base point plus two perturbed points.
            vgs_all = np.concatenate([vgs, vgs + _DERIV_STEP, vgs])
            vds_all = np.concatenate([vds, vds, vds + _DERIV_STEP])
            ids_all = np.asarray(grp.model.ids(vgs_all, vds_all, temp))
            i0 = ids_all[:n]
            gm = (ids_all[n : 2 * n] - i0) / _DERIV_STEP
            gds = (ids_all[2 * n :] - i0) / _DERIV_STEP
            gm = np.maximum(gm, 0.0)
            gds = np.maximum(gds, 1e-15)
            ieq = i0 - gm * vgs - gds * vds
            for k in range(n):
                di, gi, si = d_idx[k], g_idx[k], s_idx[k]
                if di >= 0:
                    if gi >= 0:
                        a[di, gi] += gm[k]
                    a[di, di] += gds[k]
                    if si >= 0:
                        a[di, si] -= gm[k] + gds[k]
                    z[di] -= ieq[k]
                if si >= 0:
                    if gi >= 0:
                        a[si, gi] -= gm[k]
                    if di >= 0:
                        a[si, di] -= gds[k]
                    a[si, si] += gm[k] + gds[k]
                    z[si] += ieq[k]
        return a, z

    # ------------------------------------------------------------------ #
    def device_currents(self, v: np.ndarray) -> dict[str, float]:
        """Evaluate every FinFET's drain current at solution ``v``.

        Device names were collected per group at compile time, so this is
        one stacked model call plus a zip -- no rescan of the netlist.
        """
        if not self._n_fets:
            return {}
        temp = self.circuit.temperature_k
        v_ext = self._extended(np.asarray(v, dtype=float))
        ids = np.asarray(self._stack1.ids(
            v_ext[self._fet_g] - v_ext[self._fet_s],
            v_ext[self._fet_d] - v_ext[self._fet_s],
            temp,
        ))
        out: dict[str, float] = {}
        for grp in self._groups:
            for name, current in zip(grp.names, ids[grp.sl]):
                out[name] = float(current)
        return out


class ReplicatedMNASystem:
    """G structurally identical circuits tiled into one batched system.

    The replicas of one characterization row (same cell, same stimulus
    edge, different load caps) share one topology, so the compiled
    scatter indices of the single-circuit :class:`MNASystem` are built
    **once** and offset per replica: the system matrix is the
    block-diagonal stack ``A`` of shape ``(G, dim, dim)`` (each block is
    exactly the matrix the single system would assemble for its
    circuit), the RHS is ``(G, dim)``, and every per-replica quantity
    (cap values, source waveforms) lives in a ``(G, ...)`` array.

    All FinFETs across *all replicas* are folded into one
    :class:`~repro.device.finfet._StackedFinFET` (``tile=G`` replicates
    the per-device parameter layout replica-major), so each Newton
    iteration of the batched driver makes ONE compact-model call for the
    whole grid -- the same trick :class:`MNASystem` plays across devices,
    now played across simulations.

    Replica blocks never couple: every method below is elementwise per
    replica, which is what lets the driver evict a failing replica
    without perturbing the others.
    """

    def __init__(self, circuits: list[Circuit]):
        if not circuits:
            raise ConfigError("ReplicatedMNASystem needs at least one "
                              "circuit", field="circuits")
        base = MNASystem(circuits[0], kernel="compiled")
        self.base = base
        self.circuits = list(circuits)
        self._check_structure(circuits)
        g = len(circuits)
        self.n_replicas = g
        self.dim = base.dim
        self.n_nodes = base.n_nodes
        self.n_sources = base.n_sources
        self.n_fets = base.n_fets
        self.nodes = base.nodes
        self.temperature_k = circuits[0].temperature_k

        #: Batched-Jacobian reuse state installed by the solver.
        self.jacobian_cache = None
        self._baked = None

        dim = self.dim
        block = dim * dim
        # Per-replica static stamps: same topology as the base system,
        # per-replica element values (the additions run in the identical
        # order as MNASystem.__init__, so block r is bit-equal to the
        # single system built from circuits[r]).
        self._static = np.zeros((g, dim, dim))
        for r, circ in enumerate(circuits):
            a = self._static[r]
            for res in circ.resistors:
                base._stamp_conductance(a, res.n1, res.n2,
                                        1.0 / res.resistance)
            for k, src in enumerate(circ.sources):
                row = self.n_nodes + k
                for node, sign in ((src.pos, 1.0), (src.neg, -1.0)):
                    i = base.index(node)
                    if i >= 0:
                        a[i, row] += sign
                        a[row, i] += sign

        #: (G, n_caps) capacitances -- the per-replica load values.
        self._cap_c = np.array(
            [[c.capacitance for c in circ.capacitors] for circ in circuits]
        ).reshape(g, len(circuits[0].capacitors))
        self._sources = [circ.sources for circ in circuits]

        # Offset the base scatter arrays per replica: matrix-flat indices
        # shift by r*dim*dim into the raveled (G, dim, dim) stack, RHS
        # rows by r*dim, and per-element gather keys (device index, cap
        # index) by r*(count) into the replica-major value arrays.
        def _tile(idx: np.ndarray, stride: int) -> np.ndarray:
            return (np.tile(idx, g)
                    + np.repeat(np.arange(g) * stride, idx.size))

        n_caps = self._cap_c.shape[1]
        self._cap_mat_flat = _tile(base._cap_mat_flat, block)
        self._cap_mat_sign = np.tile(base._cap_mat_sign, g)
        self._cap_mat_k = _tile(base._cap_mat_k, n_caps)
        self._cap_rhs_row = _tile(base._cap_rhs_row, dim)
        self._cap_rhs_sign = np.tile(base._cap_rhs_sign, g)
        self._cap_rhs_k = _tile(base._cap_rhs_k, n_caps)
        self._fet_mat_flat = _tile(base._fet_mat_flat, block)
        self._fet_mat_cgm = np.tile(base._fet_mat_cgm, g)
        self._fet_mat_cgds = np.tile(base._fet_mat_cgds, g)
        self._fet_mat_k = _tile(base._fet_mat_k, base.n_fets)
        self._fet_rhs_row = _tile(base._fet_rhs_row, dim)
        self._fet_rhs_sign = np.tile(base._fet_rhs_sign, g)
        self._fet_rhs_k = _tile(base._fet_rhs_k, base.n_fets)
        self._src_rows = base._src_rows

        # One stacked evaluator across all replicas: tile=G repeats the
        # base per-device parameter layout replica-major; tile=3*G serves
        # the [base | vgs+step | vds+step] finite-difference layout for
        # the whole grid in one call.
        if base.n_fets:
            models = [grp.model for grp in base._groups]
            counts = [grp.sl.stop - grp.sl.start for grp in base._groups]
            self._stack1 = stack_models(models, counts, tile=g)
            self._stack3 = stack_models(models, counts, tile=3 * g)
        else:
            self._stack1 = self._stack3 = None

    def _check_structure(self, circuits: list[Circuit]) -> None:
        """Replicas must be element-for-element the same topology."""
        ref = circuits[0]
        ref_nodes = ref.node_names()
        for r, circ in enumerate(circuits[1:], start=1):
            if circ.temperature_k != ref.temperature_k:
                raise NetlistError(
                    f"replica {r} temperature {circ.temperature_k} K != "
                    f"replica 0 {ref.temperature_k} K", element=circ.title)
            if circ.node_names() != ref_nodes:
                raise NetlistError(
                    f"replica {r} node set differs from replica 0",
                    element=circ.title)
            pairs = [
                (ref.resistors, circ.resistors,
                 lambda e: (e.name, e.n1, e.n2)),
                (ref.capacitors, circ.capacitors,
                 lambda e: (e.name, e.n1, e.n2)),
                (ref.sources, circ.sources,
                 lambda e: (e.name, e.pos, e.neg)),
                (ref.finfets, circ.finfets,
                 lambda e: (e.name, e.drain, e.gate, e.source)),
            ]
            for ref_elems, elems, keyfn in pairs:
                if [keyfn(e) for e in ref_elems] != [keyfn(e) for e in elems]:
                    raise NetlistError(
                        f"replica {r} element structure differs from "
                        f"replica 0", element=circ.title)
            for ref_fet, fet in zip(ref.finfets, circ.finfets):
                if fet.model is not ref_fet.model:
                    raise NetlistError(
                        f"replica {r} device {fet.name} uses a different "
                        f"model object than replica 0 (replicas must "
                        f"share models for stacked evaluation)",
                        element=fet.name)

    # ------------------------------------------------------------------ #
    def _extended(self, x: np.ndarray) -> np.ndarray:
        """(G, dim+1) view with a trailing 0.0 so index -1 reads ground."""
        return np.concatenate(
            [x, np.zeros((self.n_replicas, 1))], axis=1)

    def source_values(self, t: float) -> np.ndarray:
        """(G, n_sources) source values at time ``t``."""
        return np.array(
            [[src.value(t) for src in srcs] for srcs in self._sources]
        ).reshape(self.n_replicas, self.n_sources)

    def source_grid(self, times: np.ndarray) -> np.ndarray:
        """(n_times, G, n_sources) source values over a whole time grid.

        Waveform objects shared across replicas (the common case: only
        the load differs within a characterization row) are evaluated
        once.  Precomputing the grid up front removes every per-iteration
        Python waveform call from the batched transient driver.
        """
        from repro.spice.sources import waveform_values

        times = np.asarray(times, dtype=float)
        out = np.empty((times.size, self.n_replicas, self.n_sources))
        cache: dict[int, np.ndarray] = {}
        for r, srcs in enumerate(self._sources):
            for k, src in enumerate(srcs):
                wave = src.waveform
                vals = cache.get(id(wave))
                if vals is None:
                    vals = waveform_values(wave, times)
                    cache[id(wave)] = vals
                out[:, r, k] = vals
        return out

    def cap_voltages(self, x: np.ndarray) -> np.ndarray:
        """(G, n_caps) capacitor branch voltages at solution ``x``."""
        v_ext = self._extended(x)
        return v_ext[:, self.base._cap_i] - v_ext[:, self.base._cap_j]

    # ------------------------------------------------------------------ #
    def assemble_with_companions(
        self,
        x: np.ndarray,
        source_values: np.ndarray,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched assembly returning ``(A, z, fet_ieq)``.

        ``x`` is ``(G, dim)``; ``source_values`` is ``(G, n_sources)``
        (see :meth:`source_values` / :meth:`source_grid`);
        ``cap_companion`` carries per-replica ``(geq, ieq)`` arrays of
        shape ``(G, n_caps)``.  Returns ``A`` of shape ``(G, dim, dim)``,
        ``z`` of shape ``(G, dim)`` and the replica-major frozen device
        companions ``fet_ieq`` of shape ``(G * n_fets,)``.
        """
        a = self._base_matrix(gmin, cap_companion)
        a_flat = a.reshape(-1)
        z = np.zeros((self.n_replicas, self.dim))
        if self.n_sources:
            z[:, self._src_rows] = source_scale * source_values
        if cap_companion is not None and self._cap_mat_k.size:
            ieq = np.asarray(cap_companion[1]).reshape(-1)
            np.add.at(z.reshape(-1), self._cap_rhs_row,
                      self._cap_rhs_sign * ieq[self._cap_rhs_k])
        ieq_f = np.empty(0)
        if self.n_fets:
            gm, gds, ieq_f = self._device_linearization(x)
            np.add.at(
                a_flat, self._fet_mat_flat,
                self._fet_mat_cgm * gm[self._fet_mat_k]
                + self._fet_mat_cgds * gds[self._fet_mat_k],
            )
            np.add.at(z.reshape(-1), self._fet_rhs_row,
                      self._fet_rhs_sign * ieq_f[self._fet_rhs_k])
        return a, z, ieq_f

    def _base_matrix(self, gmin: float, cap_companion) -> np.ndarray:
        """Static + gmin + capacitor-geq stack, baked across iterations."""
        if cap_companion is None:
            a = self._static.copy()
            a.reshape(self.n_replicas, -1)[:, self.base._diag_flat] += gmin
            return a
        geq = np.asarray(cap_companion[0])
        baked = self._baked
        if baked is not None and baked[0] == gmin and baked[1] is geq:
            return baked[2].copy()
        a = self._static.copy()
        a.reshape(self.n_replicas, -1)[:, self.base._diag_flat] += gmin
        if self._cap_mat_k.size:
            np.add.at(a.reshape(-1), self._cap_mat_flat,
                      self._cap_mat_sign * geq.reshape(-1)[self._cap_mat_k])
        self._baked = (gmin, geq, a)
        return a.copy()

    def rhs(
        self,
        source_values: np.ndarray,
        cap_companion: tuple[np.ndarray, np.ndarray] | None,
        fet_ieq: np.ndarray,
        source_scale: float = 1.0,
    ) -> np.ndarray:
        """(G, dim) RHS with *frozen* device companions ``fet_ieq``."""
        z = np.zeros((self.n_replicas, self.dim))
        if self.n_sources:
            z[:, self._src_rows] = source_scale * source_values
        if cap_companion is not None and self._cap_mat_k.size:
            ieq = np.asarray(cap_companion[1]).reshape(-1)
            np.add.at(z.reshape(-1), self._cap_rhs_row,
                      self._cap_rhs_sign * ieq[self._cap_rhs_k])
        if self.n_fets:
            np.add.at(z.reshape(-1), self._fet_rhs_row,
                      self._fet_rhs_sign * fet_ieq[self._fet_rhs_k])
        return z

    def _device_linearization(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(gm, gds, ieq), replica-major, from ONE stacked model call."""
        base = self.base
        v_ext = self._extended(x)
        vgs = (v_ext[:, base._fet_g] - v_ext[:, base._fet_s]).reshape(-1)
        vds = (v_ext[:, base._fet_d] - v_ext[:, base._fet_s]).reshape(-1)
        n = vgs.size
        vgs_all = np.concatenate([vgs, vgs + _DERIV_STEP, vgs])
        vds_all = np.concatenate([vds, vds, vds + _DERIV_STEP])
        ids_all = np.asarray(
            self._stack3.ids(vgs_all, vds_all, self.temperature_k))
        i0 = ids_all[:n]
        gm = (ids_all[n: 2 * n] - i0) / _DERIV_STEP
        gds = (ids_all[2 * n:] - i0) / _DERIV_STEP
        gm = np.maximum(gm, 0.0)
        gds = np.maximum(gds, 1e-15)
        ieq = i0 - gm * vgs - gds * vds
        return gm, gds, ieq

    def residual(
        self,
        x: np.ndarray,
        t: float,
        gmin: float = GMIN_DEFAULT,
        cap_companion: tuple[np.ndarray, np.ndarray] | None = None,
        source_scale: float = 1.0,
    ) -> np.ndarray:
        """(G, dim) exact nonlinear residual ``F(x) = A(x) x - z(x)``."""
        base = self.base
        f = np.einsum("gij,gj->gi", self._static, x)
        f[:, : self.n_nodes] += gmin * x[:, : self.n_nodes]
        if self.n_sources:
            f[:, self._src_rows] -= source_scale * self.source_values(t)
        v_ext = self._extended(x)
        if cap_companion is not None and self._cap_mat_k.size:
            geq, ieq = cap_companion
            i_cap = (np.asarray(geq)
                     * (v_ext[:, base._cap_i] - v_ext[:, base._cap_j])
                     + np.asarray(ieq)).reshape(-1)
            np.add.at(f.reshape(-1), self._cap_rhs_row,
                      -self._cap_rhs_sign * i_cap[self._cap_rhs_k])
        if self.n_fets:
            ids = np.asarray(self._stack1.ids(
                (v_ext[:, base._fet_g] - v_ext[:, base._fet_s]).reshape(-1),
                (v_ext[:, base._fet_d] - v_ext[:, base._fet_s]).reshape(-1),
                self.temperature_k,
            ))
            np.add.at(f.reshape(-1), self._fet_rhs_row,
                      -self._fet_rhs_sign * ids[self._fet_rhs_k])
        return f
