"""Circuit netlist representation for the MNA simulator.

A :class:`Circuit` is a flat bag of elements connected at named nodes.
Node ``"0"`` (alias ``"gnd"``) is ground.  Supported elements:

* :class:`Resistor`, :class:`Capacitor`
* :class:`VoltageSource` (waveform-driven, see :mod:`repro.spice.sources`)
* :class:`FinFETElement` -- a 3-terminal instance of the compact model
  (bulk is tied to source; the FinFET model has no body terminal).

The standard-cell generator in :mod:`repro.cells` builds these circuits
automatically from pull-up/pull-down stack expressions.

Malformed netlists raise :class:`~repro.errors.NetlistError` naming the
offending element -- at construction time for per-element problems
(non-finite or out-of-range values, duplicate names) and from
:meth:`Circuit.validate` for structural ones (dangling nodes,
zero-width devices), which the solver entry points run before any
matrix is assembled so a broken circuit can never converge to a
silently wrong answer through the gmin floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.device.finfet import FinFET
from repro.errors import NetlistError
from repro.spice.sources import DC

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "FinFETElement",
    "GROUND_NAMES",
]

GROUND_NAMES = ("0", "gnd", "GND", "vss", "VSS")
"""Node names treated as the ground reference."""


@dataclass
class Resistor:
    """Linear resistor between ``n1`` and ``n2`` (Ohm)."""

    name: str
    n1: str
    n2: str
    resistance: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.resistance) or self.resistance <= 0:
            raise NetlistError(
                f"{self.name}: resistance must be finite and > 0 "
                f"(got {self.resistance!r})", element=self.name)


@dataclass
class Capacitor:
    """Linear capacitor between ``n1`` and ``n2`` (F)."""

    name: str
    n1: str
    n2: str
    capacitance: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.capacitance) or self.capacitance < 0:
            raise NetlistError(
                f"{self.name}: capacitance must be finite and >= 0 "
                f"(got {self.capacitance!r})", element=self.name)


@dataclass
class VoltageSource:
    """Ideal voltage source from ``pos`` to ``neg`` driven by a waveform."""

    name: str
    pos: str
    neg: str
    waveform: object = field(default_factory=lambda: DC(0.0))

    def value(self, t: float) -> float:
        return float(self.waveform.value(t))


@dataclass
class FinFETElement:
    """FinFET instance: drain / gate / source terminals + a device model.

    The model's intrinsic gate capacitance and drain parasitics are added
    as explicit linear capacitors at build time by
    :meth:`Circuit.add_finfet`, keeping the MNA device evaluation purely
    resistive (standard companion-model practice for a first-order tool).
    """

    name: str
    drain: str
    gate: str
    source: str
    model: FinFET


class Circuit:
    """A flat netlist plus simulation temperature."""

    def __init__(self, title: str = "circuit", temperature_k: float = 300.0):
        self.title = title
        self.temperature_k = temperature_k
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.sources: list[VoltageSource] = []
        self.finfets: list[FinFETElement] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------ #
    def _register(self, name: str) -> None:
        if name in self._names:
            raise NetlistError(f"duplicate element name: {name!r}",
                               element=name)
        self._names.add(name)

    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> Resistor:
        self._register(name)
        r = Resistor(name, n1, n2, resistance)
        self.resistors.append(r)
        return r

    def add_capacitor(
        self, name: str, n1: str, n2: str, capacitance: float
    ) -> Capacitor:
        self._register(name)
        c = Capacitor(name, n1, n2, capacitance)
        self.capacitors.append(c)
        return c

    def add_vsource(
        self, name: str, pos: str, neg: str, waveform: object
    ) -> VoltageSource:
        self._register(name)
        v = VoltageSource(name, pos, neg, waveform)
        self.sources.append(v)
        return v

    def add_finfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        model: FinFET,
        with_parasitics: bool = True,
    ) -> FinFETElement:
        """Add a transistor; optionally attach its parasitic capacitors.

        The gate capacitance is split 50/50 to source and drain (Miller
        approximation good enough for cell-delay work); the junction cap
        goes from drain to ground.
        """
        self._register(name)
        fet = FinFETElement(name, drain, gate, source, model)
        self.finfets.append(fet)
        if with_parasitics:
            cg = model.gate_capacitance()
            self.add_capacitor(f"{name}_cgs", gate, source, cg / 2.0)
            self.add_capacitor(f"{name}_cgd", gate, drain, cg / 2.0)
            self.add_capacitor(f"{name}_cdb", drain, "0", model.drain_capacitance())
        return fet

    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Reject structurally broken circuits with a typed error.

        Checks (all raise :class:`~repro.errors.NetlistError` naming the
        offending element or node):

        * zero/negative-width FinFETs (``nfin <= 0`` or non-positive
          gate length) -- a "device" that conducts nothing;
        * non-finite source values at ``t = 0`` (a NaN drive poisons
          every RHS it touches);
        * dangling nodes: a non-ground node referenced by exactly one
          element pin, where that pin belongs to a *conductive* element
          (resistor or FinFET) and the node is not held by a voltage
          source.  The gmin floor would quietly pin such a node near
          0 V, which is the *silent wrong answer* failure mode -- so it
          is rejected up front.  (A capacitor-only floating node stays
          legal: gmin holding it at 0 V in DC is documented behavior.)

        The solver entry points call this before assembling anything;
        the check is O(elements) and costs microseconds.
        """
        for f in self.finfets:
            p = f.model.params
            if int(getattr(p, "nfin", 0)) <= 0:
                raise NetlistError(
                    f"{f.name}: zero-width device (nfin={p.nfin!r})",
                    element=f.name)
            if not math.isfinite(p.lgate) or p.lgate <= 0:
                raise NetlistError(
                    f"{f.name}: non-physical gate length "
                    f"(lgate={p.lgate!r})", element=f.name)
        for v in self.sources:
            if not math.isfinite(v.value(0.0)):
                raise NetlistError(
                    f"{v.name}: non-finite source value at t=0",
                    element=v.name)
        pins: dict[str, int] = {}
        conductive: set[str] = set()
        held: set[str] = set()
        for r in self.resistors:
            for n in (r.n1, r.n2):
                pins[n] = pins.get(n, 0) + 1
                conductive.add(n)
        for c in self.capacitors:
            for n in (c.n1, c.n2):
                pins[n] = pins.get(n, 0) + 1
        for v in self.sources:
            for n in (v.pos, v.neg):
                pins[n] = pins.get(n, 0) + 1
                held.add(n)
        for f in self.finfets:
            for n in (f.drain, f.gate, f.source):
                pins[n] = pins.get(n, 0) + 1
                conductive.add(n)
        for node, count in pins.items():
            if node in GROUND_NAMES or node in held:
                continue
            if count == 1 and node in conductive:
                raise NetlistError(
                    f"dangling node {node!r}: referenced by exactly one "
                    "element pin and not held by any source",
                    element=node)

    # ------------------------------------------------------------------ #
    def node_names(self) -> list[str]:
        """All non-ground nodes, in deterministic (sorted) order."""
        nodes: set[str] = set()
        for r in self.resistors:
            nodes.update((r.n1, r.n2))
        for c in self.capacitors:
            nodes.update((c.n1, c.n2))
        for v in self.sources:
            nodes.update((v.pos, v.neg))
        for f in self.finfets:
            nodes.update((f.drain, f.gate, f.source))
        return sorted(n for n in nodes if n not in GROUND_NAMES)

    @property
    def element_count(self) -> int:
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.sources)
            + len(self.finfets)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.title!r}, T={self.temperature_k} K, "
            f"{len(self.node_names())} nodes, {self.element_count} elements)"
        )
