"""Circuit netlist representation for the MNA simulator.

A :class:`Circuit` is a flat bag of elements connected at named nodes.
Node ``"0"`` (alias ``"gnd"``) is ground.  Supported elements:

* :class:`Resistor`, :class:`Capacitor`
* :class:`VoltageSource` (waveform-driven, see :mod:`repro.spice.sources`)
* :class:`FinFETElement` -- a 3-terminal instance of the compact model
  (bulk is tied to source; the FinFET model has no body terminal).

The standard-cell generator in :mod:`repro.cells` builds these circuits
automatically from pull-up/pull-down stack expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.finfet import FinFET
from repro.spice.sources import DC

__all__ = [
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "FinFETElement",
    "GROUND_NAMES",
]

GROUND_NAMES = ("0", "gnd", "GND", "vss", "VSS")
"""Node names treated as the ground reference."""


@dataclass
class Resistor:
    """Linear resistor between ``n1`` and ``n2`` (Ohm)."""

    name: str
    n1: str
    n2: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"{self.name}: resistance must be > 0")


@dataclass
class Capacitor:
    """Linear capacitor between ``n1`` and ``n2`` (F)."""

    name: str
    n1: str
    n2: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ValueError(f"{self.name}: capacitance must be >= 0")


@dataclass
class VoltageSource:
    """Ideal voltage source from ``pos`` to ``neg`` driven by a waveform."""

    name: str
    pos: str
    neg: str
    waveform: object = field(default_factory=lambda: DC(0.0))

    def value(self, t: float) -> float:
        return float(self.waveform.value(t))


@dataclass
class FinFETElement:
    """FinFET instance: drain / gate / source terminals + a device model.

    The model's intrinsic gate capacitance and drain parasitics are added
    as explicit linear capacitors at build time by
    :meth:`Circuit.add_finfet`, keeping the MNA device evaluation purely
    resistive (standard companion-model practice for a first-order tool).
    """

    name: str
    drain: str
    gate: str
    source: str
    model: FinFET


class Circuit:
    """A flat netlist plus simulation temperature."""

    def __init__(self, title: str = "circuit", temperature_k: float = 300.0):
        self.title = title
        self.temperature_k = temperature_k
        self.resistors: list[Resistor] = []
        self.capacitors: list[Capacitor] = []
        self.sources: list[VoltageSource] = []
        self.finfets: list[FinFETElement] = []
        self._names: set[str] = set()

    # ------------------------------------------------------------------ #
    def _register(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate element name: {name!r}")
        self._names.add(name)

    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> Resistor:
        self._register(name)
        r = Resistor(name, n1, n2, resistance)
        self.resistors.append(r)
        return r

    def add_capacitor(
        self, name: str, n1: str, n2: str, capacitance: float
    ) -> Capacitor:
        self._register(name)
        c = Capacitor(name, n1, n2, capacitance)
        self.capacitors.append(c)
        return c

    def add_vsource(
        self, name: str, pos: str, neg: str, waveform: object
    ) -> VoltageSource:
        self._register(name)
        v = VoltageSource(name, pos, neg, waveform)
        self.sources.append(v)
        return v

    def add_finfet(
        self,
        name: str,
        drain: str,
        gate: str,
        source: str,
        model: FinFET,
        with_parasitics: bool = True,
    ) -> FinFETElement:
        """Add a transistor; optionally attach its parasitic capacitors.

        The gate capacitance is split 50/50 to source and drain (Miller
        approximation good enough for cell-delay work); the junction cap
        goes from drain to ground.
        """
        self._register(name)
        fet = FinFETElement(name, drain, gate, source, model)
        self.finfets.append(fet)
        if with_parasitics:
            cg = model.gate_capacitance()
            self.add_capacitor(f"{name}_cgs", gate, source, cg / 2.0)
            self.add_capacitor(f"{name}_cgd", gate, drain, cg / 2.0)
            self.add_capacitor(f"{name}_cdb", drain, "0", model.drain_capacitance())
        return fet

    # ------------------------------------------------------------------ #
    def node_names(self) -> list[str]:
        """All non-ground nodes, in deterministic (sorted) order."""
        nodes: set[str] = set()
        for r in self.resistors:
            nodes.update((r.n1, r.n2))
        for c in self.capacitors:
            nodes.update((c.n1, c.n2))
        for v in self.sources:
            nodes.update((v.pos, v.neg))
        for f in self.finfets:
            nodes.update((f.drain, f.gate, f.source))
        return sorted(n for n in nodes if n not in GROUND_NAMES)

    @property
    def element_count(self) -> int:
        return (
            len(self.resistors)
            + len(self.capacitors)
            + len(self.sources)
            + len(self.finfets)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.title!r}, T={self.temperature_k} K, "
            f"{len(self.node_names())} nodes, {self.element_count} elements)"
        )
