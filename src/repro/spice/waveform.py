"""Waveform measurement: threshold crossings, slew, delay.

These are the measurements a characterization tool (PrimeLib-class) takes
from SPICE output: 50 %-to-50 % propagation delay and 10 %-90 % (by default)
transition time, both referenced to the rail-to-rail swing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Waveform", "propagation_delay"]


@dataclass
class Waveform:
    """A sampled signal ``v(t)`` with measurement helpers."""

    time: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        self.time = np.asarray(self.time, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.time.shape != self.values.shape:
            raise ValueError("time and values must have the same shape")
        if self.time.size < 2:
            raise ValueError("waveform needs at least two samples")

    # ------------------------------------------------------------------ #
    def crossings(self, threshold: float, direction: str = "any") -> np.ndarray:
        """Times where the signal crosses ``threshold``.

        ``direction`` is ``"rise"``, ``"fall"`` or ``"any"``.  Linear
        interpolation between samples.
        """
        v = self.values
        t = self.time
        above = v >= threshold
        flips = np.nonzero(above[1:] != above[:-1])[0]
        times = []
        for k in flips:
            rising = v[k + 1] > v[k]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            frac = (threshold - v[k]) / (v[k + 1] - v[k])
            times.append(t[k] + frac * (t[k + 1] - t[k]))
        return np.asarray(times)

    def cross(
        self, threshold: float, direction: str = "any", occurrence: int = 0
    ) -> float:
        """Time of the n-th crossing; raises if it never happens."""
        times = self.crossings(threshold, direction)
        if len(times) <= occurrence:
            raise ValueError(
                f"waveform {self.name!r} crosses {threshold} V "
                f"({direction}) only {len(times)} times"
            )
        return float(times[occurrence])

    def transition_time(
        self,
        v_low: float,
        v_high: float,
        lo_frac: float = 0.1,
        hi_frac: float = 0.9,
        direction: str = "rise",
    ) -> float:
        """Slew between the two fractional thresholds of the full swing."""
        swing = v_high - v_low
        th_lo = v_low + lo_frac * swing
        th_hi = v_low + hi_frac * swing
        if direction == "rise":
            t0 = self.cross(th_lo, "rise")
            t1 = self.cross(th_hi, "rise")
        else:
            t0 = self.cross(th_hi, "fall")
            t1 = self.cross(th_lo, "fall")
        return t1 - t0

    @property
    def final(self) -> float:
        """Last sampled value."""
        return float(self.values[-1])

    @property
    def initial(self) -> float:
        """First sampled value."""
        return float(self.values[0])

    def settled(self, target: float, tolerance: float) -> bool:
        """Whether the final value is within ``tolerance`` of ``target``."""
        return abs(self.final - target) <= tolerance


def propagation_delay(
    input_wave: Waveform,
    output_wave: Waveform,
    vdd: float,
    input_direction: str,
    output_direction: str,
) -> float:
    """50 %-to-50 % delay from input transition to output transition."""
    mid = vdd / 2.0
    t_in = input_wave.cross(mid, input_direction)
    t_out = output_wave.cross(mid, output_direction)
    return t_out - t_in
