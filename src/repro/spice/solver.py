"""DC and transient solution of MNA circuits.

* :func:`dc_operating_point` -- damped Newton-Raphson with automatic gmin
  stepping and a source-stepping (continuation) fallback on
  non-convergence.
* :func:`transient` -- fixed-step backward-Euler integration (L-stable; the
  characterization flow picks steps ~100x smaller than the fastest
  transition, where BE's first-order error is negligible against the
  compact-model accuracy).

Results come back as :class:`TransientResult`, which exposes per-node
:class:`~repro.spice.waveform.Waveform` objects and per-source branch
currents for energy integration.

Robustness: every public entry point accepts an optional
:class:`SolverBudget` bounding total Newton iterations and wall-clock
time, so one pathological solve cannot stall a library build.  Budget
exhaustion raises :class:`~repro.errors.SolverBudgetError`; hopeless
solves raise :class:`ConvergenceError` carrying the full escalation
history (plain NR -> gmin ladder -> source stepping).

Performance: with the default ``kernel="compiled"`` the inner loop runs
modified Newton -- the first iteration of each solve reuses the LU
factorization and frozen device companions from the previous solve (in a
transient, the previous timestep), so it rebuilds only the RHS and costs
*zero* compact-model calls.  Subsequent iterations re-linearize; a
solution is only ever accepted from a fresh-Jacobian update (or, for
circuits without nonlinear devices, from the exact cached matrix), so
accepted solutions satisfy exactly the same criterion as the seed
solver.  Every escalation-ladder rung changes the cache key and
therefore starts from a fresh Jacobian.  Reused iterations are counted
in :attr:`SolverStats.jacobian_reuses`.  ``kernel="reference"`` retains
the seed behavior (full re-assembly and re-factorization every
iteration) for equivalence tests and benchmarks.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import LinAlgWarning, lu_factor, lu_solve

from repro import telemetry
from repro.errors import ConfigError, SolverBudgetError, SolverError
from repro.spice.mna import GMIN_DEFAULT, MNASystem, ReplicatedMNASystem
from repro.spice.netlist import Circuit
from repro.spice.waveform import Waveform

__all__ = ["BudgetConsumption", "ConvergenceError", "OperatingPoint",
           "SolverBudget", "SolverStats", "TransientResult",
           "dc_operating_point", "transient", "transient_grid"]

#: Newton-Raphson voltage update clamp (V) -- classic damping for FETs.
_STEP_CLAMP = 0.25

_MAX_NR_ITERATIONS = 200
_VTOL = 1e-7

#: gmin continuation ladder, walked large to small on NR failure.
_GMIN_LADDER = (1e-3, 1e-5, 1e-7, 1e-9, GMIN_DEFAULT)

#: Source-stepping continuation ladder (fraction of full source value).
_SOURCE_LADDER = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0)

#: Hard ceiling on transient steps: a t_stop/dt pair implying more is an
#: oversized input (one recorded float64 per node per step -- past this
#: the run would grind or OOM long before producing science), rejected
#: with a typed ConfigError instead of an allocation failure.
_MAX_TRANSIENT_STEPS = 5_000_000


class ConvergenceError(SolverError):
    """Raised when Newton-Raphson fails at every escalation level."""


@dataclass
class SolverStats:
    """Convergence-effort accounting for one solver entry point.

    Carried on :attr:`OperatingPoint.stats` and
    :attr:`TransientResult.stats` so callers can see what a solve cost
    without enabling telemetry (the counters are accumulated at
    escalation boundaries, not in the Newton inner loop, so keeping
    them always-on is free at hot-path granularity).
    """

    newton_iterations: int = 0
    """Total NR iterations, summed over timesteps and ladders."""
    gmin_steps: int = 0
    """gmin-ladder rungs attempted (0 when plain NR converged)."""
    source_steps: int = 0
    """Source-stepping rungs attempted (0 unless the ladder escalated)."""
    timesteps: int = 0
    """Transient steps solved (0 for a DC solve)."""
    budget_charges: int = 0
    """Times the :class:`SolverBudget` tracker was consulted."""
    dt_effective: float = 0.0
    """The timestep actually used (transient only)."""
    jacobian_reuses: int = 0
    """Newton iterations served by a reused LU factorization (modified
    Newton); 0 with ``kernel="reference"`` and for cold DC solves."""


@dataclass(frozen=True)
class BudgetConsumption:
    """Snapshot of what a solve has drawn against a :class:`SolverBudget`."""

    iterations: int
    seconds: float
    max_iterations: int | None = None
    max_seconds: float | None = None

    @property
    def iterations_remaining(self) -> int | None:
        if self.max_iterations is None:
            return None
        return max(0, self.max_iterations - self.iterations)

    @property
    def seconds_remaining(self) -> float | None:
        if self.max_seconds is None:
            return None
        return max(0.0, self.max_seconds - self.seconds)


@dataclass(frozen=True)
class SolverBudget:
    """Per-solve resource bounds.

    ``max_iterations`` caps the *total* Newton iterations spent by one
    ``dc_operating_point``/``transient`` call (summed over timesteps and
    continuation ladders); ``max_seconds`` caps its wall-clock time.
    ``None`` disables a bound.

    A budget is observable mid-run: :meth:`consumed` reports what the
    most recent solve using this budget has drawn so far, so a caller
    can watch the remaining headroom instead of waiting for
    :class:`~repro.errors.SolverBudgetError` to fire.
    """

    max_iterations: int | None = None
    max_seconds: float | None = None
    _last_tracker: "_BudgetTracker | None" = field(
        default=None, repr=False, compare=False
    )

    def tracker(self) -> "_BudgetTracker":
        t = _BudgetTracker(self)
        # Frozen dataclass: the tracker backref is bookkeeping, not
        # identity, hence the direct __setattr__.
        object.__setattr__(self, "_last_tracker", t)
        return t

    def consumed(self) -> BudgetConsumption:
        """Iterations/wall-clock drawn by the most recent solve.

        Wall-clock advances in real time (not only at charge points),
        so polling mid-run sees the true elapsed cost even while the
        solver is grinding inside one Newton ladder.
        """
        t = self._last_tracker
        if t is None:
            return BudgetConsumption(0, 0.0, self.max_iterations,
                                     self.max_seconds)
        return BudgetConsumption(t.iterations, t.elapsed(),
                                 self.max_iterations, self.max_seconds)


class _BudgetTracker:
    """Mutable iteration/time accounting for one solve call."""

    def __init__(self, budget: SolverBudget):
        self.budget = budget
        self.iterations = 0
        self.charges = 0
        self.t0 = _time.monotonic()

    def elapsed(self) -> float:
        return _time.monotonic() - self.t0

    def charge(self, iterations: int) -> None:
        self.iterations += iterations
        self.charges += 1
        b = self.budget
        if b.max_iterations is not None and self.iterations > b.max_iterations:
            raise SolverBudgetError(
                f"solver iteration budget exhausted "
                f"({self.iterations} > {b.max_iterations})"
            )
        if b.max_seconds is not None:
            elapsed = _time.monotonic() - self.t0
            if elapsed > b.max_seconds:
                raise SolverBudgetError(
                    f"solver wall-clock budget exhausted "
                    f"({elapsed:.3f} s > {b.max_seconds} s)"
                )


class _JacobianCache:
    """LU factorization + frozen device companions carried across solves.

    The cache key pins the linear-system *structure* the factorization
    was built for -- (gmin, source_scale, companion on/off) -- so every
    escalation-ladder rung starts from a fresh Jacobian.  ``fet_ieq``
    holds the device Norton RHS currents of the cached linearization:
    with them a bypass iteration rebuilds ``z`` for a new timestep via
    :meth:`MNASystem.rhs` without touching the compact model.
    ``reuses`` accumulates across one solver entry point and is
    published as :attr:`SolverStats.jacobian_reuses`.
    """

    __slots__ = ("lu", "key", "fet_ieq", "reuses")

    def __init__(self):
        self.lu = None
        self.key = None
        self.fet_ieq = None
        self.reuses = 0

    def store(self, key, lu, fet_ieq) -> None:
        self.key = key
        self.lu = lu
        self.fet_ieq = fet_ieq

    def matches(self, key) -> bool:
        return self.lu is not None and self.key == key


@dataclass
class OperatingPoint:
    """DC solution: node voltages and source branch currents."""

    voltages: dict[str, float]
    source_currents: dict[str, float]
    iterations: int
    stats: SolverStats = field(default_factory=SolverStats)
    """Convergence effort of this solve (always populated)."""

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


@dataclass
class TransientResult:
    """Transient solution over a fixed time grid."""

    time: np.ndarray
    voltages: dict[str, np.ndarray]
    source_currents: dict[str, np.ndarray]
    circuit_title: str = ""
    dt_effective: float = 0.0
    stats: SolverStats = field(default_factory=SolverStats)
    """Convergence effort of this run (always populated)."""

    def waveform(self, node: str) -> Waveform:
        """Return the node voltage as a measurable waveform."""
        return Waveform(self.time, self.voltages[node], name=node)

    def source_current(self, name: str) -> np.ndarray:
        return self.source_currents[name]

    def supply_energy(self, source_name: str, vdd: float) -> float:
        """Energy delivered by a DC supply over the window, in J.

        MNA source current flows from + terminal through the source, so a
        supplying source has negative branch current; energy delivered is
        ``-integral(V * I) dt``.
        """
        i = self.source_currents[source_name]
        return float(-np.trapezoid(i, self.time) * vdd)


def _factorize(a: np.ndarray):
    """LU-factorize ``a``, silencing scipy's exact-singularity warning
    (singularity is detected downstream via non-finite solutions, which
    the Newton loop converts to :class:`ConvergenceError`)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", LinAlgWarning)
        return lu_factor(a, check_finite=False)


def _newton_solve(
    system: MNASystem,
    x0: np.ndarray,
    t: float,
    gmin: float,
    cap_companion: tuple[np.ndarray, np.ndarray] | None,
    source_scale: float = 1.0,
    tracker: _BudgetTracker | None = None,
) -> tuple[np.ndarray, int]:
    """Damped (modified-)NR iteration; returns (solution, iterations).

    With a :class:`_JacobianCache` installed on ``system`` (the compiled
    kernel), the first iteration of a solve whose cache key matches
    bypasses both assembly and the compact model: the RHS is rebuilt
    around the *frozen* device companions (:meth:`MNASystem.rhs`) and
    solved against the cached LU.  For circuits without FinFETs the
    cached matrix is exact, so every iteration may ride it.  A solution
    is accepted only from a non-stale update -- after a stale bypass
    converges, one fresh polish iteration re-linearizes so the accepted
    step meets the same full-Newton criterion as the seed solver.
    Without a cache (``kernel="reference"``) this is exactly the seed
    algorithm.
    """
    cache: _JacobianCache | None = system.jacobian_cache
    key = (gmin, source_scale, cap_companion is not None)
    linear = system.n_fets == 0
    x = x0.copy()
    for it in range(1, _MAX_NR_ITERATIONS + 1):
        stale = False
        if (cache is not None and cache.matches(key)
                and (linear or it == 1)):
            # Bypass: the matrix (static + gmin + cap geq + frozen device
            # conductances) is unchanged, so only the RHS moves with t.
            z = system.rhs(t, cap_companion, source_scale, cache.fet_ieq)
            x_new = lu_solve(cache.lu, z, check_finite=False)
            cache.reuses += 1
            stale = not linear
        else:
            if cache is None:
                a, z = system.assemble(x, t, gmin=gmin,
                                       cap_companion=cap_companion,
                                       source_scale=source_scale)
                try:
                    x_new = np.linalg.solve(a, z)
                except np.linalg.LinAlgError as exc:
                    raise ConvergenceError(
                        f"singular MNA matrix at t={t}"
                    ) from exc
            else:
                a, z, fet_ieq = system.assemble_with_companions(
                    x, t, gmin=gmin, cap_companion=cap_companion,
                    source_scale=source_scale)
                lu = _factorize(a)
                x_new = lu_solve(lu, z, check_finite=False)
                cache.store(key, lu, fet_ieq)
        delta = x_new - x
        if not np.all(np.isfinite(delta)):
            raise ConvergenceError(f"singular MNA matrix at t={t}")
        if tracker is not None:
            tracker.charge(1)
        # Clamp only the node-voltage part; branch currents move freely.
        dv = delta[: system.n_nodes]
        max_dv = float(np.max(np.abs(dv))) if dv.size else 0.0
        if max_dv > _STEP_CLAMP:
            delta[: system.n_nodes] *= _STEP_CLAMP / max_dv
        x = x + delta
        if max_dv < _VTOL and not stale:
            return x, it
        # A stale bypass never terminates the loop: the next iteration
        # re-linearizes at the bypassed point and decides.
    raise ConvergenceError(
        f"Newton-Raphson did not converge in {_MAX_NR_ITERATIONS} iterations "
        f"(t={t}, gmin={gmin}, source_scale={source_scale})"
    )


def _solve_with_source_stepping(
    system: MNASystem,
    x0: np.ndarray,
    t: float,
    cap_companion: tuple[np.ndarray, np.ndarray] | None,
    tracker: _BudgetTracker | None,
    stats: SolverStats | None = None,
) -> tuple[np.ndarray, int]:
    """Continuation in the source amplitude: ramp 0 -> 1, tracking the
    solution branch.  The near-zero-bias circuit is almost linear, so the
    first rung converges from a cold start and each later rung starts from
    the previous solution."""
    x = x0.copy()
    total = 0
    for scale in _SOURCE_LADDER:
        if stats is not None:
            stats.source_steps += 1
        try:
            x, its = _newton_solve(system, x, t, GMIN_DEFAULT, cap_companion,
                                   source_scale=scale, tracker=tracker)
        except ConvergenceError as exc:
            raise ConvergenceError(
                f"source stepping failed at scale={scale} (t={t})"
            ) from exc
        total += its
    return x, total


def _solve_with_gmin_stepping(
    system: MNASystem,
    x0: np.ndarray,
    t: float,
    cap_companion: tuple[np.ndarray, np.ndarray] | None,
    tracker: _BudgetTracker | None = None,
    stats: SolverStats | None = None,
) -> tuple[np.ndarray, int]:
    """Try plain NR; on failure walk gmin large to small; on a mid-ladder
    failure fall through to source stepping before giving up."""
    try:
        return _newton_solve(system, x0, t, GMIN_DEFAULT, cap_companion,
                             tracker=tracker)
    except SolverBudgetError:
        raise
    except ConvergenceError:
        pass

    gmin_failure: ConvergenceError | None = None
    x = x0.copy()
    total = 0
    for gmin in _GMIN_LADDER:
        if stats is not None:
            stats.gmin_steps += 1
        try:
            x, its = _newton_solve(system, x, t, gmin, cap_companion,
                                   tracker=tracker)
            total += its
        except SolverBudgetError:
            raise
        except ConvergenceError as exc:
            gmin_failure = ConvergenceError(
                f"gmin ladder failed at gmin={gmin} (t={t}, "
                f"ladder={_GMIN_LADDER})"
            )
            gmin_failure.__cause__ = exc
            break
    else:
        return x, total

    try:
        return _solve_with_source_stepping(system, x0, t, cap_companion,
                                           tracker, stats)
    except SolverBudgetError:
        raise
    except ConvergenceError as exc:
        raise ConvergenceError(
            f"no convergence at t={t}: plain NR failed, {gmin_failure}, "
            f"and source stepping failed ({exc})"
        ) from gmin_failure


def _record_solver_metrics(kind: str, stats: SolverStats) -> None:
    """Fold one solve's effort into the telemetry registry (enabled only)."""
    telemetry.count(f"solver.{kind}_solves")
    telemetry.count("solver.newton_iterations", stats.newton_iterations)
    if stats.gmin_steps:
        telemetry.count("solver.gmin_steps", stats.gmin_steps)
    if stats.source_steps:
        telemetry.count("solver.source_steps", stats.source_steps)
    if stats.budget_charges:
        telemetry.count("solver.budget_charges", stats.budget_charges)
    if stats.jacobian_reuses:
        telemetry.count("solver.jacobian_reuses", stats.jacobian_reuses)


def _make_system(circuit: Circuit, kernel: str) -> MNASystem:
    """Build the MNA system and install reuse state for the compiled kernel."""
    system = MNASystem(circuit, kernel=kernel)
    if kernel == "compiled":
        system.jacobian_cache = _JacobianCache()
    return system


def dc_operating_point(
    circuit: Circuit,
    t: float = 0.0,
    budget: SolverBudget | None = None,
    kernel: str = "compiled",
) -> OperatingPoint:
    """Solve the DC operating point with sources evaluated at time ``t``.

    ``kernel`` selects the MNA assembly/iteration strategy: the default
    ``"compiled"`` vectorized kernel with Jacobian reuse, or
    ``"reference"`` (the retained seed path, used by equivalence tests
    and benchmarks).
    """
    circuit.validate()
    system = _make_system(circuit, kernel)
    x0 = np.zeros(system.dim)
    tracker = budget.tracker() if budget is not None else None
    stats = SolverStats()
    with telemetry.span("spice.dc_operating_point",
                        circuit=circuit.title) as sp:
        x, iterations = _solve_with_gmin_stepping(system, x0, t, None,
                                                  tracker, stats)
        stats.newton_iterations = iterations
        if tracker is not None:
            stats.budget_charges = tracker.charges
        if system.jacobian_cache is not None:
            stats.jacobian_reuses = system.jacobian_cache.reuses
        if telemetry.enabled():
            sp.set(newton_iterations=stats.newton_iterations,
                   gmin_steps=stats.gmin_steps,
                   source_steps=stats.source_steps)
            _record_solver_metrics("dc", stats)
    voltages = {n: float(x[i]) for n, i in zip(system.nodes, range(system.n_nodes))}
    currents = {
        src.name: float(x[system.n_nodes + k])
        for k, src in enumerate(circuit.sources)
    }
    return OperatingPoint(voltages=voltages, source_currents=currents,
                          iterations=iterations, stats=stats)


def transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    record: list[str] | None = None,
    method: str = "be",
    budget: SolverBudget | None = None,
    kernel: str = "compiled",
) -> TransientResult:
    """Fixed-step transient from a DC solution at ``t = 0``.

    Parameters
    ----------
    circuit:
        The circuit; its ``temperature_k`` selects the model corner.
    t_stop:
        End time in s.  Always simulated exactly: when ``t_stop`` is not
        an integer multiple of ``dt``, the step is snapped *down* to the
        nearest divisor (never up, so accuracy cannot silently degrade);
        the step actually used is reported as
        :attr:`TransientResult.dt_effective`.
    dt:
        Requested fixed timestep in s.
    record:
        Node names to record; ``None`` records every node.
    method:
        ``"be"`` (backward Euler, L-stable, default) or ``"trap"``
        (trapezoidal, second-order accurate; the usual SPICE default).
        Trapezoidal needs the capacitor branch-current history, which the
        integrator reconstructs from the companion at each step.
    budget:
        Optional :class:`SolverBudget` bounding the whole run.
    kernel:
        ``"compiled"`` (vectorized assembly + Jacobian reuse across
        timesteps, default) or ``"reference"`` (retained seed path).
    """
    if not np.isfinite(dt) or not np.isfinite(t_stop) \
            or dt <= 0 or t_stop <= 0:
        raise ConfigError("t_stop and dt must be finite and positive",
                          field="dt")
    if method not in ("be", "trap"):
        raise ConfigError(f"unknown integration method {method!r}",
                          field="method")
    if t_stop / dt > _MAX_TRANSIENT_STEPS:
        raise ConfigError(
            f"oversized transient: t_stop/dt = {t_stop / dt:.3g} steps "
            f"exceeds the {_MAX_TRANSIENT_STEPS} cap", field="dt")
    circuit.validate()
    system = _make_system(circuit, kernel)
    record = system.nodes if record is None else record
    record_idx = [system.index(node) for node in record]  # validate early

    # Snap dt down so the grid lands exactly on t_stop (the old
    # int(round(...)) silently simulated a window up to dt/2 short or
    # long of the request).  The 1e-9 slack absorbs representation error
    # when t_stop/dt is an exact integer in real arithmetic.
    n_steps = max(1, int(np.ceil(t_stop / dt - 1e-9)))
    dt_eff = t_stop / n_steps
    time = np.linspace(0.0, t_stop, n_steps + 1)
    tracker = budget.tracker() if budget is not None else None
    stats = SolverStats(timesteps=n_steps, dt_effective=dt_eff)

    x0 = np.zeros(system.dim)
    x, dc_its = _solve_with_gmin_stepping(system, x0, 0.0, None, tracker,
                                          stats)
    stats.newton_iterations += dc_its

    caps = circuit.capacitors
    scale = 1.0 if method == "be" else 2.0
    geq = np.array([scale * c.capacitance / dt_eff for c in caps])

    # The whole run records into one preallocated (n_steps+1, dim) array;
    # per-node waveforms are sliced out once at the end.
    solution = np.empty((n_steps + 1, system.dim))
    solution[0] = x
    v_cap_prev = system.cap_voltages(x)
    i_cap_prev = np.zeros(len(caps))  # branch currents start from DC (0)
    with telemetry.span("spice.transient", circuit=circuit.title,
                        t_stop=t_stop, steps=n_steps) as sp:
        total_its = 0
        for step in range(1, n_steps + 1):
            t = time[step]
            if method == "be":
                # i_C = C/dt * (v - v_prev): geq = C/dt, ieq = -C/dt * v_prev.
                ieq = -geq * v_cap_prev
            else:
                # Trapezoidal: i = 2C/dt * (v - v_prev) - i_prev.
                ieq = -geq * v_cap_prev - i_cap_prev
            x, its = _solve_with_gmin_stepping(system, x, t, (geq, ieq),
                                               tracker, stats)
            total_its += its
            v_cap_new = system.cap_voltages(x)
            if method == "trap":
                i_cap_prev = geq * (v_cap_new - v_cap_prev) - i_cap_prev
            v_cap_prev = v_cap_new
            solution[step] = x
        stats.newton_iterations += total_its
        if tracker is not None:
            stats.budget_charges = tracker.charges
        if system.jacobian_cache is not None:
            stats.jacobian_reuses = system.jacobian_cache.reuses
        if telemetry.enabled():
            sp.set(newton_iterations=stats.newton_iterations,
                   gmin_steps=stats.gmin_steps,
                   source_steps=stats.source_steps,
                   dt_effective=dt_eff)
            _record_solver_metrics("transient", stats)

    # Slice out recorded nodes; a trailing zero column serves ground
    # aliases (index -1) without per-step special-casing.
    extended = np.hstack([solution, np.zeros((n_steps + 1, 1))])
    volts = {
        n: np.ascontiguousarray(extended[:, i])
        for n, i in zip(record, record_idx)
    }
    src_currents = {
        s.name: np.ascontiguousarray(solution[:, system.n_nodes + k])
        for k, s in enumerate(circuit.sources)
    }
    return TransientResult(
        time=time,
        voltages=volts,
        source_currents=src_currents,
        circuit_title=circuit.title,
        dt_effective=dt_eff,
        stats=stats,
    )


# --------------------------------------------------------------------- #
# Batched-grid transient: all replicas of a characterization row in
# lockstep through one block-diagonal system.
# --------------------------------------------------------------------- #
class _GridJacobianCache:
    """Frozen batched Jacobian + device companions across lockstep solves.

    Same modified-Newton semantics as :class:`_JacobianCache` -- a bypass
    iteration reuses the frozen linearization and is never accepted stale
    -- but the "LU" is the whole ``(G, dim, dim)`` assembled stack: the
    per-replica blocks are tiny, so one batched ``np.linalg.solve`` call
    (which refactorizes each small block inside LAPACK) costs less than
    holding G scipy factorizations and looping ``lu_solve`` in Python.
    One ``reuses`` tick therefore stands for G bypassed point-solves.
    """

    __slots__ = ("a", "key", "fet_ieq", "reuses")

    def __init__(self):
        self.a = None
        self.key = None
        self.fet_ieq = None
        self.reuses = 0

    def store(self, key, a, fet_ieq) -> None:
        self.key = key
        self.a = a
        self.fet_ieq = fet_ieq

    def matches(self, key) -> bool:
        return self.a is not None and self.key == key


def _grid_linear_solve(a: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Batched block solve; a singular replica poisons only itself.

    ``np.linalg.solve`` rejects the whole batch when any block is
    singular, so on failure the blocks are re-solved one by one and the
    offenders come back as NaN rows -- which the masked Newton loop
    converts into an eviction of exactly those replicas.
    """
    try:
        # The explicit trailing unit axis pins the gufunc signature to a
        # stack of column vectors on every numpy version.
        return np.linalg.solve(a, z[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        out = np.empty_like(z)
        for g in range(z.shape[0]):
            try:
                out[g] = np.linalg.solve(a[g], z[g])
            except np.linalg.LinAlgError:
                out[g] = np.nan
        return out


def _grid_newton_solve(
    rsys: ReplicatedMNASystem,
    x: np.ndarray,
    source_values: np.ndarray,
    gmin: float,
    cap_companion: tuple[np.ndarray, np.ndarray] | None,
    alive: np.ndarray,
    tracker: _BudgetTracker | None,
) -> tuple[int, np.ndarray]:
    """One lockstep masked modified-Newton solve across all replicas.

    ``x`` (``(G, dim)``) is updated in place for replicas in ``alive``.
    Masked convergence: a replica whose fresh-Jacobian update lands under
    ``_VTOL`` is frozen (its block stops moving and stops contributing to
    the residual norm) while the others keep iterating; a replica whose
    update goes non-finite, or that is still unconverged when the
    iteration cap runs out, is dropped.  Returns ``(iterations,
    converged)`` where ``converged`` marks the replicas that finished
    cleanly -- the caller evicts ``alive & ~converged``.

    Per-replica math (block solve, clamp, convergence test) is identical
    to :func:`_newton_solve`, so a replica that converges here produces
    the same solution the sequential path would on the same grid.
    """
    cache: _GridJacobianCache = rsys.jacobian_cache
    key = (gmin, 1.0, cap_companion is not None)
    linear = rsys.n_fets == 0
    n_nodes = rsys.n_nodes
    need = alive.copy()
    failed = np.zeros_like(alive)
    if not need.any():
        return 0, np.zeros_like(alive)
    for it in range(1, _MAX_NR_ITERATIONS + 1):
        stale = False
        if cache.matches(key) and (linear or it == 1):
            z = rsys.rhs(source_values, cap_companion, cache.fet_ieq)
            a = cache.a
            cache.reuses += 1
            stale = not linear
        else:
            a, z, fet_ieq = rsys.assemble_with_companions(
                x, source_values, gmin=gmin, cap_companion=cap_companion)
            cache.store(key, a, fet_ieq)
        delta = _grid_linear_solve(a, z) - x
        finite = np.isfinite(delta).all(axis=1)
        newly_bad = need & ~finite
        if newly_bad.any():
            failed |= newly_bad
            need &= finite
            if not need.any():
                return it, alive & ~failed & ~need
        if tracker is not None:
            tracker.charge(1)
        if n_nodes:
            max_dv = np.abs(delta[:, :n_nodes]).max(axis=1)
        else:
            max_dv = np.zeros(rsys.n_replicas)
        over = need & (max_dv > _STEP_CLAMP)
        if over.any():
            delta[over, :n_nodes] *= (_STEP_CLAMP / max_dv[over])[:, None]
        # Converged and evicted replicas are frozen: their blocks stop
        # moving, so survivors never see a dead replica's state.
        delta[~need] = 0.0
        x += delta
        if not stale:
            need &= ~(max_dv < _VTOL)
        if not need.any():
            return it, alive & ~failed
    # Iteration cap: whatever is still iterating failed to converge.
    return _MAX_NR_ITERATIONS, alive & ~failed & ~need


def transient_grid(
    circuits: list[Circuit],
    t_stop: float,
    dt: float,
    record: list[str] | None = None,
    method: str = "be",
    budget: SolverBudget | None = None,
) -> list[TransientResult | None]:
    """Fixed-step transient of G structurally identical circuits at once.

    The replicas (same topology, per-replica element values and source
    waveforms -- e.g. one load row of an NLDM characterization grid) are
    tiled into a :class:`~repro.spice.mna.ReplicatedMNASystem` and
    stepped in lockstep on one shared time grid: each Newton iteration
    makes ONE compact-model call and ONE batched block solve for the
    whole grid, and every source value on the grid is precomputed up
    front, so the per-step Python overhead is paid once per *batch*
    instead of once per point.

    Masked convergence / eviction: replicas that converge within a step
    freeze until the next step; a replica that fails (non-finite update,
    singular block, or the iteration cap) is **evicted** -- its slot in
    the returned list is ``None`` and the survivors continue unperturbed.
    Callers replay evicted points through the sequential retry ladder
    (see ``repro.cells.characterize._solve_point_resilient``), so one bad
    corner never voids the batch.  A :class:`SolverBudget` bounds the
    whole batch; exhaustion raises
    :class:`~repro.errors.SolverBudgetError` (the batch, unlike a
    replica, cannot be partially salvaged).

    Returns one :class:`TransientResult` per input circuit, in order,
    with ``None`` for evicted replicas.  All results share the batch's
    :class:`SolverStats` object.
    """
    if not np.isfinite(dt) or not np.isfinite(t_stop) \
            or dt <= 0 or t_stop <= 0:
        raise ConfigError("t_stop and dt must be finite and positive",
                          field="dt")
    if method not in ("be", "trap"):
        raise ConfigError(f"unknown integration method {method!r}",
                          field="method")
    if t_stop / dt > _MAX_TRANSIENT_STEPS:
        raise ConfigError(
            f"oversized transient: t_stop/dt = {t_stop / dt:.3g} steps "
            f"exceeds the {_MAX_TRANSIENT_STEPS} cap", field="dt")
    for circuit in circuits:
        circuit.validate()
    rsys = ReplicatedMNASystem(circuits)
    rsys.jacobian_cache = _GridJacobianCache()
    g = rsys.n_replicas
    record = rsys.nodes if record is None else record
    record_idx = [rsys.base.index(node) for node in record]  # validate early

    n_steps = max(1, int(np.ceil(t_stop / dt - 1e-9)))
    dt_eff = t_stop / n_steps
    time = np.linspace(0.0, t_stop, n_steps + 1)
    tracker = budget.tracker() if budget is not None else None
    stats = SolverStats(timesteps=n_steps, dt_effective=dt_eff)

    # Every source value for the whole run, evaluated once (shared
    # waveforms once per batch): (n_steps+1, G, n_sources).
    src_grid = rsys.source_grid(time)

    x = np.zeros((g, rsys.dim))
    alive = np.ones(g, dtype=bool)
    solution = np.empty((n_steps + 1, g, rsys.dim))
    with telemetry.span("spice.transient_grid", circuit=circuits[0].title,
                        replicas=g, t_stop=t_stop, steps=n_steps) as sp:
        its, converged = _grid_newton_solve(
            rsys, x, src_grid[0], GMIN_DEFAULT, None, alive, tracker)
        stats.newton_iterations += its
        alive &= converged  # a replica that fails DC is evicted outright
        solution[0] = x

        scale = 1.0 if method == "be" else 2.0
        geq = scale * rsys._cap_c / dt_eff  # (G, n_caps)
        v_cap_prev = rsys.cap_voltages(x)
        i_cap_prev = np.zeros_like(v_cap_prev)
        for step in range(1, n_steps + 1):
            if not alive.any():
                break
            if method == "be":
                ieq = -geq * v_cap_prev
            else:
                ieq = -geq * v_cap_prev - i_cap_prev
            its, converged = _grid_newton_solve(
                rsys, x, src_grid[step], GMIN_DEFAULT, (geq, ieq),
                alive, tracker)
            stats.newton_iterations += its
            alive &= converged
            v_cap_new = rsys.cap_voltages(x)
            if method == "trap":
                i_cap_prev = geq * (v_cap_new - v_cap_prev) - i_cap_prev
            v_cap_prev = v_cap_new
            solution[step] = x
        if tracker is not None:
            stats.budget_charges = tracker.charges
        stats.jacobian_reuses = rsys.jacobian_cache.reuses
        if telemetry.enabled():
            sp.set(newton_iterations=stats.newton_iterations,
                   survivors=int(alive.sum()),
                   evicted=int(g - alive.sum()),
                   dt_effective=dt_eff)
            _record_solver_metrics("transient_grid", stats)

    extended = np.concatenate(
        [solution, np.zeros((n_steps + 1, g, 1))], axis=2)
    results: list[TransientResult | None] = []
    for r in range(g):
        if not alive[r]:
            results.append(None)
            continue
        volts = {
            n: np.ascontiguousarray(extended[:, r, i])
            for n, i in zip(record, record_idx)
        }
        src_currents = {
            s.name: np.ascontiguousarray(solution[:, r, rsys.n_nodes + k])
            for k, s in enumerate(circuits[r].sources)
        }
        results.append(TransientResult(
            time=time,
            voltages=volts,
            source_currents=src_currents,
            circuit_title=circuits[r].title,
            dt_effective=dt_eff,
            stats=stats,
        ))
    return results
