"""Time-dependent source waveforms for the circuit simulator.

Every waveform implements ``value(t)`` (scalar, seconds in / volts out).
These mirror the SPICE primitives the characterization flow needs: DC,
PULSE and PWL (the stimulus builder emits PWL ramps for timing arcs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DC", "Pulse", "PWL", "waveform_values"]


@dataclass(frozen=True)
class DC:
    """Constant level."""

    level: float

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class PWL:
    """Piece-wise linear waveform through ``(times, values)`` breakpoints.

    Holds the first value before the first breakpoint and the last value
    after the last one, like SPICE.
    """

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")
        if len(self.times) < 1:
            raise ValueError("PWL needs at least one breakpoint")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("PWL breakpoint times must strictly increase")

    def value(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))


@dataclass(frozen=True)
class Pulse:
    """SPICE PULSE source: v1 -> v2 with given delay/rise/fall/width/period."""

    v1: float
    v2: float
    delay: float
    rise: float
    fall: float
    width: float
    period: float

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1


def waveform_values(wave, times) -> np.ndarray:
    """Evaluate a waveform over a whole time grid in one shot.

    Bit-identical per point to calling ``wave.value(t)`` in a loop (DC
    broadcasts its level; PWL is one vectorized ``np.interp``, the same
    call its scalar path makes).  Unknown waveform types fall back to the
    scalar loop, so any object implementing ``value(t)`` still works.
    The batched transient driver uses this to precompute every source
    value for the union time grid up front.
    """
    times = np.asarray(times, dtype=float)
    if isinstance(wave, DC):
        return np.full(times.shape, float(wave.level))
    if isinstance(wave, PWL):
        return np.asarray(np.interp(times, wave.times, wave.values),
                          dtype=float)
    return np.array([wave.value(float(t)) for t in times])


def ramp(t_start: float, duration: float, v_from: float, v_to: float) -> PWL:
    """Convenience: a single linear transition between two levels.

    >>> w = ramp(1e-9, 10e-12, 0.0, 0.7)
    >>> w.value(0.0), w.value(2e-9)
    (0.0, 0.7)
    """
    if duration <= 0:
        raise ValueError("ramp duration must be positive")
    return PWL(
        times=(t_start, t_start + duration),
        values=(v_from, v_to),
    )
