"""SPICE-lite: an MNA circuit simulator for standard-cell characterization.

Stands in for Synopsys PrimeSim in the paper's flow (Fig. 4).  Supports
resistors, capacitors, waveform-driven voltage sources and FinFET compact
-model instances; DC (Newton-Raphson + gmin stepping) and fixed-step
backward-Euler transient analysis.
"""

from repro.spice.mna import MNASystem, ReplicatedMNASystem
from repro.spice.netlist import (
    Capacitor,
    Circuit,
    FinFETElement,
    Resistor,
    VoltageSource,
)
from repro.spice.solver import (
    BudgetConsumption,
    ConvergenceError,
    OperatingPoint,
    SolverBudget,
    SolverStats,
    TransientResult,
    dc_operating_point,
    transient,
    transient_grid,
)
from repro.spice.sources import DC, PWL, Pulse, ramp, waveform_values
from repro.spice.waveform import Waveform, propagation_delay

__all__ = [
    "BudgetConsumption",
    "Capacitor",
    "Circuit",
    "ConvergenceError",
    "DC",
    "FinFETElement",
    "MNASystem",
    "OperatingPoint",
    "PWL",
    "Pulse",
    "ReplicatedMNASystem",
    "Resistor",
    "SolverBudget",
    "SolverStats",
    "TransientResult",
    "VoltageSource",
    "Waveform",
    "dc_operating_point",
    "propagation_delay",
    "ramp",
    "transient",
    "transient_grid",
    "waveform_values",
]
