"""Synchronous client for the classification service.

A thin blocking wrapper over one socket speaking the line/JSON protocol
of :mod:`repro.serve.protocol`.  Two call styles:

``classify(model, iq)``
    One request, one response, labels as a numpy array -- error
    responses re-raised as the same typed exceptions the server threw
    (:class:`~repro.errors.ServeOverloadError` on 429,
    :class:`~repro.errors.DeadlineError` on 408,
    :class:`~repro.errors.ServeProtocolError` on 400/404).
``pipeline(requests)``
    Fire many requests down the connection before reading anything,
    then collect every response.  This is how a single connection
    exercises the micro-batcher: overlapping requests coalesce into
    one vectorized predict.  Responses may arrive out of order; they
    are matched back to requests by the echoed ``id``.
"""

from __future__ import annotations

import itertools
import socket

import numpy as np

from repro.errors import ServeError
from repro.serve.protocol import (
    encode_op_request,
    encode_request,
    parse_response,
    raise_for_response,
)

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking line/JSON client (one socket, context-managed)."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s)
        except OSError as exc:
            raise ServeError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    def request(self, model: str, iq, qubit=None,
                deadline_ms: float | None = None) -> dict:
        """One raw request/response round trip (no error raising)."""
        req_id = next(self._ids)
        self._file.write(encode_request(
            req_id, model, iq, qubit=qubit, deadline_ms=deadline_ms))
        self._file.flush()
        return self._read_response()

    def classify(self, model: str, iq, qubit=None,
                 deadline_ms: float | None = None) -> np.ndarray:
        """Labels for one batch; typed exception on any error code."""
        doc = raise_for_response(self.request(
            model, iq, qubit=qubit, deadline_ms=deadline_ms))
        return np.asarray(doc["labels"], dtype=int)

    def stats(self) -> dict:
        """The server's live stats snapshot (``{"op": "stats"}``).

        In-band introspection: the scrape shares the socket and
        protocol with classification traffic but skips admission on
        the server, so it answers even when the queue is full.
        """
        req_id = next(self._ids)
        self._file.write(encode_op_request("stats", req_id=req_id))
        self._file.flush()
        doc = raise_for_response(self._read_response())
        return doc.get("stats", {})

    def pipeline(self, requests: list[dict]) -> list[dict]:
        """Send every request, then read every response (in request
        order).  Each request dict: ``{"model", "iq"}`` plus optional
        ``"qubit"`` / ``"deadline_ms"``."""
        ids = []
        for req in requests:
            req_id = next(self._ids)
            ids.append(req_id)
            self._file.write(encode_request(
                req_id, req["model"], req["iq"],
                qubit=req.get("qubit"),
                deadline_ms=req.get("deadline_ms")))
        self._file.flush()
        by_id = {}
        for _ in ids:
            doc = self._read_response()
            by_id[doc.get("id")] = doc
        missing = [i for i in ids if i not in by_id]
        if missing:
            raise ServeError(
                f"server answered {len(by_id)} of {len(ids)} pipelined "
                f"requests (missing ids {missing[:5]}...)")
        return [by_id[i] for i in ids]

    # ------------------------------------------------------------------ #
    def _read_response(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return parse_response(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
