"""repro.serve: async batched readout classification as a service.

The paper's end state is readout classification *in the control loop*:
shots arrive continuously and labels must come back inside the
decoherence budget.  This package is the host-side rehearsal of that
deployment shape -- a dependency-free asyncio service in front of the
warm, calibrated classifiers:

- :mod:`~repro.serve.protocol` -- line/JSON wire format, typed
  400-class rejection of malformed requests;
- :mod:`~repro.serve.models` -- the warm :class:`ModelRegistry`
  (calibrate once, share read-only across threads);
- :mod:`~repro.serve.batcher` -- the :class:`MicroBatcher` fusing
  concurrent requests into single vectorized ``predict`` calls,
  bit-identically;
- :mod:`~repro.serve.server` -- :class:`ClassifierServer` with the
  telemetry/admission/deadline middleware pipeline, 429 back-pressure,
  slow-client eviction, and a ``kind="serve"`` session RunRecord;
- :mod:`~repro.serve.client` -- the blocking :class:`ServeClient`.

The service is *live-observable* (:mod:`repro.observe.live`): an
in-band ``{"op": "stats"}`` request (or ``client.stats()`` /
``repro top host:port``) returns rolling-window metrics, SLO burn
rates and health without disturbing traffic, and slow/failed requests
tail-sample their queue -> batch -> predict -> write span trees for
Perfetto export (``repro serve --trace-format chrome``).

Quick start (in process)::

    from repro.serve import ModelRegistry, ServeClient, ServerThread

    registry = ModelRegistry.calibrated()      # warm knn + hdc
    with ServerThread(registry) as handle:
        with ServeClient(handle.host, handle.port) as client:
            labels = client.classify("knn", iq_points)

or from the shell: ``repro serve --port 8742``.
"""

from __future__ import annotations

from repro.serve.batcher import MicroBatcher
from repro.serve.client import ServeClient
from repro.serve.models import ModelRegistry, UnknownModelError
from repro.serve.protocol import ADMIN_OPS, encode_op_request
from repro.serve.server import (
    ClassifierServer,
    RequestContext,
    ServeConfig,
    ServerThread,
)

__all__ = [
    "ADMIN_OPS",
    "ClassifierServer",
    "MicroBatcher",
    "ModelRegistry",
    "RequestContext",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "UnknownModelError",
    "encode_op_request",
]
