"""Wire protocol of the classification service: one JSON document per line.

The service speaks the simplest protocol that can carry batched I/Q
shots over a socket with zero third-party dependencies: every request
and every response is a single JSON object terminated by ``\\n``.

Request fields::

    {"id": 7,                    # echoed back verbatim (any JSON scalar)
     "model": "knn",             # registry name of the warm model
     "iq": [[0.1, -0.3], ...],   # (n, 2) I/Q pairs
     "qubit": [0, 1, ...],       # optional per-row qubit indices
     "deadline_ms": 250}         # optional per-request deadline

Response fields::

    {"id": 7, "ok": true, "labels": [0, 1, ...],
     "model_digest": "ab12...", "batch_size": 3, "queue_ms": 0.4}
    {"id": 7, "ok": false, "code": 429, "error": "overloaded",
     "message": "..."}

Error codes follow the HTTP idiom so a reader needs no legend: 400
malformed request, 404 unknown model, 408 deadline expired, 429
back-pressure rejection, 500 anything else.  :func:`parse_request`
rejects malformed input with a typed
:class:`~repro.errors.ServeProtocolError` *naming the offending field*
-- wrong-rank or empty ``iq`` arrays, NaN/inf I/Q, negative deadlines
-- before a single byte reaches a model.

Two observability hooks live at this layer because the wire boundary
is where a request is born:

* **admin ops** -- ``{"op": "stats"}`` (no model, no shots) asks the
  server for its live metrics snapshot in-band, on the same protocol;
  unknown ops are a 400 naming the ``op`` field;
* **trace minting** -- every successfully parsed classify request
  carries a :class:`~repro.observe.live.TraceContext` whose root span
  opens here, so the span tree covers the full server-side lifetime,
  queue wait included.
"""

from __future__ import annotations

import json

import numpy as np

from repro.classify import validate_points
from repro.errors import (
    DeadlineError,
    ServeError,
    ServeOverloadError,
    ServeProtocolError,
    ValidationError,
)
from repro.observe.live import TraceContext

__all__ = [
    "ADMIN_OPS",
    "MAX_LINE_BYTES",
    "ParsedRequest",
    "encode_op_request",
    "encode_request",
    "error_response",
    "ok_response",
    "parse_request",
    "parse_response",
    "raise_for_response",
    "stats_response",
]

MAX_LINE_BYTES = 8 * 1024 * 1024
"""Per-line size cap (both directions): bounds a single request to
roughly 250k shots, which also bounds the server's per-line buffer."""

ADMIN_OPS = frozenset({"stats"})
"""In-band admin operations the server answers without touching the
classification pipeline (no admission, no batching, no model)."""

_ERROR_NAMES = {
    400: "bad_request",
    404: "unknown_model",
    408: "deadline",
    429: "overloaded",
    500: "internal",
}


class ParsedRequest:
    """One validated wire request, ready for the micro-batcher.

    ``iq`` is a float ``(n, 2)`` array; ``qubit`` is the *raw* optional
    index list -- the server resolves it against the target model
    (which knows its qubit count) before batching, so concatenating
    many requests into one ``predict`` call cannot change a label.

    ``op`` is ``"classify"`` for the normal path or an admin op from
    :data:`ADMIN_OPS` (then ``model``/``iq`` are ``None``); classify
    requests carry the :class:`~repro.observe.live.TraceContext`
    minted at parse time in ``trace``.
    """

    __slots__ = ("deadline_ms", "iq", "model", "op", "qubit", "req_id",
                 "trace")

    def __init__(self, req_id, model: str | None, iq, qubit,
                 deadline_ms: float | None, *, op: str = "classify",
                 trace: TraceContext | None = None):
        self.req_id = req_id
        self.model = model
        self.iq = iq
        self.qubit = qubit
        self.deadline_ms = deadline_ms
        self.op = op
        self.trace = trace

    @property
    def n_shots(self) -> int:
        return 0 if self.iq is None else len(self.iq)


def parse_request(line: bytes | str) -> ParsedRequest:
    """Parse + validate one request line (see module docstring).

    Malformed input raises :class:`~repro.errors.ServeProtocolError`
    naming the offending field.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_LINE_BYTES:
            raise ServeProtocolError(
                f"request line exceeds {MAX_LINE_BYTES} bytes", field="iq")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServeProtocolError(
                f"request is not valid UTF-8: {exc}") from exc
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeProtocolError(
            f"request is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ServeProtocolError(
            f"request must be a JSON object, got {type(doc).__name__}")

    req_id = doc.get("id")
    if isinstance(req_id, (dict, list)):
        raise ServeProtocolError(
            "id must be a JSON scalar", field="id")

    op = doc.get("op")
    if op is not None:
        if op not in ADMIN_OPS:
            raise ServeProtocolError(
                f"unknown op {op!r}; supported: "
                f"{', '.join(sorted(ADMIN_OPS))}", field="op")
        return ParsedRequest(req_id, None, None, None, None, op=op)

    model = doc.get("model")
    if not isinstance(model, str) or not model:
        raise ServeProtocolError(
            "model must be a non-empty string naming a registered "
            "classifier", field="model")

    if "iq" not in doc:
        raise ServeProtocolError("iq is required", field="iq")
    try:
        iq = validate_points("iq", doc["iq"])
    except ValidationError as exc:
        raise ServeProtocolError(str(exc), field="iq") from exc

    qubit = doc.get("qubit")
    if qubit is not None and not isinstance(qubit, list):
        raise ServeProtocolError(
            "qubit must be a list with one index per I/Q pair",
            field="qubit")

    deadline_ms = doc.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) \
                or not np.isfinite(deadline_ms) or deadline_ms <= 0:
            raise ServeProtocolError(
                "deadline_ms must be a positive finite number",
                field="deadline_ms")
        deadline_ms = float(deadline_ms)

    trace = TraceContext(model=model, shots=len(iq))
    return ParsedRequest(req_id, model, iq, qubit, deadline_ms,
                         trace=trace)


def encode_request(req_id, model: str, iq, qubit=None,
                   deadline_ms: float | None = None) -> bytes:
    """Client-side encoder: one request as a newline-terminated line."""
    doc = {"id": req_id, "model": model,
           "iq": np.asarray(iq, dtype=float).tolist()}
    if qubit is not None:
        doc["qubit"] = np.asarray(qubit).astype(int).tolist()
    if deadline_ms is not None:
        doc["deadline_ms"] = float(deadline_ms)
    return (json.dumps(doc) + "\n").encode("utf-8")


def encode_op_request(op: str, req_id=None) -> bytes:
    """Client-side encoder for an admin op (e.g. ``stats``)."""
    return (json.dumps({"id": req_id, "op": op}) + "\n").encode("utf-8")


def stats_response(req_id, snapshot: dict) -> bytes:
    """Encode the live stats snapshot an ``{"op": "stats"}`` gets."""
    doc = {"id": req_id, "ok": True, "op": "stats", "stats": snapshot}
    return (json.dumps(doc) + "\n").encode("utf-8")


def ok_response(req_id, labels: np.ndarray, *, model_digest: str = "",
                batch_size: int = 0, queue_ms: float = 0.0) -> bytes:
    """Encode a success response line."""
    doc = {
        "id": req_id,
        "ok": True,
        "labels": np.asarray(labels).astype(int).tolist(),
        "model_digest": model_digest,
        "batch_size": int(batch_size),
        "queue_ms": round(float(queue_ms), 3),
    }
    return (json.dumps(doc) + "\n").encode("utf-8")


def error_response(req_id, exc: Exception) -> bytes:
    """Encode an error response line from a (typed) exception."""
    code = int(getattr(exc, "code", 500))
    doc = {
        "id": req_id,
        "ok": False,
        "code": code,
        "error": _ERROR_NAMES.get(code, "internal"),
        "message": str(exc),
    }
    field = getattr(exc, "field", "")
    if field:
        doc["field"] = field
    return (json.dumps(doc) + "\n").encode("utf-8")


def parse_response(line: bytes | str) -> dict:
    """Client-side decoder; raises :class:`~repro.errors.ServeError`
    on a line that is not a valid response object."""
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServeError(
            f"malformed response from server: {exc}") from exc
    if not isinstance(doc, dict) or "ok" not in doc:
        raise ServeError(f"malformed response from server: {line!r}")
    return doc


def raise_for_response(doc: dict) -> dict:
    """Raise the typed exception an error response encodes; pass
    success responses through unchanged."""
    if doc.get("ok"):
        return doc
    code = int(doc.get("code", 500))
    message = doc.get("message", "request failed")
    if code == 429:
        raise ServeOverloadError(message)
    if code == 408:
        raise DeadlineError(message)
    if code in (400, 404):
        exc = ServeProtocolError(message, field=doc.get("field", ""))
        exc.code = code
        raise exc
    raise ServeError(message)
