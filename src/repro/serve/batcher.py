"""Micro-batching: coalesce concurrent requests into one ``predict``.

The economics of the vectorized classifiers invert the usual
one-request-one-call instinct: a :meth:`Classifier.predict` over 4096
concatenated shots costs barely more than one over 64, so the service
holds each arriving request for at most ``window_s`` and classifies
everything that accumulated per model in a *single* vectorized call,
then splits the label array back to the per-request futures.

The split is bit-identical to serving each request alone because (a)
every classifier's ``predict`` is row-wise independent by construction
(the protocol contract :mod:`repro.classify.base` documents) and (b)
each request's qubit indices are resolved *before* concatenation, so
the interleaved-layout default (``arange(n) % n_qubits``) is computed
per request, never across the fused batch.  The serving-equivalence
tests pin exactly this property.

A batch flushes early when its shot count reaches
``max_batch_shots``; requests whose deadline expired while queued are
resolved with :class:`~repro.errors.DeadlineError` at flush time and
never reach the model.  Predict runs on a worker thread (the registry
models are shared read-only) so the event loop keeps accepting and
rejecting while numpy crunches.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import telemetry
from repro.classify import Classifier
from repro.errors import DeadlineError
from repro.observe.live import LiveMetrics, TraceContext
from repro.telemetry.spans import Span

__all__ = ["MicroBatcher"]


class _Pending:
    """One admitted request waiting for its batch to flush."""

    __slots__ = ("deadline_s", "enqueued_s", "enqueued_wall", "future",
                 "iq", "qubit", "trace")

    def __init__(self, iq: np.ndarray, qubit: np.ndarray,
                 deadline_s: float | None, future: asyncio.Future,
                 trace: TraceContext | None = None):
        self.iq = iq
        self.qubit = qubit
        self.deadline_s = deadline_s
        self.future = future
        self.trace = trace
        self.enqueued_s = time.perf_counter()
        self.enqueued_wall = time.time()


class MicroBatcher:
    """Per-model request coalescing (see module docstring).

    Must be created and used from a single running event loop; the
    vectorized predict itself runs on ``workers`` pool threads.
    """

    def __init__(self, *, window_s: float = 0.002,
                 max_batch_shots: int = 8192, workers: int = 2,
                 metrics: LiveMetrics | None = None):
        self.window_s = window_s
        self.max_batch_shots = max_batch_shots
        self.metrics = metrics
        self._pending: dict[str, list[_Pending]] = {}
        self._pending_shots: dict[str, int] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._models: dict[str, Classifier] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="serve-predict")
        self.batches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------ #
    async def submit(self, name: str, model: Classifier, iq: np.ndarray,
                     qubit: np.ndarray, deadline_s: float | None,
                     trace: TraceContext | None = None
                     ) -> tuple[np.ndarray, int]:
        """Queue one request; resolves to ``(labels, batch_size)``.

        ``qubit`` must already be resolved to one index per row (the
        server does this against the model before admission).  A
        ``trace`` receives the ``serve.queue`` / ``serve.batch`` /
        ``serve.predict`` spans of the batch it rode in.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._models[name] = model
        bucket = self._pending.setdefault(name, [])
        bucket.append(_Pending(iq, qubit, deadline_s, future, trace))
        self._pending_shots[name] = \
            self._pending_shots.get(name, 0) + len(iq)
        if self._pending_shots[name] >= self.max_batch_shots:
            self._flush(name)
        elif name not in self._timers:
            self._timers[name] = loop.call_later(
                self.window_s, self._flush, name)
        return await future

    def close(self) -> None:
        """Flush nothing further; release the predict worker pool."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    def _flush(self, name: str) -> None:
        """Fuse the model's pending requests into one predict call."""
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        batch = self._pending.pop(name, [])
        self._pending_shots.pop(name, None)
        if not batch:
            return

        now = time.perf_counter()
        live: list[_Pending] = []
        for item in batch:
            if item.future.cancelled():
                continue
            if item.trace is not None:
                item.trace.add(
                    "serve.queue", item.enqueued_wall,
                    now - item.enqueued_s, shots=len(item.iq))
            if item.deadline_s is not None and now > item.deadline_s:
                item.future.set_exception(DeadlineError(
                    f"deadline expired after "
                    f"{(now - item.enqueued_s) * 1e3:.1f} ms in queue"))
            else:
                live.append(item)
        if not live:
            return

        model = self._models[name]
        fuse_wall = time.time()
        fuse_t0 = time.perf_counter()
        fused_iq = np.concatenate([item.iq for item in live])
        fused_qubit = np.concatenate([item.qubit for item in live])
        fuse_s = time.perf_counter() - fuse_t0
        loop = asyncio.get_running_loop()
        self.batches += 1
        self.batched_requests += len(live)
        telemetry.count("serve.batches")
        telemetry.observe("serve.batch_requests", len(live))
        telemetry.observe("serve.batch_shots", len(fused_iq))
        if self.metrics is not None:
            self.metrics.batch_requests.observe(len(live))
            self.metrics.batch_shots.observe(len(fused_iq))

        # One shared predict span per fused batch: every participating
        # request's trace adopts the same object, so a sampled tree
        # shows exactly which batch (and how big) served the request.
        predict_span = Span("serve.predict", {
            "model": name, "requests": len(live),
            "shots": int(len(fused_iq))}, None)
        # A placeholder start: overwritten when predict actually runs,
        # but keeps traces finished early (deadline expiry mid-batch)
        # exporting at a sane timestamp.
        predict_span.start_wall = fuse_wall
        for item in live:
            if item.trace is not None:
                item.trace.add("serve.batch", fuse_wall, fuse_s,
                               requests=len(live),
                               shots=int(len(fused_iq)))
                item.trace.attach(predict_span)

        def run_predict() -> np.ndarray:
            predict_span.start_wall = time.time()
            t0 = time.perf_counter()
            try:
                return model.predict(fused_iq, qubit=fused_qubit)
            finally:
                predict_span.duration_s = time.perf_counter() - t0

        task = loop.run_in_executor(self._pool, run_predict)
        task.add_done_callback(
            lambda done: self._deliver(done, live))

    @staticmethod
    def _deliver(done: asyncio.Future, live: list[_Pending]) -> None:
        """Split the fused label array back onto the request futures."""
        exc = done.exception()
        offset = 0
        for item in live:
            n = len(item.iq)
            if not item.future.done():
                if exc is not None:
                    item.future.set_exception(exc)
                else:
                    item.future.set_result(
                        (done.result()[offset:offset + n], len(live)))
            offset += n
