"""Warm model registry: calibrate once, share read-only forever.

The service never calibrates on the request path.  A
:class:`ModelRegistry` is built *before* the socket opens -- either
from already-trained :class:`~repro.classify.base.Classifier` instances
or via :meth:`ModelRegistry.calibrated`, which generates one set of
backend calibration shots and trains every registered model kind from
it in parallel on the existing runtime
:class:`~repro.runtime.executor.Executor` (thread backend: the models
are plain numpy state, loaded once and shared read-only across the
event loop and the predict worker threads).

Lookups are dict reads; an unknown name is a typed
:class:`UnknownModelError` (the 404 path), never a lazy calibration
that would stall a batch window.
"""

from __future__ import annotations

import time

from repro import telemetry
from repro.classify import Classifier, classifier_names, get_classifier
from repro.errors import ServeProtocolError, ValidationError
from repro.quantum import falcon_backend
from repro.runtime.executor import get_executor

__all__ = ["ModelRegistry", "UnknownModelError"]


class UnknownModelError(ServeProtocolError):
    """The request named a model the registry does not hold (404)."""

    code = 404


class ModelRegistry:
    """Name -> warm :class:`~repro.classify.base.Classifier` mapping."""

    def __init__(self, models: dict[str, Classifier] | None = None):
        self._models: dict[str, Classifier] = {}
        for name, model in (models or {}).items():
            self.add(name, model)

    # ------------------------------------------------------------------ #
    def add(self, name: str, model: Classifier) -> None:
        if not name:
            raise ValidationError("model name must be non-empty")
        if not isinstance(model, Classifier):
            raise ValidationError(
                f"model {name!r} does not implement the Classifier "
                f"protocol: {type(model).__name__}")
        self._models[name] = model

    def get(self, name: str) -> Classifier:
        try:
            return self._models[name]
        except KeyError:
            raise UnknownModelError(
                f"no model {name!r} loaded (available: "
                f"{', '.join(self.names()) or 'none'})",
                field="model") from None

    def names(self) -> list[str]:
        return sorted(self._models)

    def digests(self) -> dict[str, str]:
        """Model name -> content digest (the versions the service
        reports and the session RunRecord pins)."""
        return {name: self._models[name].model_digest
                for name in self.names()}

    def __len__(self) -> int:
        return len(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    # ------------------------------------------------------------------ #
    @classmethod
    def calibrated(
        cls,
        names: list[str] | None = None,
        *,
        n_qubits: int = 27,
        n_calibration_shots: int = 256,
        seed: int = 2023,
        jobs: int | None = None,
    ) -> "ModelRegistry":
        """Calibrate every requested model kind from one shot set.

        One backend, one ``calibration_shots`` draw, then each kind's
        ``calibrate(shots_0, shots_1)`` runs on the shared thread
        :class:`~repro.runtime.executor.Executor` -- the warm-up is
        parallel but the resulting models are immutable numpy state,
        safe to share read-only across every serving thread.
        """
        names = list(names) if names else classifier_names()
        t0 = time.perf_counter()
        with telemetry.span("serve.warm_load", models=",".join(names),
                            n_qubits=n_qubits):
            backend = falcon_backend(n_qubits=n_qubits, seed=seed)
            shots_0, shots_1 = backend.calibration_shots(
                n_calibration_shots)

            def train(name: str) -> Classifier:
                return get_classifier(name).calibrate(shots_0, shots_1)

            executor = get_executor(min(len(names), 4) or 1, "thread")
            models = executor.map(train, names)
        registry = cls(dict(zip(names, models)))
        telemetry.gauge("serve.models", len(registry))
        telemetry.observe("serve.warm_load_s", time.perf_counter() - t0)
        return registry
