"""The asyncio classification server: admission, deadlines, telemetry.

Architecture (one event loop, a small predict thread pool)::

    asyncio.start_server
      └─ one reader task per connection (line-delimited JSON)
           └─ one task per request line
                └─ middleware pipeline
                     telemetry ─ admission ─ deadline ─ micro-batcher

The pipeline stages are plain ``handler -> handler`` wrappers over
:class:`RequestContext`, so every request -- served or rejected --
lands in the same spans and counters:

``telemetry``
    Wraps the request in a ``serve.request`` span, bumps
    ``serve.requests`` / ``serve.shots`` / per-code rejection counters,
    and feeds the latency histogram the session record summarizes.
``admission``
    Bounded-queue back-pressure.  If ``max_queue`` requests are already
    admitted (parsed, not yet answered), the request is rejected
    *immediately* with :class:`~repro.errors.ServeOverloadError` (429)
    -- the client gets a typed error in microseconds, never a hang,
    and ``serve.rejected`` counts it.
``deadline``
    Every request carries a deadline (its own ``deadline_ms`` or the
    server default); expiry resolves to
    :class:`~repro.errors.DeadlineError` (408) whether the time went
    to queueing or to a stalled client.

Slow *readers* are handled on the write side: each response drain is
bounded by ``write_timeout_s``, and a client that stalls its socket
long enough is disconnected (``serve.slow_client_disconnects``)
instead of parking a connection task forever.

Every server session appends one ``kind="serve"`` RunRecord to the
provenance ledger: request/rejection/shot totals, latency quantiles,
throughput, and the digests of the models it served.

Live observability (:mod:`repro.observe.live` / ``.slo``) rides the
same pipeline: every classify request carries a
:class:`~repro.observe.live.TraceContext` whose queue/batch/predict/
write spans the server tail-samples when the request was slow or
failed; rolling-window metrics feed the in-band ``{"op": "stats"}``
snapshot (answered *before* admission, so scrapes are never rejected
or queued); a periodic observer task measures event-loop lag and keeps
the bounded counter timeline the Perfetto export draws; and the
declared SLOs are graded by burn rate into the session record's
fidelity verdict.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.classify import Classifier
from repro.errors import (
    ConfigError,
    DeadlineError,
    ServeError,
    ServeOverloadError,
    ServeProtocolError,
    ValidationError,
)
from repro.observe import slo as slo_mod
from repro.observe.health import LagTracker
from repro.observe.live import LiveMetrics, TraceContext
from repro.provenance import RunLedger, RunRecord
from repro.serve.batcher import MicroBatcher
from repro.serve.models import ModelRegistry
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ParsedRequest,
    error_response,
    ok_response,
    parse_request,
    stats_response,
)
from repro.telemetry.spans import Span

__all__ = ["ClassifierServer", "RequestContext", "ServeConfig",
           "ServerThread"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server session (validated up front)."""

    host: str = "127.0.0.1"
    port: int = 0
    """0 = let the OS pick (the test/bench harness reads it back)."""
    batch_window_ms: float = 2.0
    """How long the micro-batcher holds a request for company."""
    max_batch_shots: int = 8192
    """Early-flush threshold: fused shots per predict call."""
    max_queue: int = 64
    """Admitted-but-unanswered request cap; beyond it -> 429."""
    default_deadline_ms: float = 1000.0
    """Deadline for requests that do not carry their own."""
    write_timeout_s: float = 5.0
    """Per-response drain budget before a stalled reader is dropped."""
    predict_workers: int = 2
    """Threads running the vectorized predict calls."""
    sndbuf_bytes: int | None = None
    """Shrink per-connection send buffering (socket ``SO_SNDBUF`` plus
    the transport high-water mark); ``None`` keeps OS defaults.  The
    slow-client assault scenario sets this so a stalled reader trips
    the drain timeout deterministically instead of hiding behind
    megabytes of kernel buffer."""
    slo_latency_ms: float = slo_mod.DEFAULT_LATENCY_MS
    """Declared per-request latency objective (default: the paper's
    110 us decoherence budget at the serving benchmark's wire scale)."""
    slo_error_budget: float = slo_mod.DEFAULT_ERROR_BUDGET
    """Allowed fraction of slow/failed requests per SLO objective."""
    trace_slow_ms: float | None = None
    """Tail-sampling threshold: finished requests at least this slow
    (or failed) keep their span tree; ``None`` = ``slo_latency_ms``."""
    trace_capacity: int = 64
    """How many tail-sampled request traces the session retains."""
    metrics_window_s: float = 10.0
    """Rolling window the live metrics and stats snapshots cover."""

    def __post_init__(self):
        for name in ("batch_window_ms", "max_batch_shots", "max_queue",
                     "default_deadline_ms", "write_timeout_s",
                     "predict_workers", "slo_latency_ms",
                     "trace_capacity", "metrics_window_s"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigError(
                    f"{name} must be positive, got {value!r}", field=name)
        if not 0 < self.slo_error_budget < 1:
            raise ConfigError(
                f"slo_error_budget must be in (0, 1), got "
                f"{self.slo_error_budget!r}", field="slo_error_budget")
        if self.trace_slow_ms is not None and not self.trace_slow_ms > 0:
            raise ConfigError(
                f"trace_slow_ms must be positive or None, got "
                f"{self.trace_slow_ms!r}", field="trace_slow_ms")
        if self.sndbuf_bytes is not None and not self.sndbuf_bytes > 0:
            raise ConfigError(
                f"sndbuf_bytes must be positive or None, got "
                f"{self.sndbuf_bytes!r}", field="sndbuf_bytes")


@dataclass
class RequestContext:
    """What the middleware pipeline threads through one request."""

    request: ParsedRequest
    model: Classifier
    qubit: np.ndarray
    t0: float
    deadline_s: float | None = None
    labels: np.ndarray = field(default_factory=lambda: np.empty(0, int))
    batch_size: int = 0


class ClassifierServer:
    """Async batched classification over warm models (module docstring)."""

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None,
                 ledger: RunLedger | None = None):
        self.registry = registry
        self.config = config or ServeConfig()
        self.ledger = ledger
        self.host = self.config.host
        self.port = self.config.port
        self.stats: dict[str, int] = {
            "serve.connections": 0,
            "serve.requests": 0,
            "serve.shots": 0,
            "serve.rejected": 0,
            "serve.deadline_expired": 0,
            "serve.bad_requests": 0,
            "serve.unknown_model": 0,
            "serve.slow_client_disconnects": 0,
            "serve.internal_errors": 0,
            "serve.stats_scrapes": 0,
            "serve.slo_latency_violations": 0,
        }
        self.live = LiveMetrics(window_s=self.config.metrics_window_s)
        self.slo_spec = slo_mod.SLOSpec(
            latency_ms=self.config.slo_latency_ms,
            error_budget=self.config.slo_error_budget)
        self._trace_slow_ms = (
            self.config.trace_slow_ms
            if self.config.trace_slow_ms is not None
            else self.config.slo_latency_ms)
        self._sampled_traces: deque[Span] = deque(
            maxlen=self.config.trace_capacity)
        self._lag = LagTracker()
        self._counter_timeline: deque[tuple[float, dict]] = deque(
            maxlen=600)
        self._latencies_ms: list[float] = []
        self._inflight = 0
        self._started_s = 0.0
        self._start_ts = ""
        self._server: asyncio.AbstractServer | None = None
        self._batcher: MicroBatcher | None = None
        self._observer_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        # telemetry(admission(deadline(batcher))) -- every request,
        # served or rejected, crosses the same instrumented pipeline.
        self._pipeline = self._telemetry_middleware(
            self._admission_middleware(
                self._deadline_middleware(self._classify)))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        cfg = self.config
        self._batcher = MicroBatcher(
            window_s=cfg.batch_window_ms / 1e3,
            max_batch_shots=cfg.max_batch_shots,
            workers=cfg.predict_workers,
            metrics=self.live)
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port,
            limit=MAX_LINE_BYTES)
        self.host, self.port = \
            self._server.sockets[0].getsockname()[:2]
        self._started_s = time.perf_counter()
        self._start_ts = telemetry.iso_ts(time.time())
        self._observer_task = asyncio.ensure_future(self._observe_loop())
        telemetry.gauge("serve.models", len(self.registry))

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> RunRecord:
        """Close the socket, flush the session record to the ledger."""
        if self._observer_task is not None:
            self._observer_task.cancel()
            try:
                await self._observer_task
            except asyncio.CancelledError:
                pass
            self._observer_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
            self._conn_tasks.clear()
        if self._batcher is not None:
            self._batcher.close()
        record = self.session_record()
        if self.ledger is not None:
            self.ledger.append(record)
        return record

    # ------------------------------------------------------------------ #
    # Connection + request plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn_task = asyncio.current_task()
        self._conn_tasks.add(conn_task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._conn_tasks.discard(conn_task)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.stats["serve.connections"] += 1
        telemetry.count("serve.connections")
        if self.config.sndbuf_bytes:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF,
                                self.config.sndbuf_bytes)
            writer.transport.set_write_buffer_limits(
                high=self.config.sndbuf_bytes)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.stats["serve.bad_requests"] += 1
                    await self._send(writer, write_lock, error_response(
                        None, ServeProtocolError(
                            f"request line exceeds {MAX_LINE_BYTES} "
                            f"bytes", field="iq")))
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                # One task per line: requests from a single connection
                # can overlap inside the batch window and coalesce.
                # Responses may come back out of order; clients match
                # on the echoed id.
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, TimeoutError):
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        payload, trace = await self._process(line)
        if trace is None:
            await self._send(writer, write_lock, payload)
            return
        write_wall = time.time()
        write_t0 = time.perf_counter()
        await self._send(writer, write_lock, payload)
        trace.add("serve.write", write_wall,
                  time.perf_counter() - write_t0, bytes=len(payload))
        self._finish_trace(trace)

    def _finish_trace(self, trace: TraceContext) -> None:
        """Close the request's span tree; tail-sample slow/failed ones."""
        root = trace.finish()
        latency_ms = root.duration_s * 1e3
        root.attrs.setdefault("status", "ok")
        root.attrs["latency_ms"] = round(latency_ms, 3)
        if root.attrs["status"] != "ok" \
                or latency_ms >= self._trace_slow_ms:
            self._sampled_traces.append(root)

    @property
    def sampled_traces(self) -> list[Span]:
        """Tail-sampled request span trees (slow or failed), bounded."""
        return list(self._sampled_traces)

    def counter_timeline(self) -> list[tuple[float, dict]]:
        """The observer task's ``(wall, counters)`` series, for the
        Perfetto counter tracks a session export draws."""
        return list(self._counter_timeline)

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, payload: bytes) -> None:
        """Write one response; drop clients that stall their reads."""
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(payload)
            try:
                await asyncio.wait_for(
                    writer.drain(), self.config.write_timeout_s)
            except (TimeoutError, asyncio.TimeoutError, ConnectionError):
                self.stats["serve.slow_client_disconnects"] += 1
                telemetry.count("serve.slow_client_disconnects")
                writer.transport.abort()

    async def _process(self, line: bytes
                       ) -> tuple[bytes, TraceContext | None]:
        """Parse, pipeline, encode: every outcome becomes a response.

        Returns ``(payload, trace)``; the trace (classify requests
        only) is finished by the caller *after* the response write, so
        the sampled span tree covers the full server-side lifetime.
        Admin ops answer before the pipeline -- a stats scrape is never
        admission-rejected and never waits on a batch.
        """
        t0 = time.perf_counter()
        req_id = None
        trace = None
        try:
            request = parse_request(line)
            req_id = request.req_id
            if request.op != "classify":
                return self._admin_response(request), None
            trace = request.trace
            model = self.registry.get(request.model)
            try:
                qubit = model.resolve_qubit(request.iq, request.qubit)
            except ValidationError as exc:
                raise ServeProtocolError(str(exc), field="qubit") from exc
            ctx = RequestContext(request, model, qubit, t0)
            await self._pipeline(ctx)
        except (ServeError, ServeProtocolError) as exc:
            code = int(getattr(exc, "code", 500))
            key = {404: "serve.unknown_model",
                   400: "serve.bad_requests"}.get(code)
            if key is not None:
                self.stats[key] += 1
                telemetry.count(key)
            if trace is not None:
                trace.set(status="error", code=code)
            return error_response(req_id, exc), trace
        except Exception as exc:  # noqa: BLE001 - wire boundary
            self.stats["serve.internal_errors"] += 1
            telemetry.count("serve.internal_errors")
            self.live.errors.add()
            if trace is not None:
                trace.set(status="error", code=500)
            return error_response(req_id, ServeError(
                f"internal error: {type(exc).__name__}: {exc}")), trace
        trace.set(status="ok", code=200)
        return ok_response(
            req_id, ctx.labels, model_digest=ctx.model.model_digest,
            batch_size=ctx.batch_size,
            queue_ms=(time.perf_counter() - t0) * 1e3), trace

    # ------------------------------------------------------------------ #
    # In-band introspection + the observer task
    # ------------------------------------------------------------------ #
    def _admin_response(self, request: ParsedRequest) -> bytes:
        """Answer an admin op (only ``stats`` exists today)."""
        self.stats["serve.stats_scrapes"] += 1
        telemetry.count("serve.stats_scrapes")
        return stats_response(request.req_id, self.stats_snapshot())

    def stats_snapshot(self) -> dict:
        """The live stats document (also the ``repro top`` payload).

        Built in one pass on the event loop thread, so the counters,
        windowed metrics and SLO grades describe the same instant --
        a scrape can never see a torn half-updated view.
        """
        now = time.time()
        return {
            "endpoint": f"{self.host}:{self.port}",
            "uptime_s": round(
                max(time.perf_counter() - self._started_s, 0.0), 3),
            "inflight": self._inflight,
            "max_queue": self.config.max_queue,
            "models": self.registry.digests(),
            "counters": dict(self.stats),
            "window": self.live.snapshot(now),
            "slo": self._slo_report().to_dict(),
            "health": {
                **self._lag.summary(),
                "sampled_traces": len(self._sampled_traces),
            },
        }

    def _slo_report(self) -> slo_mod.SLOReport:
        """Grade the session-cumulative counts against the SLO spec."""
        total = (self.stats["serve.requests"]
                 + self.stats["serve.rejected"]
                 + self.stats["serve.deadline_expired"]
                 + self.stats["serve.internal_errors"])
        return slo_mod.evaluate(
            self.slo_spec, total=total,
            latency_violations=self.stats["serve.slo_latency_violations"],
            errors=(self.stats["serve.deadline_expired"]
                    + self.stats["serve.internal_errors"]))

    async def _observe_loop(self, interval_s: float = 0.25) -> None:
        """Periodic self-observation on the serving loop itself.

        Each tick measures how late the loop woke (scheduler lag -- the
        earliest overload signal) and appends one point to the bounded
        counter timeline the Perfetto export draws as counter tracks.
        """
        loop = asyncio.get_running_loop()
        while True:
            expected = loop.time() + interval_s
            await asyncio.sleep(interval_s)
            self._lag.record(loop.time() - expected)
            now = time.time()
            self._counter_timeline.append((now, {
                "inflight": self._inflight,
                "requests_per_sec": round(self.live.requests.rate(now), 1),
                "latency_p99_ms": round(
                    self.live.latency_ms.percentile(99, now), 3),
            }))

    # ------------------------------------------------------------------ #
    # The middleware pipeline
    # ------------------------------------------------------------------ #
    def _telemetry_middleware(self, nxt):
        async def run(ctx: RequestContext) -> None:
            with telemetry.span("serve.request", model=ctx.request.model,
                                shots=ctx.request.n_shots) as sp:
                try:
                    await nxt(ctx)
                except ServeOverloadError:
                    self.stats["serve.rejected"] += 1
                    telemetry.count("serve.rejected")
                    self.live.rejected.add()
                    raise
                except DeadlineError:
                    self.stats["serve.deadline_expired"] += 1
                    telemetry.count("serve.deadline_expired")
                    self.live.errors.add()
                    raise
                finally:
                    latency_ms = (time.perf_counter() - ctx.t0) * 1e3
                    self._latencies_ms.append(latency_ms)
                    telemetry.observe("serve.latency_ms", latency_ms)
                    sp.set(latency_ms=round(latency_ms, 3))
                    self.live.requests.add()
                    self.live.latency_ms.observe(latency_ms)
                    if latency_ms > self.config.slo_latency_ms:
                        self.stats["serve.slo_latency_violations"] += 1
                        self.live.latency_violations.add()
            self.stats["serve.requests"] += 1
            self.stats["serve.shots"] += ctx.request.n_shots
            telemetry.count("serve.requests")
            telemetry.count("serve.shots", ctx.request.n_shots)
            self.live.shots.add(ctx.request.n_shots)

        return run

    def _admission_middleware(self, nxt):
        async def run(ctx: RequestContext) -> None:
            if self._inflight >= self.config.max_queue:
                raise ServeOverloadError(
                    f"queue full ({self.config.max_queue} requests in "
                    f"flight); retry later")
            self._inflight += 1
            self.live.queue_depth.observe(self._inflight)
            try:
                await nxt(ctx)
            finally:
                self._inflight -= 1

        return run

    def _deadline_middleware(self, nxt):
        async def run(ctx: RequestContext) -> None:
            deadline_ms = ctx.request.deadline_ms \
                or self.config.default_deadline_ms
            ctx.deadline_s = ctx.t0 + deadline_ms / 1e3
            remaining = ctx.deadline_s - time.perf_counter()
            if remaining <= 0:
                raise DeadlineError(
                    f"deadline of {deadline_ms:g} ms expired before "
                    f"classification started")
            try:
                await asyncio.wait_for(nxt(ctx), remaining)
            except (TimeoutError, asyncio.TimeoutError):
                raise DeadlineError(
                    f"deadline of {deadline_ms:g} ms expired in the "
                    f"batch queue") from None

        return run

    async def _classify(self, ctx: RequestContext) -> None:
        ctx.labels, ctx.batch_size = await self._batcher.submit(
            ctx.request.model, ctx.model, ctx.request.iq, ctx.qubit,
            ctx.deadline_s, trace=ctx.request.trace)

    # ------------------------------------------------------------------ #
    # Session provenance
    # ------------------------------------------------------------------ #
    def session_record(self) -> RunRecord:
        """One ``kind="serve"`` ledger line summarizing the session.

        Beyond the counters and latency quantiles, the record carries
        the session's queue-depth and fused-batch-size histogram
        summaries and the SLO burn-rate report -- its verdict rides in
        the ``fidelity`` slot, so ``repro report --strict`` gates on
        serving sessions exactly as it gates on experiment fidelity.
        """
        wall_s = max(time.perf_counter() - self._started_s, 1e-9)
        lat = np.asarray(self._latencies_ms, dtype=float)
        metrics: dict[str, float] = dict(self.stats)
        metrics["serve.batches"] = \
            self._batcher.batches if self._batcher else 0
        metrics["serve.shots_per_sec"] = \
            round(self.stats["serve.shots"] / wall_s, 1)
        if len(lat):
            metrics["serve.latency_p50_ms"] = \
                round(float(np.percentile(lat, 50)), 3)
            metrics["serve.latency_p99_ms"] = \
                round(float(np.percentile(lat, 99)), 3)
        metrics.update(self.live.record_summaries())
        slo_report = self._slo_report()
        metrics.update(slo_report.metrics())
        return RunRecord(
            experiment="serve",
            kind="serve",
            start_ts=self._start_ts,
            wall_s=round(wall_s, 3),
            telemetry={"models": self.registry.digests(),
                       "config": {
                           "batch_window_ms": self.config.batch_window_ms,
                           "max_batch_shots": self.config.max_batch_shots,
                           "max_queue": self.config.max_queue,
                       },
                       "slo": {"spec": self.slo_spec.to_dict(),
                               **slo_report.to_dict()},
                       "health": self._lag.summary()},
            metrics=metrics,
            fidelity={"kind": "slo", **slo_report.to_dict()},
        )


class ServerThread:
    """A :class:`ClassifierServer` on a private loop in a daemon thread.

    The harness tests, benchmarks and assault scenarios use: enter the
    context, read ``host``/``port``, hammer it from sync clients, exit
    and receive the session :class:`~repro.provenance.RunRecord`.
    """

    def __init__(self, registry: ModelRegistry,
                 config: ServeConfig | None = None,
                 ledger: RunLedger | None = None):
        self.server = ClassifierServer(registry, config, ledger)
        self.record: RunRecord | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # pragma: no cover - bind errors
                self._failure = exc
                self._ready.set()
                return
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise ServeError(
                f"server failed to start: {self._failure}") \
                from self._failure
        return self

    def stop(self) -> RunRecord:
        if self._loop is None:
            raise ServeError("server thread was never started")
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop)
        self.record = future.result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        return self.record

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
