"""Command-line interface: regenerate paper artifacts from the shell.

    python -m repro table1          # SoC timing (Table 1)
    python -m repro fig6            # power breakdown (Fig. 6)
    python -m repro table2          # cycles per classification (Table 2)
    python -m repro fig7            # scaling study (Fig. 7)
    python -m repro fig2|fig3|fig5  # the remaining artifacts
    python -m repro ablations       # ABL-1..4
    python -m repro extensions      # EXT-THERMAL/FPGA/QEC/VDD/VQE/MISMATCH
    python -m repro ext_seu         # EXT-SEU fault-injection campaign
    python -m repro all             # everything above

``--calibrated`` runs the honest flow (staged calibration first) instead
of the fast golden-parameter flow; ``--shots N`` controls the ISS
workload size.
"""

from __future__ import annotations

import argparse
import sys

COMMANDS = (
    "fig2", "fig3", "fig5", "table1", "fig6", "table2", "fig7",
    "ablations", "extensions", "ext_seu", "all",
)


def _build_study(args):
    from repro.core import CryoStudy, StudyConfig

    return CryoStudy(
        StudyConfig(fast=not args.calibrated, shots=args.shots)
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument(
        "--calibrated", action="store_true",
        help="run the full flow including compact-model calibration",
    )
    parser.add_argument("--shots", type=int, default=15,
                        help="shots per qubit for ISS workloads")
    args = parser.parse_args(argv)

    from repro import experiments as exp

    wanted = COMMANDS[:-1] if args.command == "all" else (args.command,)
    study = None
    for command in wanted:
        if command == "fig2":
            print(exp.fig2_readout.report())
        elif command == "fig3":
            print(exp.fig3_calibration.report())
        elif command == "ext_seu":
            print(exp.ext_seu.report())
        else:
            study = study or _build_study(args)
            if command == "fig5":
                print(exp.fig5_delays.report(exp.fig5_delays.run(study)))
            elif command == "table1":
                print(exp.table1_timing.report(exp.table1_timing.run(study)))
            elif command == "fig6":
                print(exp.fig6_power.report(exp.fig6_power.run(study)))
            elif command == "table2":
                print(exp.table2_cycles.report(exp.table2_cycles.run(study)))
            elif command == "fig7":
                print(exp.fig7_scaling.report(exp.fig7_scaling.run(study)))
            elif command == "ablations":
                print(exp.ablations.report_all(study))
            elif command == "extensions":
                print(exp.ext_thermal.report())
                print()
                print(exp.ext_fpga.report(exp.ext_fpga.run(study)))
                print()
                print(exp.ext_qec.report(exp.ext_qec.run(study)))
                print()
                print(exp.ext_vdd.report(exp.ext_vdd.run(study)))
                print()
                print(exp.ext_vqe.report(exp.ext_vqe.run(study)))
                print()
                print(exp.ext_mismatch.report())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
