"""Command-line interface: regenerate paper artifacts from the shell.

    python -m repro table1          # SoC timing (Table 1)
    python -m repro fig6            # power breakdown (Fig. 6)
    python -m repro table2          # cycles per classification (Table 2)
    python -m repro fig7            # scaling study (Fig. 7)
    python -m repro fig2|fig3|fig5  # the remaining artifacts
    python -m repro ablations       # ABL-1..4
    python -m repro extensions      # EXT-THERMAL/FPGA/QEC/VDD/VQE/MISMATCH
    python -m repro ext_seu         # EXT-SEU fault-injection campaign
    python -m repro stats           # flow stage-timing tree (telemetry)
    python -m repro all             # every artifact above
    python -m repro run fig6        # one experiment + ledger + verdict
    python -m repro report          # latest-vs-paper / drift tables
    python -m repro compare A B     # per-metric deltas of two runs
    python -m repro assault         # hostile-scenario campaign (--tier)
    python -m repro profile fig2    # sampler+tracer+health deep profile
    python -m repro serve           # batched classification service
    python -m repro top host:port   # live serving dashboard (stats op)

The command list is *generated* from the experiment registry
(:mod:`repro.experiments.registry`): every registered
:class:`~repro.experiments.registry.ExperimentSpec` is a command,
umbrella groups (``extensions``) expand to their members, and ``all``
expands to every spec flagged for it.

Provenance (the run ledger, :mod:`repro.provenance`): every experiment
invocation appends a :class:`~repro.provenance.records.RunRecord` to
the append-only JSONL ledger under ``--runs-dir`` (default:
``REPRO_RUNS_DIR`` or ``.repro/runs``) and ends with a PASS/WARN/FAIL
paper-fidelity verdict from the experiment's declared
:class:`~repro.provenance.fidelity.FidelitySpec`.  ``repro run <exp>``
is the explicit single-experiment form; ``repro report`` renders the
latest-vs-paper and latest-vs-previous drift tables (``--json`` /
``--markdown`` for machines, ``--strict`` exits non-zero on any FAIL);
``repro compare <runA> <runB>`` diffs two ledger entries, including
ingested benchmark records.  ``--no-ledger`` skips the append.

``--calibrated`` runs the honest flow (staged calibration first) instead
of the fast golden-parameter flow; ``--shots N`` controls the ISS
workload size; ``--jobs N`` parallelizes the flow's fan-outs (library
builds, and -- for multi-experiment commands -- the experiments
themselves) over the :mod:`repro.runtime` executor.  ``REPRO_JOBS`` in
the environment is the flag's default; ``REPRO_CACHE_DIR`` additionally
turns on the on-disk result cache so repeat runs skip finished work.

Observability flags (global):

* ``-v`` / ``--quiet`` raise/suppress diagnostic logging (the package
  logs through the stdlib ``repro`` logger hierarchy);
* ``--trace`` enables span tracing and prints the timing tree at exit;
  ``--trace FILE`` writes the full trace to FILE -- on parallel runs,
  worker spans are merged back into one tree.  ``--trace-format
  chrome|jsonl`` picks the encoding: ``chrome`` is Chrome/Perfetto
  ``trace_event`` JSON (open it at ``ui.perfetto.dev``), ``jsonl`` the
  flat span-per-line form;
* ``--metrics`` prints the flat metrics-registry summary at exit.

Deep observability (:mod:`repro.observe`): ``repro profile <exp>`` runs
one registered experiment under the resource sampler, the tracer and
executor health monitoring, prints a self-time attribution table (top
span names by exclusive wall time) plus resource peaks, writes a
Perfetto trace, and appends a ``kind="profile"`` RunRecord.  Every
experiment invocation additionally runs the sampler, so RunRecords
carry peak RSS / CPU utilization and ``repro report`` renders a
resource table.

Reports go through :func:`_report` (a thin ``logging`` wrapper), so
``--quiet`` silences everything below WARNING with no print() to chase.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from functools import partial

from repro import telemetry

_LOG = logging.getLogger("repro.cli")


class _CLIFormatter(logging.Formatter):
    """Bare text for CLI reports; ``level name: message`` for the rest."""

    def format(self, record: logging.LogRecord) -> str:
        if record.name == _LOG.name and record.levelno == logging.INFO:
            return record.getMessage()
        return (f"{record.levelname.lower()}: {record.name}: "
                f"{record.getMessage()}")


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Route the ``repro`` logger hierarchy to stdout for this process."""
    root = logging.getLogger("repro")
    root.setLevel(logging.DEBUG if verbose else logging.INFO)
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(_CLIFormatter())
    if quiet:
        handler.setLevel(logging.WARNING)
    elif verbose:
        handler.setLevel(logging.DEBUG)
    else:
        handler.setLevel(logging.INFO)
    # Re-running main() in one process (tests) must not stack handlers.
    for old in [h for h in root.handlers
                if isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)]:
        root.removeHandler(old)
    root.addHandler(handler)


def _report(text: str = "") -> None:
    """Emit one artifact/report block to the user."""
    _LOG.info("%s", text)


def _build_study(args):
    from repro.core import CryoStudy, StudyConfig

    return CryoStudy(
        StudyConfig(fast=not args.calibrated, shots=args.shots,
                    jobs=args.jobs)
    )


# ---------------------------------------------------------------------- #
# Registry-driven command set.
# ---------------------------------------------------------------------- #
#: Commands that dispatch on their own rather than expanding to
#: experiment specs through the registry ("all" expands, so it is not
#: one of these).
BUILTIN_COMMANDS = ("stats", "run", "report", "compare", "assault",
                    "profile", "serve", "top")


def _commands() -> list[str]:
    """Every accepted command: specs, groups, and the builtins."""
    from repro.experiments import registry

    return (registry.names() + sorted(registry.groups())
            + ["all", *BUILTIN_COMMANDS])


def _expand(command: str):
    """A command -> the ordered experiment specs it runs."""
    from repro.experiments import registry

    if command == "all":
        return [s for s in registry.all_specs() if s.in_all]
    groups = registry.groups()
    if command in groups:
        return groups[command]
    return [registry.get(command)]


# ---------------------------------------------------------------------- #
# Provenance: every experiment execution yields (report text, RunRecord).
# ---------------------------------------------------------------------- #
def _ledger(args):
    """The run ledger for this invocation (None with ``--no-ledger``)."""
    if args.no_ledger:
        return None
    from repro.provenance import RunLedger

    return RunLedger(args.runs_dir)


def _execute_recorded(spec, study, config):
    """Run one experiment; return its report text and its RunRecord.

    Every execution runs under a :class:`~repro.observe.ResourceSampler`
    so the record carries peak RSS / CPU utilization -- the resource
    column ``repro report`` renders.
    """
    from repro.observe import ResourceSampler
    from repro.provenance import RunRecord, telemetry_snapshot

    start_ts = telemetry.iso_ts(time.time())
    t0 = time.perf_counter()
    with ResourceSampler() as sampler:
        result = spec.run_result(study, config)
    wall_s = time.perf_counter() - t0
    text = spec.report(result)
    fidelity = spec.check_fidelity(result)
    record = RunRecord(
        experiment=spec.name,
        start_ts=start_ts,
        wall_s=wall_s,
        config_digest=config.config_digest() if config is not None else None,
        telemetry=telemetry_snapshot(study if spec.needs_study else None),
        resources=sampler.summary(),
        metrics=fidelity.metrics if fidelity is not None else {},
        fidelity=fidelity.to_dict() if fidelity is not None else None,
    )
    return text, record


def _report_verdict(record, ledger) -> None:
    """The fidelity verdict + ledger line ``repro run`` ends with."""
    from repro.provenance import FidelityReport

    if record.fidelity:
        fidelity = FidelityReport.from_dict(record.fidelity)
        _report(f"fidelity[{record.experiment}]: {fidelity.verdict}")
        for line in fidelity.summary_lines():
            _report(line)
    else:
        _report(f"fidelity[{record.experiment}]: no spec declared")
    if ledger is not None:
        ledger.append(record)
        _report(f"run {record.run_id} appended to {ledger.path}")


# ---------------------------------------------------------------------- #
# Parallel experiment fan-out.  The shared study is prebuilt (through
# its heavy common stages) *before* the pool starts, so forked workers
# inherit it copy-on-write instead of rebuilding libraries per process;
# a worker that finds no inherited study (spawn start method) falls
# back to rebuilding from the config round-trip.
# ---------------------------------------------------------------------- #
_TASK_STUDY = None


def _experiment_task(config_data: dict, name: str) -> tuple[str, dict]:
    """Run one registered experiment end-to-end in a worker.

    Returns ``(report text, RunRecord dict)`` -- plain data, so the
    pair crosses the process boundary; the parent appends the record
    (single ledger writer) and prints the verdict.
    """
    from repro.core import CryoStudy, StudyConfig
    from repro.experiments import registry

    spec = registry.get(name)
    config = StudyConfig.from_dict(config_data)
    study = None
    if spec.needs_study:
        study = _TASK_STUDY or CryoStudy(config)
    with telemetry.span("cli.experiment", experiment=name):
        text, record = _execute_recorded(spec, study, config)
    return text, record.to_dict()


def _run_parallel(specs, args) -> list[tuple[str, dict]]:
    """Fan independent experiments out over the executor."""
    global _TASK_STUDY
    from repro.runtime import get_executor

    study = None
    if any(s.needs_study for s in specs):
        study = _build_study(args)
        with telemetry.span("cli.prebuild_shared_stages"):
            study.timing  # noqa: B018 - forces libraries/soc/placement
    _TASK_STUDY = study
    try:
        executor = get_executor(args.jobs)
        task = partial(_experiment_task,
                       study.config.to_dict() if study is not None
                       else _build_study(args).config.to_dict())
        return executor.map(task, [s.name for s in specs])
    finally:
        _TASK_STUDY = None


# ---------------------------------------------------------------------- #
# repro stats: run a representative slice of every instrumented layer
# and print the stage-timing tree.
# ---------------------------------------------------------------------- #
def _spice_probe(study) -> None:
    """One transistor-level inverter transient + DC solve.

    The fast flow characterizes with the analytic engine, so without
    this probe a ``repro stats`` trace would show no solver spans; the
    probe runs the same netlist the SPICE engine uses for one
    representative point.
    """
    from repro.cells import CellCharacterizer, CharacterizationConfig
    from repro.cells.catalog import full_catalog
    from repro.spice import dc_operating_point, ramp, transient

    config = CharacterizationConfig(engine="spice")
    char = CellCharacterizer(study.models, config)
    inv = next(c for c in full_catalog() if c.name == "INV_X1")
    wave = ramp(5e-12, 10e-12, 0.0, config.vdd)
    circuit = char.build_cell_circuit(inv, 2e-15, {"A": wave})
    transient(circuit, 60e-12, 0.25e-12, record=["A", inv.output])
    dc_operating_point(circuit)


def _reliability_probe() -> None:
    """A miniature SEU campaign so the trace covers the campaign layer."""
    import numpy as np

    from repro.reliability import CampaignConfig, qec_workload, run_campaign

    rng = np.random.default_rng(7)
    bits = rng.integers(0, 2, 45)
    run_campaign(
        qec_workload(bits, distance=3),
        CampaignConfig(n_injections=12, seed=7),
    )


def _sleepy_task(i: int) -> int:
    """Stats executor probe payload (module-level: pickles if needed)."""
    time.sleep(0.002 * (1 + i % 3))
    return i * i


def _executor_probe() -> None:
    """A small heartbeat-monitored fan-out for the health section."""
    from repro.runtime import get_executor

    get_executor(2, "thread").map(_sleepy_task, list(range(8)))


def _health_lines(summary: dict) -> str:
    """Render a health-monitor summary as the stats/profile section."""
    if not summary:
        return "executor health: no heartbeats recorded"
    lines = [
        f"executor health: {summary.get('workers', 0)} worker(s), "
        f"{summary.get('tasks_completed', 0)}/"
        f"{summary.get('tasks_started', 0)} tasks completed, "
        f"{summary.get('active', 0)} active"
    ]
    if "task_p50_s" in summary:
        lines.append(
            f"  task wall: p50 {summary['task_p50_s'] * 1e3:.2f} ms, "
            f"p99 {summary['task_p99_s'] * 1e3:.2f} ms"
        )
    if "straggler_skew" in summary:
        flag = (" (STRAGGLERS)" if summary.get("stragglers_flagged")
                else "")
        lines.append(
            f"  straggler skew (p99/median): "
            f"{summary['straggler_skew']:.2f}{flag}"
        )
    stalls = summary.get("stall_events", [])
    if stalls:
        lines.append(f"  STALLED: {len(stalls)} event(s), e.g. "
                     f"{stalls[0]['worker']} stuck on {stalls[0]['task']} "
                     f"for {stalls[0]['age_s']:.1f} s")
    else:
        lines.append(f"  no stalls (timeout "
                     f"{summary.get('stall_timeout_s', 0):.1f} s)")
    return "\n".join(lines)


def _run_stats(args) -> None:
    """The ``repro stats`` command: trace one pass through the stack."""
    from repro.observe import health

    study = _build_study(args)
    health.enable()
    try:
        with telemetry.span("repro.stats", fast=not args.calibrated):
            # Flow stages trace themselves (flow.libraries,
            # flow.soc_model, flow.timing...); timing forces the chain.
            study.timing
            study.knn_cycles(20)
            with telemetry.span("stats.spice_probe"):
                _spice_probe(study)
            with telemetry.span("stats.reliability_probe"):
                _reliability_probe()
            with telemetry.span("stats.executor_probe"):
                _executor_probe()
        health_summary = health.summary()
    finally:
        health.disable()
    if args.json:
        # Machine-readable twin of the text report: the full span trees
        # (nested dicts), the stage-cache ledger, the flat metrics
        # summary and the executor-health summary, so CI and the run
        # ledger consume stats without scraping the table.
        payload = {
            "mode": "calibrated" if args.calibrated else "fast",
            "spans": [root.to_dict() for root in telemetry.trace_roots()],
            "stage_cache": study.stage_cache_stats(),
            "metrics": telemetry.metrics_summary(),
            "health": health_summary,
        }
        _report(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return
    _report("Flow stage timings (fast mode)"
            if not args.calibrated else "Flow stage timings (calibrated)")
    # Depth 3 keeps the per-corner library builds visible while folding
    # the ~200 per-cell spans into their parents (the JSONL export via
    # --trace FILE keeps everything).
    _report(telemetry.render_tree(min_duration_s=1e-4, max_depth=3))
    cache = study.stage_cache_stats()
    _report()
    _report("stage cache accounting: "
            + "  ".join(f"{name}={ev['hits']}h/{ev['misses']}m"
                        for name, ev in cache.items()))
    _report()
    _report(_health_lines(health_summary))


# ---------------------------------------------------------------------- #
def _emit_telemetry(args) -> None:
    """Flush --trace/--metrics output after the commands ran."""
    if args.trace is not None and args.trace != "-":
        if args.trace_format == "chrome":
            from repro.observe import write_chrome_trace

            n = write_chrome_trace(args.trace, telemetry.trace_roots())
            _report(f"wrote {n} trace events to {args.trace} "
                    "(open at ui.perfetto.dev)")
        else:
            n = telemetry.export_jsonl(args.trace)
            _report(f"wrote {n} spans to {args.trace}")
    elif args.trace == "-" and args.command != "stats":
        # stats already printed its tree.
        _report(telemetry.render_tree(min_duration_s=1e-4, max_depth=3))
    if args.metrics:
        _report()
        _report("metrics summary")
        _report(telemetry.metrics_lines(telemetry.metrics_summary()))


# ---------------------------------------------------------------------- #
# repro report / repro compare: read the ledger, re-run nothing.
# ---------------------------------------------------------------------- #
def _output_format(args) -> str:
    return "json" if args.json else "markdown" if args.markdown else "text"


def _run_report(args) -> int:
    from repro.provenance import RunLedger, build_report, render_report

    ledger = RunLedger(args.runs_dir)
    report = build_report(ledger)
    _report(render_report(report, _output_format(args)))
    if args.strict and report["verdict"] == "FAIL":
        _LOG.error("fidelity verdict is FAIL (--strict)")
        return 1
    return 0


def _run_compare(args) -> int:
    from repro.provenance import RunLedger, compare_records, render_compare

    if len(args.targets) != 2:
        _LOG.error("usage: repro compare <runA> <runB> "
                   "(run ids or unambiguous prefixes)")
        return 2
    ledger = RunLedger(args.runs_dir)
    if not ledger.exists():
        _report(f"no runs recorded yet under {ledger.runs_dir} -- "
                "run `repro run <experiment>` first")
        return 1
    try:
        a = ledger.find(args.targets[0])
        b = ledger.find(args.targets[1])
    except KeyError as exc:
        _LOG.error("%s", exc.args[0])
        return 2
    fmt = "json" if args.json else "text"
    _report(render_compare(compare_records(a, b), fmt))
    return 0


# ---------------------------------------------------------------------- #
# repro profile: one experiment under sampler + tracer + health.
# ---------------------------------------------------------------------- #
def _run_profile(args) -> int:
    from repro.errors import ConfigError
    from repro.experiments import registry
    from repro.observe import run_profile

    if len(args.targets) != 1:
        _LOG.error("usage: repro profile <experiment> "
                   "(known: %s)", ", ".join(registry.names()))
        return 2
    name = args.targets[0]
    if name not in registry.names():
        _LOG.error("unknown experiment %r (known: %s)", name,
                   ", ".join(registry.names()))
        return 2
    trace_path = args.trace if args.trace not in (None, "-") else None
    try:
        profile = run_profile(
            name,
            _default_config(args),
            interval_s=args.sample_interval,
            trace_format=args.trace_format or "chrome",
            trace_path=trace_path,
        )
    except ConfigError as exc:
        _LOG.error("%s", exc)
        return 2
    _report(profile.report_text)
    _report()
    _report(profile.attribution)
    _report()
    res = profile.resources
    if res:
        _report(
            f"resources: peak RSS {res['peak_rss_bytes'] / 1e6:.1f} MB, "
            f"CPU utilization {res['cpu_utilization']:.2f}, "
            f"peak threads {res['peak_threads']}, "
            f"peak fds {res['peak_fds']} "
            f"({res['samples']} samples at {res['interval_s'] * 1e3:.0f} ms)"
        )
    _report(_health_lines(profile.health))
    _report(f"{profile.trace_format} trace: {profile.trace_path} "
            f"({profile.trace_events} events"
            + (", open at ui.perfetto.dev)"
               if profile.trace_format == "chrome" else ")"))
    _report()
    _report_verdict(profile.record, _ledger(args))
    return 0


# ---------------------------------------------------------------------- #
# repro assault: the hostile-scenario campaign (repro.assault).
# ---------------------------------------------------------------------- #
def _run_assault(args) -> int:
    from pathlib import Path

    from repro.assault import (
        AssaultConfig,
        record_tier_report,
        render_reports,
        run_assault,
    )
    from repro.assault.corpus import TIERS
    from repro.errors import ConfigError
    from repro.provenance.fidelity import FAIL

    requested = tuple(t.strip() for t in args.tier.split(",") if t.strip())
    if requested == ("all",):
        requested = TIERS
    try:
        config = AssaultConfig(
            tiers=requested,
            seed=args.seed,
            jobs=1 if args.jobs is None else args.jobs,
        )
    except ConfigError as exc:
        _LOG.error("%s", exc)
        return 2
    start_ts = telemetry.iso_ts(time.time())
    reports = run_assault(config)
    _report(render_reports(reports, "json" if args.json else "text"))
    ledger = _ledger(args)
    if ledger is not None:
        for report in reports:
            record = record_tier_report(report, ledger, start_ts=start_ts)
            _report(f"assault {report.tier} run {record.run_id} "
                    f"appended to {ledger.path}")
    if args.report_json:
        Path(args.report_json).write_text(
            render_reports(reports, "json") + "\n", encoding="utf-8")
        _report(f"wrote tier report to {args.report_json}")
    if args.strict and any(r.verdict == FAIL for r in reports):
        _LOG.error("assault verdict is FAIL (--strict)")
        return 1
    return 0


# ---------------------------------------------------------------------- #
# repro serve: the async batched classification service (repro.serve).
# ---------------------------------------------------------------------- #
def _run_serve(args) -> int:
    import asyncio

    from repro.errors import ConfigError
    from repro.serve import ClassifierServer, ModelRegistry, ServeConfig

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            batch_window_ms=args.batch_window_ms,
            max_queue=args.max_queue,
            slo_latency_ms=args.slo_latency_ms,
        )
    except ConfigError as exc:
        _LOG.error("%s", exc)
        return 2
    registry = ModelRegistry.calibrated(jobs=args.jobs)
    server = ClassifierServer(registry, config, ledger=_ledger(args))

    async def run() -> None:
        await server.start()
        _report(f"serving {', '.join(registry.names())} on "
                f"{server.host}:{server.port} "
                f"(batch window {config.batch_window_ms:g} ms, "
                f"queue {config.max_queue}, SLO p(latency > "
                f"{config.slo_latency_ms:g} ms) <= "
                f"{config.slo_error_budget:g})")
        for name, digest in registry.digests().items():
            _report(f"  model {name}: digest {digest}")
        try:
            await server.serve_forever()
        finally:
            record = await server.stop()
            _report(f"serve session {record.run_id}: "
                    f"{record.metrics.get('serve.requests', 0)} "
                    f"request(s), "
                    f"{record.metrics.get('serve.rejected', 0)} rejected, "
                    f"{record.metrics.get('serve.shots', 0)} shot(s)")
            slo = record.fidelity or {}
            checks = "  ".join(
                f"{c['name']} burn {c['burn_rate']:.2f}x {c['status']}"
                for c in slo.get("checks", []))
            _report(f"SLO [{slo.get('verdict', '?')}]: {checks}")
            _export_serve_trace(args, server)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _export_serve_trace(args, server) -> None:
    """Write the session's span trees + tail-sampled request traces.

    ``repro serve --trace trace.json --trace-format chrome`` lands the
    per-request queue -> batch -> predict -> write spans and the
    observer's counter timeline in one Perfetto document.
    """
    if args.trace in (None, "-"):
        return
    roots = list(telemetry.trace_roots()) + server.sampled_traces
    if (args.trace_format or "chrome") == "chrome":
        from repro.observe import write_chrome_trace

        n = write_chrome_trace(args.trace, roots,
                               counters=server.counter_timeline())
        _report(f"wrote {n} trace events ({len(server.sampled_traces)} "
                f"tail-sampled request trace(s)) to {args.trace} "
                "(open at ui.perfetto.dev)")
    else:
        n = telemetry.export_jsonl(args.trace)
        _report(f"wrote {n} spans to {args.trace}")


# ---------------------------------------------------------------------- #
# repro top: poll the in-band stats op, render the live dashboard.
# ---------------------------------------------------------------------- #
def _run_top(args) -> int:
    from repro.errors import ServeError
    from repro.observe import render_top
    from repro.serve import ServeClient

    if len(args.targets) != 1 or ":" not in args.targets[0]:
        _LOG.error("usage: repro top <host:port>")
        return 2
    host, _, port_text = args.targets[0].rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        _LOG.error("invalid port %r in %r", port_text, args.targets[0])
        return 2
    frames = 0
    try:
        with ServeClient(host, port) as client:
            while True:
                snapshot = client.stats()
                if args.json:
                    _report(json.dumps(snapshot, sort_keys=True))
                else:
                    _report(render_top(snapshot,
                                       endpoint=f"{host}:{port}"))
                frames += 1
                if args.count is not None and frames >= args.count:
                    break
                time.sleep(args.interval)
                if not args.json:
                    _report()
    except ServeError as exc:
        _LOG.error("%s", exc)
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.runtime import resolve_jobs

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("command", choices=_commands())
    parser.add_argument(
        "targets", nargs="*", metavar="ARG",
        help="command arguments: the experiment for `run`, two run ids "
             "for `compare`",
    )
    parser.add_argument(
        "--calibrated", action="store_true",
        help="run the full flow including compact-model calibration",
    )
    parser.add_argument("--shots", type=int, default=15,
                        help="shots per qubit for ISS workloads")
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="parallel workers for the flow's fan-outs (default: "
             "REPRO_JOBS or serial; 0 = one per CPU)",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="show debug-level diagnostics")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress reports; warnings only")
    parser.add_argument(
        "--trace", nargs="?", const="-", default=None, metavar="FILE",
        help="enable span tracing; print the timing tree at exit, or "
             "write the trace to FILE (see --trace-format)",
    )
    parser.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default=None,
        help="trace file encoding: Chrome/Perfetto trace_event JSON "
             "(opens at ui.perfetto.dev) or flat JSONL (default: jsonl; "
             "profile defaults to chrome)",
    )
    parser.add_argument(
        "--sample-interval", type=float, default=0.05, metavar="SEC",
        help="profile: resource-sampler period in seconds "
             "(default: 0.05)",
    )
    parser.add_argument("--metrics", action="store_true",
                        help="enable metrics; print the registry summary "
                             "at exit")
    parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run-ledger directory (default: REPRO_RUNS_DIR or "
             ".repro/runs)",
    )
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append RunRecords to the run ledger")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output for stats/report/"
                             "compare")
    parser.add_argument("--markdown", action="store_true",
                        help="markdown output for report")
    parser.add_argument("--strict", action="store_true",
                        help="report/assault: exit non-zero on any FAIL "
                             "verdict")
    parser.add_argument(
        "--tier", default="smoke", metavar="T[,T...]",
        help="assault: comma-separated tiers to run "
             "(smoke, edge, storm, endurance, or 'all')",
    )
    parser.add_argument("--seed", type=int, default=2023,
                        help="assault: campaign seed (scenarios replay "
                             "bit-identically for one seed)")
    parser.add_argument(
        "--report-json", default=None, metavar="FILE",
        help="assault: also write the tier report as JSON to FILE",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8742,
                        help="serve: TCP port (default: 8742; 0 = OS "
                             "pick)")
    parser.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="serve: micro-batch coalescing window (default: 2.0)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="serve: admitted-request cap before 429 back-pressure "
             "(default: 64)",
    )
    parser.add_argument(
        "--slo-latency-ms", type=float, default=110.0, metavar="MS",
        help="serve: declared per-request latency objective (default: "
             "110.0 -- the paper's 110 us decoherence budget at the "
             "serving benchmark's wire scale)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SEC",
        help="top: refresh period between stats scrapes (default: 2.0)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="top: exit after N frames (default: poll until Ctrl-C)",
    )
    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)

    if args.command == "report":
        return _run_report(args)
    if args.command == "compare":
        return _run_compare(args)

    if args.trace is not None or args.metrics or args.command == "stats":
        telemetry.reset()
        telemetry.enable()

    if args.command == "profile":
        # profile owns its own telemetry lifecycle (reset+enable); the
        # global --trace flag only contributes the output path.
        return _run_profile(args)

    if args.command == "assault":
        code = _run_assault(args)
        _emit_telemetry(args)
        return code

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "top":
        return _run_top(args)

    if args.command == "stats":
        _run_stats(args)
        _report()
        _emit_telemetry(args)
        return 0

    command = args.command
    if command == "run":
        if len(args.targets) != 1:
            _LOG.error("usage: repro run <experiment>")
            return 2
        command = args.targets[0]
        if command not in _commands() or command in BUILTIN_COMMANDS:
            _LOG.error("unknown experiment %r (known: %s)", command,
                       ", ".join(n for n in _commands()
                                 if n not in BUILTIN_COMMANDS))
            return 2

    ledger = _ledger(args)
    specs = _expand(command)
    if resolve_jobs(args.jobs) > 1 and len(specs) > 1:
        from repro.provenance import RunRecord

        for text, record_data in _run_parallel(specs, args):
            _report(text)
            _report_verdict(RunRecord.from_dict(record_data), ledger)
            _report()
    else:
        study = None
        for spec in specs:
            if spec.needs_study and study is None:
                study = _build_study(args)
            with telemetry.span("cli.experiment", experiment=spec.name):
                text, record = _execute_recorded(
                    spec, study,
                    study.config if study is not None
                    else _default_config(args))
            _report(text)
            _report_verdict(record, ledger)
            _report()
    _emit_telemetry(args)
    return 0


def _default_config(args):
    from repro.core import StudyConfig

    return StudyConfig(fast=not args.calibrated, shots=args.shots,
                       jobs=args.jobs)


if __name__ == "__main__":
    sys.exit(main())
