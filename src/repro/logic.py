"""Small boolean-expression algebra shared by cells and synthesis.

Expressions are immutable trees over named variables with NOT/AND/OR/XOR.
They serve three purposes:

* functional specification of standard cells (truth-table identity is how
  the technology mapper matches library cells);
* gate-level simulation of mapped netlists in tests;
* construction of pull-down networks (negative-unate expressions map
  directly onto series/parallel NMOS stacks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import reduce

__all__ = ["Expr", "VAR", "NOT", "AND", "OR", "XOR", "CONST", "truth_table"]


@dataclass(frozen=True)
class Expr:
    """One boolean-expression node.

    ``op`` is one of ``var | const | not | and | or | xor``; ``name`` holds
    the variable name or constant value; ``args`` the child expressions.
    """

    op: str
    name: str | bool | None = None
    args: tuple["Expr", ...] = ()

    # -- construction helpers (operator overloads) ----------------------- #
    def __invert__(self) -> "Expr":
        return NOT(self)

    def __and__(self, other: "Expr") -> "Expr":
        return AND(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return OR(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return XOR(self, other)

    # -- evaluation ------------------------------------------------------- #
    def evaluate(self, assignment: dict[str, bool]) -> bool:
        """Evaluate under a variable assignment.

        >>> e = AND(VAR("a"), NOT(VAR("b")))
        >>> e.evaluate({"a": True, "b": False})
        True
        """
        if self.op == "var":
            try:
                return bool(assignment[self.name])  # type: ignore[index]
            except KeyError:
                raise KeyError(f"no value for variable {self.name!r}") from None
        if self.op == "const":
            return bool(self.name)
        vals = [a.evaluate(assignment) for a in self.args]
        if self.op == "not":
            return not vals[0]
        if self.op == "and":
            return all(vals)
        if self.op == "or":
            return any(vals)
        if self.op == "xor":
            return reduce(lambda x, y: x != y, vals)
        raise ValueError(f"unknown op {self.op!r}")

    def variables(self) -> tuple[str, ...]:
        """Free variables, sorted, each once."""
        seen: set[str] = set()

        def walk(e: Expr) -> None:
            if e.op == "var":
                seen.add(e.name)  # type: ignore[arg-type]
            for a in e.args:
                walk(a)

        walk(self)
        return tuple(sorted(seen))

    def __str__(self) -> str:
        if self.op == "var":
            return str(self.name)
        if self.op == "const":
            return "1" if self.name else "0"
        if self.op == "not":
            return f"!{self.args[0]}"
        joiner = {"and": " & ", "or": " | ", "xor": " ^ "}[self.op]
        return "(" + joiner.join(str(a) for a in self.args) + ")"


def VAR(name: str) -> Expr:
    """A named input variable."""
    return Expr("var", name)


def CONST(value: bool) -> Expr:
    """A constant 0/1."""
    return Expr("const", bool(value))


def NOT(e: Expr) -> Expr:
    """Logical complement."""
    return Expr("not", args=(e,))


def AND(*es: Expr) -> Expr:
    """n-ary conjunction (needs >= 2 operands)."""
    if len(es) < 2:
        raise ValueError("AND needs at least two operands")
    return Expr("and", args=tuple(es))


def OR(*es: Expr) -> Expr:
    """n-ary disjunction (needs >= 2 operands)."""
    if len(es) < 2:
        raise ValueError("OR needs at least two operands")
    return Expr("or", args=tuple(es))


def XOR(*es: Expr) -> Expr:
    """n-ary exclusive-or (needs >= 2 operands)."""
    if len(es) < 2:
        raise ValueError("XOR needs at least two operands")
    return Expr("xor", args=tuple(es))


def truth_table(expr: Expr, variables: tuple[str, ...] | None = None) -> int:
    """Pack the truth table into an int (bit i = output for minterm i).

    Variable order: ``variables`` if given (must cover the free variables),
    else the sorted free variables.  Bit i's assignment sets variable k to
    bit k of i (LSB = first variable).

    >>> bin(truth_table(AND(VAR("a"), VAR("b"))))
    '0b1000'
    """
    if variables is None:
        variables = expr.variables()
    else:
        missing = set(expr.variables()) - set(variables)
        if missing:
            raise ValueError(f"variables {missing} not covered")
    table = 0
    for i, bits in enumerate(itertools.product([False, True],
                                               repeat=len(variables))):
        # itertools.product varies the LAST element fastest; we want the
        # FIRST variable to be the LSB, so reverse.
        assignment = dict(zip(variables, bits[::-1]))
        if expr.evaluate(assignment):
            table |= 1 << i
    return table
