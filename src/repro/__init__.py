"""repro: cryogenic embedded-system design flow, from 5-nm FinFET to SoC.

Reproduction of "Cryogenic Embedded System to Support Quantum Computing:
From 5-nm FinFET to Full Processor" (IEEE TQE, 2023).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Layers (bottom-up):

* :mod:`repro.device`   -- FinFET compact model, synthetic measurements,
  staged calibration (paper Section III).
* :mod:`repro.spice`    -- small MNA circuit simulator (DC + transient).
* :mod:`repro.cells`    -- standard-cell catalog, NLDM characterization at
  300 K / 10 K, Liberty I/O (Section IV).
* :mod:`repro.synth`    -- gate-level netlists, structural RTL, synthesis,
  the Rocket-class SoC datapath (Section V-A).
* :mod:`repro.sta`      -- static timing analysis (Table 1).
* :mod:`repro.power`    -- dynamic/leakage power, SRAM macros (Fig. 6).
* :mod:`repro.soc`      -- RV64 ISS with pipeline + cache timing (Table 2).
* :mod:`repro.quantum`  -- I/Q readout generation, decoherence (Fig. 2).
* :mod:`repro.classify` -- kNN and HDC classifiers (Section V-B).
* :mod:`repro.core`     -- the end-to-end plausibility study (Fig. 7).
"""

import logging as _logging

__version__ = "1.0.0"

# Library etiquette: the package logs but never configures handlers --
# the CLI (or the embedding application) decides where records go.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())
