"""Process-local metrics: counters, gauges and histograms.

The registry is a plain dict of named instruments.  Instrumented code
normally goes through the façade helpers (:func:`repro.telemetry.count`
and friends) which are no-ops while telemetry is disabled; the registry
itself is always functional, so infrastructure that *owns* its
bookkeeping (e.g. the benchmark harness) can write to it directly
regardless of the global flag.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: One lock for every mutation: instruments are only touched while
#: telemetry is enabled (the facade checks first), and the parallel
#: runtime's worker threads must not lose increments to read-modify-
#: write races.  Uncontended acquisition is ~100 ns -- noise next to
#: the work being counted.
_LOCK = threading.Lock()


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        with _LOCK:
            self.value += n


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        # Same lock discipline as Counter.inc/Histogram.observe: the
        # float conversion can run arbitrary __float__ code, and the
        # parallel runtime's merge path writes gauges from several
        # threads -- last-write-wins must mean a *whole* write.
        value = float(value)
        with _LOCK:
            self.value = value


class Histogram:
    """A stream of observations with summary statistics.

    Keeps every observation (runs here are bounded: per-cell build
    times, per-bench wall times), so percentiles are exact.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        with _LOCK:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, q: float) -> float:
        """Exact percentile by nearest-rank; 0.0 on an empty histogram."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        k = min(len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[k]

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "total": self.total,
            "mean": self.total / len(self.values),
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # ------------------------------------------------------------------ #
    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    def summary(self) -> dict[str, object]:
        """One flat dict over every instrument, sorted by name.

        Counters and gauges map to their value; histograms map to their
        summary dict.
        """
        out: dict[str, object] = {}
        for name in sorted(self.counters):
            out[name] = self.counters[name].value
        for name in sorted(self.gauges):
            out[name] = self.gauges[name].value
        for name in sorted(self.histograms):
            out[name] = self.histograms[name].summary()
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    # ------------------------------------------------------------------ #
    # Cross-process transport: plain-data snapshot + merge.
    # ------------------------------------------------------------------ #
    def snapshot_data(self) -> dict:
        """Every instrument's raw state as picklable plain data."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {
                n: list(h.values) for n, h in self.histograms.items()
            },
        }

    def merge_data(self, data: dict) -> None:
        """Fold a worker's :meth:`snapshot_data` into this registry.

        Counters add (they are deltas from the worker's clean slate),
        histogram observations extend, gauges last-write-win -- the same
        semantics the instruments would have had in-process.  Every
        mutation goes through the instruments' own locked methods, so
        concurrent merges from several pool-drain threads interleave
        whole writes.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in data.get("histograms", {}).items():
            hist = self.histogram(name)
            for v in values:
                hist.observe(v)
