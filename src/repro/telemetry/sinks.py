"""Trace and metrics sinks: tree rendering and JSONL export/import.

Three consumers of a finished run:

* :func:`format_tree` -- the human-readable nested stage-timing view
  (what ``repro stats`` and ``--trace`` without a file print);
* :func:`write_jsonl` / :func:`read_jsonl` -- a lossless flat-file
  encoding (one span per line with a parent pointer) that round-trips
  back into the same tree, for offline analysis across runs;
* :func:`metrics_lines` -- the registry summary as aligned text.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.telemetry.spans import Span, iso_ts

__all__ = ["format_tree", "metrics_lines", "read_jsonl", "write_jsonl"]


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def _fmt_attr(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_tree(
    roots: Iterable[Span],
    min_duration_s: float = 0.0,
    max_depth: int | None = None,
) -> str:
    """Render trace trees as an indented timing table.

    ``min_duration_s`` prunes sub-spans shorter than the floor and
    ``max_depth`` prunes deep nesting (e.g. the per-cell spans of a
    library build); pruned time still shows up inside the parent.
    """
    lines: list[str] = []
    for root in roots:
        for depth, span in root.walk():
            if depth and span.duration_s < min_duration_s:
                continue
            if max_depth is not None and depth > max_depth:
                continue
            attrs = "  ".join(
                f"{k}={_fmt_attr(v)}" for k, v in span.attrs.items()
            )
            pad = "  " * depth
            head = f"{pad}{span.name}"
            lines.append(
                f"{head:<44} {_fmt_duration(span.duration_s):>10}"
                + (f"   {attrs}" if attrs else "")
            )
    return "\n".join(lines)


def metrics_lines(summary: dict[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.summary` dict as aligned text."""
    width = max((len(k) for k in summary), default=0)
    lines = []
    for name, value in summary.items():
        if isinstance(value, dict):
            body = "  ".join(f"{k}={_fmt_attr(v)}" for k, v in value.items())
        else:
            body = _fmt_attr(value)
        lines.append(f"{name:<{width}}  {body}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# JSONL export / import
# ---------------------------------------------------------------------- #
def _flatten(roots: Iterable[Span]):
    """Yield (id, parent_id, span) with ids assigned in pre-order."""
    next_id = 0
    for root in roots:
        stack: list[tuple[Span, int | None]] = [(root, None)]
        while stack:
            span, parent = stack.pop()
            sid = next_id
            next_id += 1
            yield sid, parent, span
            for child in reversed(span.children):
                stack.append((child, sid))


def write_jsonl(roots: Iterable[Span], file: str | IO[str]) -> int:
    """Write one JSON object per span; returns the span count.

    ``file`` is a path or an open text handle.  Each record carries
    ``id``/``parent`` so :func:`read_jsonl` can rebuild the tree.
    """
    own = isinstance(file, str)
    fh: IO[str] = open(file, "w") if own else file  # noqa: SIM115
    count = 0
    try:
        for sid, parent, span in _flatten(roots):
            record = {
                "id": sid,
                "parent": parent,
                "name": span.name,
                "start_wall": span.start_wall,
                # ISO-8601 UTC twin of start_wall: lets offline tooling
                # correlate spans with run-ledger records across runs
                # without epoch arithmetic.
                "start_ts": iso_ts(span.start_wall),
                "duration_s": span.duration_s,
                "attrs": span.attrs,
            }
            fh.write(json.dumps(record, default=str) + "\n")
            count += 1
    finally:
        if own:
            fh.close()
    return count


def read_jsonl(file: str | IO[str]) -> list[Span]:
    """Rebuild the trace trees written by :func:`write_jsonl`."""
    own = isinstance(file, str)
    fh: IO[str] = open(file) if own else file  # noqa: SIM115
    try:
        by_id: dict[int, Span] = {}
        roots: list[Span] = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            span = Span(record["name"], record.get("attrs"), tracer=None)
            span.start_wall = record.get("start_wall", 0.0)
            span.duration_s = record.get("duration_s", 0.0)
            by_id[record["id"]] = span
            parent = record.get("parent")
            if parent is None:
                roots.append(span)
            else:
                by_id[parent].children.append(span)
        return roots
    finally:
        if own:
            fh.close()
