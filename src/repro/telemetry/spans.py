"""Span primitives: nested timed regions collected into a trace tree.

A :class:`Span` is a context manager recording wall-clock start time,
monotonic duration and arbitrary attributes.  Spans nest: the
:class:`Tracer` keeps a stack of open spans, so a span opened while
another is active becomes its child and finished root spans accumulate
in :attr:`Tracer.roots` -- the per-run trace tree the sinks render.

When telemetry is disabled the façade hands out the :data:`NOOP_SPAN`
singleton instead, whose every method is a no-op, so instrumented code
pays one branch and zero allocations (see
:mod:`repro.telemetry.__init__`).

The tracer is process-local and deliberately not thread-safe: the flow
is single-threaded, and keeping the hot path free of locks is part of
the near-zero-overhead contract.
"""

from __future__ import annotations

import time

__all__ = ["NOOP_SPAN", "Span", "Tracer"]


class Span:
    """One timed region of the trace tree."""

    __slots__ = ("name", "attrs", "start_wall", "duration_s", "children",
                 "_t0", "_tracer")

    def __init__(self, name: str, attrs: dict | None, tracer: "Tracer | None"):
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.start_wall: float = 0.0
        self.duration_s: float = 0.0
        self.children: list[Span] = []
        self._t0: float = 0.0
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # ------------------------------------------------------------------ #
    def walk(self):
        """Yield (depth, span) over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class _NoopSpan:
    """The disabled-path stand-in: every operation is a no-op.

    A single module-level instance is shared by every ``span()`` call
    made while telemetry is off, so the disabled path never allocates.
    """

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans into per-run trace trees."""

    __slots__ = ("roots", "_stack")

    def __init__(self):
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Create an *unopened* span bound to this tracer.

        The caller enters it with ``with``; parenting happens at entry
        time so construction order does not matter.
        """
        return Span(name, attrs, self)

    # ------------------------------------------------------------------ #
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (e.g. a generator finalized late):
        # unwind to the span being closed rather than corrupting the tree.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.roots = []
        self._stack = []

    def all_spans(self):
        """Yield every finished span, pre-order across all roots."""
        for root in self.roots:
            for _, span in root.walk():
                yield span
