"""Span primitives: nested timed regions collected into a trace tree.

A :class:`Span` is a context manager recording wall-clock start time,
monotonic duration and arbitrary attributes.  Spans nest: the
:class:`Tracer` keeps a stack of open spans, so a span opened while
another is active becomes its child and finished root spans accumulate
in :attr:`Tracer.roots` -- the per-run trace tree the sinks render.

When telemetry is disabled the façade hands out the :data:`NOOP_SPAN`
singleton instead, whose every method is a no-op, so instrumented code
pays one branch and zero allocations (see
:mod:`repro.telemetry.__init__`).

The tracer is process-local and *thread-aware*: each thread nests spans
on its own stack (``threading.local``), so worker threads of a parallel
fan-out record clean subtrees instead of corrupting each other's
nesting.  A span opened in a thread with no enclosing span lands in the
shared :attr:`Tracer.roots` list; the runtime's thread executor then
re-parents those roots under the span that launched the fan-out
(:meth:`Tracer.mark` / :meth:`Tracer.reparent`).  Spans also round-trip
through plain dicts (:meth:`Span.to_dict` / :meth:`Span.from_dict`) so
worker *processes* can ship their trees back to the parent.
"""

from __future__ import annotations

import threading
import time
from datetime import datetime, timezone

__all__ = ["NOOP_SPAN", "Span", "Tracer", "iso_ts"]


def iso_ts(wall: float) -> str:
    """``start_wall`` (epoch seconds) as an ISO-8601 UTC timestamp.

    The trace JSONL and the provenance run ledger both stamp records
    with this, so spans and runs correlate across files and machines
    without epoch-vs-local guessing.
    """
    stamp = datetime.fromtimestamp(wall, timezone.utc)
    return stamp.isoformat(timespec="microseconds").replace("+00:00", "Z")


class Span:
    """One timed region of the trace tree."""

    __slots__ = ("name", "attrs", "start_wall", "duration_s", "children",
                 "_t0", "_tracer")

    def __init__(self, name: str, attrs: dict | None, tracer: "Tracer | None"):
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.start_wall: float = 0.0
        self.duration_s: float = 0.0
        self.children: list[Span] = []
        self._t0: float = 0.0
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_wall = time.time()
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A picklable/JSON-able encoding of the subtree (recursive)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_wall": self.start_wall,
            "start_ts": iso_ts(self.start_wall),
            "duration_s": self.duration_s,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a detached span tree written by :meth:`to_dict`."""
        span = cls(data["name"], data.get("attrs"), tracer=None)
        span.start_wall = data.get("start_wall", 0.0)
        span.duration_s = data.get("duration_s", 0.0)
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    # ------------------------------------------------------------------ #
    def walk(self):
        """Yield (depth, span) over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class _NoopSpan:
    """The disabled-path stand-in: every operation is a no-op.

    A single module-level instance is shared by every ``span()`` call
    made while telemetry is off, so the disabled path never allocates.
    """

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans into per-run trace trees."""

    __slots__ = ("roots", "_local", "_lock")

    def __init__(self):
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        """This thread's open-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Create an *unopened* span bound to this tracer.

        The caller enters it with ``with``; parenting happens at entry
        time so construction order does not matter.
        """
        return Span(name, attrs, self)

    # ------------------------------------------------------------------ #
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (e.g. a generator finalized late):
        # unwind to the span being closed rather than corrupting the tree.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------------ #
    @property
    def active(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    def adopt(self, spans: list[Span], parent: Span | None = None) -> None:
        """Attach detached trees under ``parent`` (or the caller's
        active span, or as new roots) -- how worker-process snapshots
        rejoin the parent's trace."""
        parent = parent if parent is not None else self.active
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self.roots.extend(spans)

    def mark(self) -> int:
        """A bookmark into :attr:`roots` for a later :meth:`reparent`."""
        with self._lock:
            return len(self.roots)

    def reparent(self, mark: int, parent: Span | None) -> None:
        """Move roots recorded since ``mark`` under ``parent``.

        Worker threads of a parallel fan-out have no enclosing span on
        *their* stacks, so their spans arrive as roots; the executor
        brackets the fan-out with ``mark()``/``reparent()`` to restore
        the logical nesting.  Ordered by start time for determinism.
        """
        if parent is None:
            return
        with self._lock:
            moved = self.roots[mark:]
            del self.roots[mark:]
        parent.children.extend(sorted(moved, key=lambda s: s.start_wall))

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()

    def all_spans(self):
        """Yield every finished span, pre-order across all roots."""
        for root in self.roots:
            for _, span in root.walk():
                yield span
