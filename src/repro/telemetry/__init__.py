"""repro.telemetry: dependency-free tracing + metrics for the whole flow.

Design goals, in priority order:

1. **Near-zero overhead when off.**  Telemetry is disabled by default;
   every façade helper starts with one test of the module-level
   ``_enabled`` flag and returns immediately (for spans, with the shared
   :data:`~repro.telemetry.spans.NOOP_SPAN` singleton -- no allocation).
   Instrumented code therefore costs one branch per touchpoint, which
   ``benchmarks/test_bench_telemetry.py`` bounds at < 2 % of the
   ``transient()`` hot path.
2. **Spans**: nested timed regions with arbitrary attributes, collected
   into a per-run trace tree (:class:`~repro.telemetry.spans.Tracer`).
3. **Metrics**: named counters/gauges/histograms in a process-local
   :class:`~repro.telemetry.metrics.MetricsRegistry`.

Typical use::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("cells.build_library", corner="10K") as sp:
        ...
        sp.set(cells=203)
    telemetry.count("solver.newton_iterations", 42)

    print(telemetry.render_tree())        # nested stage timings
    telemetry.export_jsonl("trace.jsonl") # offline analysis
    telemetry.metrics_summary()           # flat {name: value} dict

State is process-global; span nesting is per-thread and worker
processes ship their state back as snapshots (:func:`snapshot` /
:func:`merge_snapshot`), so the parallel runtime's fan-outs stay fully
traced.  :func:`reset` wipes both the trace and the registry, which
tests and the CLI do between runs.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import (
    format_tree,
    metrics_lines,
    read_jsonl,
    write_jsonl,
)
from repro.telemetry.spans import NOOP_SPAN, Span, Tracer, iso_ts

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "export_jsonl",
    "format_tree",
    "gauge",
    "iso_ts",
    "merge_snapshot",
    "metrics_lines",
    "metrics_summary",
    "observe",
    "read_jsonl",
    "registry",
    "render_tree",
    "reset",
    "snapshot",
    "span",
    "trace_roots",
    "tracer",
    "write_jsonl",
]

_enabled = False

tracer = Tracer()
registry = MetricsRegistry()


# ---------------------------------------------------------------------- #
# Lifecycle
# ---------------------------------------------------------------------- #
def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _enabled


def enable() -> None:
    """Turn recording on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn recording off; collected data is kept until :func:`reset`."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop every collected span and metric (the enabled flag is kept)."""
    tracer.reset()
    registry.reset()


# ---------------------------------------------------------------------- #
# Instrumentation façade -- each helper is one branch when disabled.
# ---------------------------------------------------------------------- #
def span(name: str, **attrs):
    """Open a traced region: ``with telemetry.span("stage", k=v) as sp:``.

    Returns the shared no-op singleton while disabled, so the call
    neither allocates nor touches the tracer.
    """
    if not _enabled:
        return NOOP_SPAN
    return tracer.start(name, attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if _enabled:
        registry.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if _enabled:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op while disabled)."""
    if _enabled:
        registry.histogram(name).observe(value)


def current_span() -> Span | None:
    """The calling thread's innermost open span (None while disabled).

    The parallel runtime uses this to anchor worker telemetry: spans
    recorded by workers are merged under whatever span was active when
    the fan-out started.
    """
    if not _enabled:
        return None
    return tracer.active


# ---------------------------------------------------------------------- #
# Cross-process transport: a worker snapshots its whole telemetry state
# and ships it back; the parent merges it into the live trace/registry.
# ---------------------------------------------------------------------- #
def snapshot() -> dict:
    """Everything collected so far as picklable plain data."""
    return {
        "spans": [root.to_dict() for root in tracer.roots],
        "metrics": registry.snapshot_data(),
    }


def merge_snapshot(snap: dict, parent: Span | None = None) -> None:
    """Fold a worker's :func:`snapshot` into this process's telemetry.

    Span trees attach under ``parent`` (default: the calling thread's
    active span, falling back to new roots); metrics merge with their
    natural semantics (counters add, histograms extend, gauges
    last-write-win).
    """
    spans = [Span.from_dict(d) for d in snap.get("spans", [])]
    if spans:
        tracer.adopt(spans, parent)
    registry.merge_data(snap.get("metrics", {}))


# ---------------------------------------------------------------------- #
# Readout
# ---------------------------------------------------------------------- #
def trace_roots() -> list[Span]:
    """Finished root spans of the current run."""
    return tracer.roots


def render_tree(min_duration_s: float = 0.0,
                max_depth: int | None = None) -> str:
    """The collected trace as an indented timing table."""
    return format_tree(tracer.roots, min_duration_s=min_duration_s,
                       max_depth=max_depth)


def export_jsonl(file) -> int:
    """Write the collected trace as JSONL; returns the span count."""
    return write_jsonl(tracer.roots, file)


def metrics_summary() -> dict[str, object]:
    """Flat ``{instrument name: value}`` view of the registry."""
    return registry.summary()
