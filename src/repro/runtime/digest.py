"""Stable content digests for config dataclasses (and friends).

The runtime's on-disk cache is *content-addressed*: a cached result is
valid exactly as long as every input that produced it hashes to the
same key.  That requires a digest that is

* **stable across processes and sessions** -- no ``id()``, no
  ``hash()`` (randomized for strings), no dict iteration-order
  surprises;
* **structural** -- two configs with equal field values digest equally,
  regardless of how they were constructed;
* **total over the flow's value vocabulary** -- dataclasses, numpy
  arrays/scalars, tuples, dicts, and the JSON primitives.

The canonical encoding is JSON with sorted keys over a recursively
normalized value tree; dataclasses are tagged with their qualified
class name so e.g. two distinct config types with identical fields do
not collide.  :func:`stable_digest` is the single entry point; the
``config_digest()`` methods on :class:`~repro.core.flow.StudyConfig`,
:class:`~repro.cells.characterize.CharacterizationConfig` and
:class:`~repro.synth.soc_builder.SoCConfig` delegate here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

__all__ = [
    "config_from_dict",
    "config_to_dict",
    "stable_digest",
]

#: Length of the hex digests handed out (a sha256 prefix).  64 bits of
#: collision resistance is plenty for a cache namespace this small while
#: keeping filenames and log lines readable.
DIGEST_CHARS = 16


def _normalize(value):
    """Recursively convert ``value`` into JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # compare=False fields are bookkeeping (memo caches, tracker
        # backrefs) excluded from the dataclass's own equality; a content
        # digest follows the same identity semantics.
        fields = {
            f.name: _normalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.compare
        }
        return {"__dataclass__": type(value).__qualname__, **fields}
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in sorted(value.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        # repr() round-trips doubles exactly; json.dumps uses it too, but
        # normalizing here keeps -0.0 / 0.0 and nan handling explicit.
        return {"__float__": repr(value)}
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    # numpy arrays and scalars, without importing numpy here: anything
    # exposing tolist()/item() canonicalizes through python scalars.
    if hasattr(value, "tolist"):
        return {"__array__": _normalize(value.tolist()),
                "__dtype__": str(getattr(value, "dtype", ""))}
    if hasattr(value, "item"):
        return _normalize(value.item())
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for digesting; "
        "extend repro.runtime.digest._normalize if this type belongs "
        "in a cache key"
    )


def stable_digest(value) -> str:
    """A deterministic hex digest of a value tree (sha256 prefix).

    Equal content gives equal digests across processes, sessions and
    machines; any field change gives (with overwhelming probability) a
    different digest.
    """
    canonical = json.dumps(_normalize(value), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:DIGEST_CHARS]


# ---------------------------------------------------------------------- #
# Config round-trip helpers (the to_dict/from_dict methods delegate here)
# ---------------------------------------------------------------------- #
def config_to_dict(config) -> dict:
    """A plain-dict view of a config dataclass, recursing into nested
    config dataclasses; tuples stay tuples (the constructor re-coerces).
    """
    if not dataclasses.is_dataclass(config):
        raise TypeError(f"{type(config).__name__} is not a dataclass")
    out = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = config_to_dict(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def config_from_dict(cls, data: dict, *, nested: dict | None = None):
    """Rebuild ``cls(**data)``, re-coercing the shapes ``to_dict`` and a
    JSON round trip flatten.

    ``nested`` maps field names to config classes whose dict form should
    be rebuilt recursively (e.g. ``{"soc": SoCConfig}``); list values
    are re-coerced to tuples when the field's default is a tuple.
    """
    nested = nested or {}
    kwargs = dict(data)
    defaults = {
        f.name: f.default for f in dataclasses.fields(cls)
        if f.default is not dataclasses.MISSING
    }
    for name, value in kwargs.items():
        if name in nested and isinstance(value, dict):
            kwargs[name] = nested[name].from_dict(value)
        elif isinstance(value, list) and isinstance(defaults.get(name), tuple):
            kwargs[name] = tuple(value)
    return cls(**kwargs)
