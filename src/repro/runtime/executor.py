"""Executor abstraction: one ``map()`` over serial/thread/process backends.

The flow's hot paths are embarrassingly parallel fan-outs -- one SPICE
characterization per cell per corner, one ISS run per SEU injection, one
self-contained experiment per artifact.  This module gives them a single
API::

    from repro.runtime import get_executor

    ex = get_executor(jobs=4)              # or REPRO_JOBS=4 in the env
    results = ex.map(fn, items)            # ordered like ``items``

Design points:

* **Backend selection.**  ``get_executor(jobs=, backend=)`` resolves the
  worker count from the ``jobs`` argument, then the ``REPRO_JOBS``
  environment variable, then 1; the backend from the ``backend``
  argument, then ``REPRO_EXECUTOR``, then ``"process"`` whenever more
  than one job is requested.  ``jobs <= 1`` always yields the serial
  executor -- zero overhead, identical semantics.
* **Determinism.**  ``map()`` returns results in item order regardless
  of completion order, so a parallel fan-out aggregates bit-identically
  to the serial loop.
* **Graceful degradation.**  If the process backend cannot start (no
  ``fork``/semaphores in the sandbox) or the function/items fail to
  pickle, the call silently downgrades -- process -> thread -> serial --
  and logs once at debug level.  Callers never see the difference.
* **Per-item timeout + retry.**  ``map(..., timeout_s=, retries=)``
  re-submits a failed or timed-out item up to ``retries`` times before
  re-raising (serial included, so failure semantics do not depend on
  the backend).
* **Chunking.**  Items are batched (``chunksize`` or an automatic
  ``len(items)/(4*jobs)`` heuristic) so per-task IPC overhead is paid
  per chunk, not per item.
* **Telemetry across the boundary.**  Worker processes record their own
  spans and metrics and ship them back as snapshots; the parent merges
  them under the span that was active when ``map()`` was called, so
  ``--trace`` on a parallel run still shows per-item spans.  Worker
  threads share the (thread-aware) tracer; their root spans are
  re-parented the same way.
* **Health heartbeats.**  While :mod:`repro.observe.health` monitoring
  is enabled (``repro profile`` / ``repro stats`` turn it on), every
  task execution emits start/end heartbeats -- thread workers straight
  into the shared monitor, process workers through a managed queue the
  parent drains live -- so stalled workers and stragglers are flagged
  *during* the fan-out, not after.  Disabled (the default), the cost
  is one branch per ``map()``.
"""

from __future__ import annotations

import logging
import os
import pickle
from typing import Callable, Iterable, Sequence

from repro import telemetry

__all__ = [
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "get_executor",
    "resolve_jobs",
]

_LOG = logging.getLogger(__name__)

BACKENDS = ("serial", "thread", "process")


class ExecutorError(RuntimeError):
    """An item failed on every attempt (its last exception is chained)."""


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit ``jobs`` > ``REPRO_JOBS`` env > 1.

    ``jobs=0`` (or ``REPRO_JOBS=0``) means "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            _LOG.warning("ignoring non-integer REPRO_JOBS=%r", env)
            return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


# ---------------------------------------------------------------------- #
# Worker-side chunk runner (module-level: must pickle for processes).
# ---------------------------------------------------------------------- #
def _run_chunk(fn: Callable, chunk: list, capture_telemetry: bool):
    """Run ``fn`` over one chunk; used verbatim by every backend.

    In a worker *process* this also isolates and captures telemetry:
    the child starts from a clean slate (a forked child inherits the
    parent's trace mid-flight) and returns its spans/metrics snapshot
    for the parent to merge.
    """
    if capture_telemetry:
        telemetry.reset()
        telemetry.enable()
        results = [fn(item) for item in chunk]
        return results, telemetry.snapshot()
    results = [fn(item) for item in chunk]
    return results, None


class Executor:
    """Base class: order-preserving ``map`` with timeout/retry."""

    backend = "serial"

    def __init__(self, jobs: int = 1):
        self.jobs = max(1, jobs)

    # -------------------------------------------------------------- #
    def map(
        self,
        fn: Callable,
        items: Iterable,
        *,
        timeout_s: float | None = None,
        retries: int = 0,
        chunksize: int | None = None,
    ) -> list:
        """Apply ``fn`` to every item; results ordered like ``items``.

        A failing (or, on pooled backends, timed-out) item is retried
        ``retries`` times; when every attempt fails an
        :class:`ExecutorError` chaining the last exception is raised.
        """
        items = list(items)
        if not items:
            return []
        return self._map(fn, items, timeout_s=timeout_s, retries=retries,
                         chunksize=chunksize)

    # -------------------------------------------------------------- #
    def _map(self, fn, items, *, timeout_s, retries, chunksize):
        out = []
        for i, item in enumerate(items):
            out.append(self._attempt_serial(fn, item, i, retries))
        return out

    @staticmethod
    def _attempt_serial(fn, item, index, retries):
        for attempt in range(retries + 1):
            try:
                return fn(item)
            except Exception as exc:  # noqa: BLE001 - retry anything
                if attempt >= retries:
                    raise ExecutorError(
                        f"item {index} failed after {attempt + 1} "
                        f"attempt(s): {type(exc).__name__}: {exc}"
                    ) from exc
                telemetry.count("runtime.retries")

    # -------------------------------------------------------------- #
    @staticmethod
    def _chunks(items: Sequence, jobs: int,
                chunksize: int | None) -> list[tuple[int, list]]:
        """Split into (start offset, chunk) pairs."""
        if chunksize is None:
            # ~4 chunks per worker balances stragglers against IPC cost.
            chunksize = max(1, len(items) // (4 * jobs) or 1)
        return [(i, list(items[i:i + chunksize]))
                for i in range(0, len(items), chunksize)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The in-process reference backend (and universal fallback)."""


class _PooledExecutor(Executor):
    """Shared machinery for the thread and process backends."""

    def _pool(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _check_picklable(self, fn, items) -> None:
        """Processes only: surface pickle failures *before* the pool."""

    def _heartbeat_channel(self):
        """(wrapped fn factory, channel) for this fan-out, if any.

        Returns ``(None, None)`` while health monitoring is off -- the
        one branch the disabled path pays.  Thread workers beat into
        the in-process monitor directly; process workers need a
        managed-queue channel whose drainer the caller must close.
        """
        from repro.observe import health

        if not health.enabled():
            return None, None
        if self.backend != "process":
            return health.HeartbeatFn, None
        try:
            channel = health.ProcessChannel(health.monitor())
        except Exception as exc:  # noqa: BLE001 - no semaphores etc.
            _LOG.debug("heartbeat channel unavailable (%s: %s); "
                       "mapping without beats", type(exc).__name__, exc)
            return None, None
        return (lambda fn: health.HeartbeatFn(fn, channel.queue)), channel

    def _map(self, fn, items, *, timeout_s, retries, chunksize):
        try:
            self._check_picklable(fn, items)
            pool = self._pool()
        except Exception as exc:  # noqa: BLE001 - any startup failure
            _LOG.debug("%s backend unavailable (%s: %s); "
                       "falling back to serial", self.backend,
                       type(exc).__name__, exc)
            telemetry.count(f"runtime.fallback.{self.backend}_to_serial")
            return SerialExecutor().map(
                fn, items, timeout_s=timeout_s, retries=retries)

        wrap, channel = self._heartbeat_channel()
        task_fn = wrap(fn) if wrap is not None else fn
        capture = self.backend == "process" and telemetry.enabled()
        parent_span = telemetry.current_span()
        mark = telemetry.tracer.mark()
        chunks = self._chunks(items, self.jobs, chunksize)
        results: list = [None] * len(items)
        try:
            with pool as ex:
                futures = {
                    ex.submit(_run_chunk, task_fn, chunk, capture):
                        (start, chunk)
                    for start, chunk in chunks
                }
                for future, (start, chunk) in futures.items():
                    budget = (None if timeout_s is None
                              else timeout_s * len(chunk))
                    chunk_results = self._await_chunk(
                        task_fn, future, chunk, start, budget, retries,
                        capture)
                    results[start:start + len(chunk)] = chunk_results
        finally:
            if channel is not None:
                channel.close()
            if self.backend == "thread":
                # Worker-thread spans landed as new tracer roots; hang
                # them under the span that was active at the call site.
                telemetry.tracer.reparent(mark, parent_span)
        return results

    def _await_chunk(self, fn, future, chunk, start, budget, retries,
                     capture):
        """Collect one chunk, degrading to in-process retry on failure."""
        try:
            chunk_results, snapshot = future.result(timeout=budget)
        except Exception as exc:  # noqa: BLE001 - includes TimeoutError
            future.cancel()
            _LOG.debug("chunk at %d failed on %s backend (%s: %s); "
                       "retrying items serially", start, self.backend,
                       type(exc).__name__, exc)
            telemetry.count("runtime.chunk_failures")
            return [
                self._attempt_serial(fn, item, start + k, retries)
                for k, item in enumerate(chunk)
            ]
        if snapshot is not None:
            telemetry.merge_snapshot(snapshot)
        return chunk_results


class ThreadExecutor(_PooledExecutor):
    backend = "thread"

    def _pool(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.jobs)


class ProcessExecutor(_PooledExecutor):
    backend = "process"

    def _pool(self):
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=self.jobs)

    def _check_picklable(self, fn, items) -> None:
        # One representative item: campaign/cell items are homogeneous,
        # and a full scan would double-serialize every payload.
        pickle.dumps(fn)
        if items:
            pickle.dumps(items[0])


_BACKENDS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(jobs: int | None = None,
                 backend: str | None = None) -> Executor:
    """The executor for a fan-out: see module docstring for resolution."""
    n = resolve_jobs(jobs)
    if backend is None:
        backend = os.environ.get("REPRO_EXECUTOR", "").strip() or None
    if backend is not None and backend not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; pick from {BACKENDS}")
    if n <= 1:
        return SerialExecutor(1)
    return _BACKENDS[backend or "process"](n)
