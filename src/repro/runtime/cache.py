"""Content-addressed on-disk result cache.

Repeat runs of the flow redo identical work: every ``repro all``
rebuilds the same two libraries from the same configs, every seeded
campaign re-runs the same injections.  This cache closes that loop --
results are stored under a key that *is* a digest of everything that
produced them (:func:`repro.runtime.digest.stable_digest` over the
config dataclasses and companion inputs), so

* a hit is trustworthy by construction: any input change changes the
  key and misses;
* no invalidation protocol is needed: stale entries are simply never
  addressed again (``prune()`` reclaims the disk).

Layout: ``<root>/<namespace>/<key><suffix>``, one pickle per entry,
written atomically (tmp file + ``os.replace``) so a crashed or
concurrent writer can never leave a torn entry.  The root defaults to
``~/.cache/repro`` and is overridden by ``REPRO_CACHE_DIR``; caching is
*opt-in* -- stages consult :func:`default_enabled`, which is true only
when ``REPRO_CACHE_DIR`` is set (tests monkeypatch engines, so silently
serving yesterday's results by default would be a correctness hazard).

Integrity: every entry ends with a fixed-size footer (magic, payload
length, CRC32 over the payload).  ``get``/``__contains__`` verify the
footer *before* ``pickle.load`` runs, so a truncated or bit-flipped
entry is detected and dropped as a miss instead of feeding the
unpickler garbage -- and membership is consistent with readability: a
key is ``in`` the cache exactly when ``get`` would return its value.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import zlib
from pathlib import Path

from repro import telemetry

__all__ = ["ResultCache", "default_cache_dir", "default_enabled"]

_LOG = logging.getLogger(__name__)

#: Bump to orphan every existing entry after a format change.
#: v2: appended the integrity footer (magic + length + CRC32).
CACHE_VERSION = 2

#: Entry trailer: payload || pack(magic, payload length, crc32(payload)).
_FOOTER = struct.Struct("<4sQI")
_MAGIC = b"RPRC"

_SENTINEL = object()


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_enabled() -> bool:
    """Whether stages should cache when the caller did not say.

    Opt-in via the environment: set ``REPRO_CACHE_DIR`` to turn the
    cache on for a whole run without touching any call site.
    """
    return bool(os.environ.get("REPRO_CACHE_DIR", "").strip())


class ResultCache:
    """Pickle-per-entry content-addressed store; see module docstring."""

    def __init__(self, root: str | os.PathLike | None = None,
                 namespace: str = "default"):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace

    # -------------------------------------------------------------- #
    def path(self, key: str) -> Path:
        return self.root / self.namespace / f"{key}.v{CACHE_VERSION}.pkl"

    def _read_verified(self, path: Path) -> bytes | None:
        """The entry's pickle payload, or ``None`` if the file fails
        its integrity footer (truncated, bit-flipped, or pre-footer).

        Raises ``OSError`` subclasses for I/O-level misses (no file);
        callers map those to plain misses.
        """
        with open(path, "rb") as fh:
            blob = fh.read()
        if len(blob) < _FOOTER.size:
            return None
        payload, footer = blob[:-_FOOTER.size], blob[-_FOOTER.size:]
        magic, length, crc = _FOOTER.unpack(footer)
        if magic != _MAGIC or length != len(payload) \
                or crc != zlib.crc32(payload):
            return None
        return payload

    def _drop_corrupt(self, path: Path, reason: str) -> None:
        _LOG.warning("dropping unreadable cache entry %s (%s)", path, reason)
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
        telemetry.count(f"runtime.cache_corrupt.{self.namespace}")

    def get(self, key: str, default=None):
        """The cached value, or ``default`` on miss/corruption.

        A corrupt or unreadable entry counts as a miss and is removed;
        the cache never raises into the flow.
        """
        path = self.path(key)
        try:
            payload = self._read_verified(path)
        except (FileNotFoundError, NotADirectoryError):
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        except OSError as exc:
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        if payload is None:
            self._drop_corrupt(path, "integrity footer mismatch")
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        try:
            value = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - treat as miss
            # Intact bytes but no longer loadable (e.g. a class moved);
            # same contract as corruption: drop, miss, never raise.
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        telemetry.count(f"runtime.cache_hit.{self.namespace}")
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` atomically; best-effort.

        A full disk or read-only cache dir degrades to "no cache", not
        to a failed run.
        """
        path = self.path(key)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            footer = _FOOTER.pack(_MAGIC, len(payload), zlib.crc32(payload))
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.write(footer)
            os.replace(tmp, path)
        except OSError as exc:
            _LOG.warning("cache write failed for %s (%s); continuing "
                         "uncached", path, exc)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
        else:
            telemetry.count(f"runtime.cache_write.{self.namespace}")

    def __contains__(self, key: str) -> bool:
        """Membership is *readability*: True iff ``get`` would hit.

        A poisoned (truncated/bit-flipped) entry therefore can never
        count as a hit; the integrity footer makes the check cheap
        (one CRC pass, no unpickling).
        """
        try:
            return self._read_verified(self.path(key)) is not None
        except OSError:
            return False

    # -------------------------------------------------------------- #
    def prune(self) -> int:
        """Delete every entry in this namespace; returns the count."""
        removed = 0
        directory = self.root / self.namespace
        if directory.is_dir():
            for entry in directory.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
