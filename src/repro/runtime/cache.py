"""Content-addressed on-disk result cache.

Repeat runs of the flow redo identical work: every ``repro all``
rebuilds the same two libraries from the same configs, every seeded
campaign re-runs the same injections.  This cache closes that loop --
results are stored under a key that *is* a digest of everything that
produced them (:func:`repro.runtime.digest.stable_digest` over the
config dataclasses and companion inputs), so

* a hit is trustworthy by construction: any input change changes the
  key and misses;
* no invalidation protocol is needed: stale entries are simply never
  addressed again (``prune()`` reclaims the disk).

Layout: ``<root>/<namespace>/<key><suffix>``, one pickle per entry,
written atomically (tmp file + ``os.replace``) so a crashed or
concurrent writer can never leave a torn entry.  The root defaults to
``~/.cache/repro`` and is overridden by ``REPRO_CACHE_DIR``; caching is
*opt-in* -- stages consult :func:`default_enabled`, which is true only
when ``REPRO_CACHE_DIR`` is set (tests monkeypatch engines, so silently
serving yesterday's results by default would be a correctness hazard).
"""

from __future__ import annotations

import logging
import os
import pickle
from pathlib import Path

from repro import telemetry

__all__ = ["ResultCache", "default_cache_dir", "default_enabled"]

_LOG = logging.getLogger(__name__)

#: Bump to orphan every existing entry after a format change.
CACHE_VERSION = 1

_SENTINEL = object()


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def default_enabled() -> bool:
    """Whether stages should cache when the caller did not say.

    Opt-in via the environment: set ``REPRO_CACHE_DIR`` to turn the
    cache on for a whole run without touching any call site.
    """
    return bool(os.environ.get("REPRO_CACHE_DIR", "").strip())


class ResultCache:
    """Pickle-per-entry content-addressed store; see module docstring."""

    def __init__(self, root: str | os.PathLike | None = None,
                 namespace: str = "default"):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.namespace = namespace

    # -------------------------------------------------------------- #
    def path(self, key: str) -> Path:
        return self.root / self.namespace / f"{key}.v{CACHE_VERSION}.pkl"

    def get(self, key: str, default=None):
        """The cached value, or ``default`` on miss/corruption.

        A corrupt or unreadable entry counts as a miss and is removed;
        the cache never raises into the flow.
        """
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (FileNotFoundError, NotADirectoryError):
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        except Exception as exc:  # noqa: BLE001 - treat as miss
            _LOG.warning("dropping unreadable cache entry %s (%s: %s)",
                         path, type(exc).__name__, exc)
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            telemetry.count(f"runtime.cache_miss.{self.namespace}")
            return default
        telemetry.count(f"runtime.cache_hit.{self.namespace}")
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` atomically; best-effort.

        A full disk or read-only cache dir degrades to "no cache", not
        to a failed run.
        """
        path = self.path(key)
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:
            _LOG.warning("cache write failed for %s (%s); continuing "
                         "uncached", path, exc)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
        else:
            telemetry.count(f"runtime.cache_write.{self.namespace}")

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    # -------------------------------------------------------------- #
    def prune(self) -> int:
        """Delete every entry in this namespace; returns the count."""
        removed = 0
        directory = self.root / self.namespace
        if directory.is_dir():
            for entry in directory.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
