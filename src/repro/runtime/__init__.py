"""repro.runtime: parallel execution + content-addressed result caching.

The flow's throughput comes from three embarrassingly parallel fan-outs
-- per-cell characterization, per-injection SEU runs, per-artifact
experiments.  This package gives them shared infrastructure:

* :mod:`~repro.runtime.executor` -- ``Executor.map(fn, items)`` over
  ``serial``/``thread``/``process`` backends, selected by ``jobs=`` /
  ``REPRO_JOBS`` (+ ``REPRO_EXECUTOR``), with chunking, per-item
  timeout/retry, deterministic result ordering and graceful fallback
  to serial when a backend is unavailable or payloads fail to pickle;
* :mod:`~repro.runtime.cache` -- an on-disk result cache keyed by
  content digests (``~/.cache/repro`` or ``REPRO_CACHE_DIR``), opt-in
  via the environment;
* :mod:`~repro.runtime.digest` -- the stable structural hashing that
  produces those keys and backs every config's ``config_digest()``.

See ``docs/ARCHITECTURE.md`` ("Runtime & caching").
"""

from repro.runtime.cache import ResultCache, default_cache_dir, default_enabled
from repro.runtime.digest import (
    config_from_dict,
    config_to_dict,
    stable_digest,
)
from repro.runtime.executor import (
    BACKENDS,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    resolve_jobs,
)

__all__ = [
    "BACKENDS",
    "Executor",
    "ExecutorError",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "ThreadExecutor",
    "config_from_dict",
    "config_to_dict",
    "default_cache_dir",
    "default_enabled",
    "get_executor",
    "resolve_jobs",
    "stable_digest",
]
