"""Seeded chaos injectors: controlled damage to the repro stack itself.

The reliability layer (PR 1) attacks the *simulated* hardware with SEU
campaigns; this module attacks the *reproduction infrastructure* -- the
cache, the run ledger, the executor's worker pool, the solver -- the
way a chaos-engineering harness attacks a production service.  Every
injector is

* **seeded**: all randomness flows from the :class:`ChaosMonkey`'s own
  ``random.Random(seed)``, so a failing assault campaign replays
  bit-identically;
* **a context manager**: damage is applied on entry and *reverted* on
  exit, so the endurance tier can loop injections against one sandbox
  without compounding state, and a scenario can assert both the
  degraded behavior (inside the block) and the recovery (after it);
* **surgical**: each targets exactly one failure mode named by the
  scenario corpus (truncation, bit flip, stale-version poisoning,
  ledger line corruption, worker death, solver non-convergence).

None of these helpers are used by production code paths; they exist for
:mod:`repro.assault.corpus` scenarios and the chaos test suite.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import random

from repro.errors import ConfigError

__all__ = ["ChaosMonkey", "WorkerAssassin"]

#: Ledger corruption modes accepted by :meth:`ChaosMonkey.corrupted_ledger`.
LEDGER_MODES = ("garbage", "binary", "truncate", "midline")


class WorkerAssassin:
    """Picklable wrapper that hard-kills pool workers on marked items.

    Calls ``fn(item)`` normally -- except in a *worker process* (pid
    differs from the recorded parent) when ``item`` is in the kill set,
    where it exits the process without cleanup (``os._exit``), the
    closest safe stand-in for an OOM kill or a segfault.  The parent
    process never dies: when the executor's chunk-recovery path retries
    the item in-process, the pid check passes and the real function
    runs.
    """

    def __init__(self, fn, kill_items, parent_pid: int):
        self.fn = fn
        self.kill_items = frozenset(kill_items)
        self.parent_pid = parent_pid

    def __call__(self, item):
        if os.getpid() != self.parent_pid and item in self.kill_items:
            os._exit(17)
        return self.fn(item)


class ChaosMonkey:
    """A seeded bag of infrastructure fault injectors (see module doc)."""

    def __init__(self, seed: int = 2023):
        self.seed = seed
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # ResultCache attacks
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def truncated_cache_entry(self, cache, key: str):
        """Cut a cached entry short (torn write / partial disk flush)."""
        path = cache.path(key)
        original = path.read_bytes()
        keep = self.rng.randrange(1, max(2, len(original)))
        path.write_bytes(original[:keep])
        try:
            yield path
        finally:
            path.write_bytes(original)

    @contextlib.contextmanager
    def bitflipped_cache_entry(self, cache, key: str):
        """Flip one random bit of a cached entry (media corruption)."""
        path = cache.path(key)
        original = path.read_bytes()
        damaged = bytearray(original)
        i = self.rng.randrange(len(damaged))
        damaged[i] ^= 1 << self.rng.randrange(8)
        path.write_bytes(bytes(damaged))
        try:
            yield path
        finally:
            path.write_bytes(original)

    @contextlib.contextmanager
    def stale_version_entry(self, cache, key: str, poison):
        """Plant ``poison`` under the *previous* cache format version.

        Simulates the upgrade hazard: an entry written by an older
        build sits at the same key.  The content-addressed layout must
        keep it invisible -- ``get`` addresses only the current
        ``CACHE_VERSION`` suffix -- so the poison can never be served.
        """
        from repro.runtime.cache import CACHE_VERSION

        stale = (cache.root / cache.namespace
                 / f"{key}.v{CACHE_VERSION - 1}.pkl")
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(pickle.dumps(poison))
        try:
            yield stale
        finally:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Run-ledger attacks
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def corrupted_ledger(self, ledger, mode: str = "garbage"):
        """Damage the ledger JSONL file; restores the original on exit.

        Modes: ``garbage`` appends a syntactically broken JSON line;
        ``binary`` appends raw random bytes (power loss mid-append over
        reused blocks); ``truncate`` cuts the final record mid-line;
        ``midline`` mangles a record in the *middle* of the file,
        leaving valid records on both sides.
        """
        if mode not in LEDGER_MODES:
            raise ConfigError(f"unknown ledger corruption mode {mode!r}; "
                              f"pick from {LEDGER_MODES}", field="mode")
        path = ledger.path
        ledger.runs_dir.mkdir(parents=True, exist_ok=True)
        original = path.read_bytes() if path.exists() else b""
        path.write_bytes(self._damage_ledger_bytes(original, mode))
        try:
            yield path
        finally:
            path.write_bytes(original)

    def _damage_ledger_bytes(self, original: bytes, mode: str) -> bytes:
        if mode == "garbage":
            return original + b'{"experiment": "half a reco\n'
        if mode == "binary":
            junk = bytes(self.rng.randrange(256) for _ in range(64))
            return original + junk + b"\n"
        if mode == "truncate":
            cut = self.rng.randrange(2, 40)
            return original[:max(1, len(original) - cut)]
        # midline: mangle a record mid-file, keeping its line structure.
        lines = original.splitlines(keepends=True)
        if not lines:
            return b'{"broken\n'
        idx = self.rng.randrange(len(lines))
        victim = lines[idx]
        lines[idx] = victim[:max(1, len(victim) // 2)].rstrip(b"\n") + b"\n"
        return b"".join(lines)

    # ------------------------------------------------------------------ #
    # Executor attacks
    # ------------------------------------------------------------------ #
    def worker_assassin(self, fn, kill_items,
                        parent_pid: int | None = None) -> WorkerAssassin:
        """A picklable ``fn`` wrapper that kills pool workers; see
        :class:`WorkerAssassin`."""
        return WorkerAssassin(fn, kill_items,
                              os.getpid() if parent_pid is None
                              else parent_pid)

    # ------------------------------------------------------------------ #
    # Solver attacks
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def hostile_solver(self, max_iterations: int = 1):
        """Make every nonlinear solve hopeless while the block runs.

        Caps the Newton inner loop at ``max_iterations`` (module-level
        knob, read at call time), so plain NR, every gmin rung, and
        every source step all fail and the solver must surface a clean
        :class:`~repro.spice.solver.ConvergenceError` carrying the full
        escalation history -- the "pathological gmin settings" failure
        the issue names, without waiting out a real pathological solve.
        """
        from repro.spice import solver

        saved = solver._MAX_NR_ITERATIONS
        solver._MAX_NR_ITERATIONS = max_iterations
        try:
            yield
        finally:
            solver._MAX_NR_ITERATIONS = saved
