"""Scenario model: frozen specs, expected outcomes, PASS/WARN/FAIL grading.

A :class:`ScenarioSpec` is one hostile situation thrown at the repro
stack, declared with the *contract* the stack must honor under it:

* ``expect_error(ExcType, ...)`` -- the scenario must be rejected with
  a clean **typed** error (:class:`~repro.errors.ReproError` subclass),
  never a raw traceback and never silent acceptance;
* ``expect_clean(check)`` -- the scenario must complete without
  raising, and the returned observation must satisfy ``check`` (the
  graceful-degradation contract: wrong answers are worse than errors).

Grading mirrors the fidelity machinery's verdict scale
(:data:`~repro.provenance.fidelity.PASS`/``WARN``/``FAIL``):

========  =========================================================
verdict   meaning
========  =========================================================
PASS      the declared contract held exactly
WARN      degraded but typed/handled (a ``ReproError`` of the wrong
          class, or a check that flags a soft deviation)
FAIL      an unhandled exception escaped, the expected rejection
          never happened, or the degradation contract was violated
========  =========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Callable

from repro.errors import ReproError
from repro.provenance.fidelity import FAIL, PASS, WARN

__all__ = [
    "Expectation",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioSpec",
    "expect_clean",
    "expect_error",
    "grade",
]


@dataclass(frozen=True)
class Expectation:
    """What a scenario's run must do for the stack to PASS."""

    kind: str
    """``"error"`` (typed rejection required) or ``"clean"`` (graceful
    completion required)."""
    error_types: tuple[type, ...] = ()
    check: Callable | None = None
    """``check(observation)``: ``True`` = PASS, a string = WARN with
    that note, anything else = FAIL."""


def expect_error(*error_types: type) -> Expectation:
    """The scenario must raise one of these typed error classes."""
    if not error_types:
        raise ValueError("expect_error needs at least one exception type")
    return Expectation(kind="error", error_types=error_types)


def expect_clean(check: Callable | None = None) -> Expectation:
    """The scenario must complete; ``check`` grades the observation."""
    return Expectation(kind="clean", check=check)


@dataclass(frozen=True)
class ScenarioSpec:
    """One frozen hostile scenario plus its expected outcome."""

    name: str
    tier: str
    description: str
    run: Callable
    """``run(ctx: ScenarioContext) -> observation`` -- drives the stack
    through the hostile situation; raises to signal rejection."""
    expect: Expectation


@dataclass(frozen=True)
class ScenarioResult:
    """One graded scenario execution (what tier reports aggregate)."""

    name: str
    tier: str
    status: str
    note: str = ""
    error_type: str = ""
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tier": self.tier,
            "status": self.status,
            "note": self.note,
            "error_type": self.error_type,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        return cls(
            name=data.get("name", "?"),
            tier=data.get("tier", "?"),
            status=data.get("status", FAIL),
            note=data.get("note", ""),
            error_type=data.get("error_type", ""),
            wall_s=float(data.get("wall_s", 0.0)),
        )


class ScenarioContext:
    """Per-scenario sandbox: throwaway dirs + seeded chaos.

    Every scenario gets its own working directory (so chaos against the
    cache or ledger cannot leak across scenarios), its own
    :class:`~repro.assault.chaos.ChaosMonkey`, and a scenario-local RNG
    -- all derived from one campaign seed, so the whole assault replays
    deterministically.
    """

    def __init__(self, workdir: str | Path, seed: int = 2023):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.seed = seed
        self.rng = random.Random(seed ^ 0x5EED)

    @cached_property
    def chaos(self):
        from repro.assault.chaos import ChaosMonkey

        return ChaosMonkey(self.seed)

    @cached_property
    def cache(self):
        from repro.runtime import ResultCache

        return ResultCache(self.workdir / "cache", namespace="assault")

    @cached_property
    def ledger(self):
        from repro.provenance import RunLedger

        return RunLedger(self.workdir / "runs")


def grade(spec: ScenarioSpec, observation, error: BaseException | None
          ) -> tuple[str, str]:
    """Grade one execution against the spec's expectation; see module
    docstring for the verdict semantics."""
    expect = spec.expect
    if error is not None:
        if expect.kind == "error" and isinstance(error, expect.error_types):
            return PASS, f"rejected with {type(error).__name__}: {error}"
        if isinstance(error, ReproError):
            return WARN, (f"typed but unexpected "
                          f"{type(error).__name__}: {error}")
        return FAIL, f"unhandled {type(error).__name__}: {error}"
    if expect.kind == "error":
        wanted = "/".join(t.__name__ for t in expect.error_types)
        return FAIL, f"accepted silently (expected {wanted})"
    if expect.check is None:
        return PASS, ""
    try:
        verdict = expect.check(observation)
    except Exception as exc:  # noqa: BLE001 - a broken check is a FAIL
        return FAIL, f"check raised {type(exc).__name__}: {exc}"
    if verdict is True:
        return PASS, ""
    if isinstance(verdict, str):
        return WARN, verdict
    return FAIL, "degradation contract violated"
