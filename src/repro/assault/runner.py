"""The campaign runner: execute tiers of hostile scenarios, grade them.

``run_assault`` is the single entry point the CLI and the test suite
share.  For each requested tier it materializes the scenario corpus,
runs every scenario in its own sandbox (throwaway cache/ledger dirs
under one campaign root, removed afterwards unless the caller pins a
``workdir``), grades the outcome PASS/WARN/FAIL against the scenario's
declared contract, and folds the results into per-tier
:class:`~repro.assault.report.TierReport` objects.

Scenario execution is itself routed through the repo's
:class:`~repro.runtime.executor.Executor`, so the harness exercises the
machinery it is attacking; scenario closures are not picklable, which
the executor detects and degrades to its in-process path -- exactly the
graceful-degradation contract the storm tier asserts from the outside.

Determinism: the campaign seed fans out per scenario as
``seed ^ crc32(name)``, so any single scenario replays bit-identically
in isolation (``run_assault`` with one tier, or the scenario function
directly under a :class:`~repro.assault.scenarios.ScenarioContext`).
"""

from __future__ import annotations

import shutil
import tempfile
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.assault.corpus import TIERS, scenarios_for
from repro.assault.report import TierReport
from repro.assault.scenarios import (
    ScenarioContext,
    ScenarioResult,
    ScenarioSpec,
    grade,
)
from repro import telemetry
from repro.errors import ConfigError

__all__ = ["AssaultConfig", "run_assault", "run_scenario"]


@dataclass(frozen=True)
class AssaultConfig:
    """One assault campaign: which tiers, how seeded, where sandboxed."""

    tiers: tuple[str, ...] = ("smoke",)
    seed: int = 2023
    jobs: int | None = 1
    """Worker count for scenario fan-out; 1 (serial) keeps chaos
    scenarios from fighting over process-global knobs like the solver's
    iteration cap."""
    workdir: str | None = None
    """Campaign sandbox root; ``None`` uses a throwaway temp dir that
    is removed when the campaign ends."""

    def __post_init__(self):
        if not self.tiers:
            raise ConfigError("assault needs at least one tier",
                              field="tiers")
        for tier in self.tiers:
            if tier not in TIERS:
                raise ConfigError(
                    f"unknown tier {tier!r}; pick from {TIERS}",
                    field="tiers")


def run_scenario(spec: ScenarioSpec, root: Path, seed: int
                 ) -> ScenarioResult:
    """Execute and grade one scenario in its own sandbox."""
    workdir = root / spec.tier / spec.name
    derived = seed ^ zlib.crc32(spec.name.encode())
    ctx = ScenarioContext(workdir, seed=derived)
    observation = None
    error: BaseException | None = None
    start = time.perf_counter()
    with telemetry.span("assault.scenario", scenario=spec.name,
                        tier=spec.tier):
        try:
            observation = spec.run(ctx)
        except Exception as exc:  # noqa: BLE001 - grading IS the handler
            error = exc
    wall = time.perf_counter() - start
    status, note = grade(spec, observation, error)
    telemetry.count(f"assault.{status.lower()}")
    return ScenarioResult(
        name=spec.name,
        tier=spec.tier,
        status=status,
        note=note,
        error_type=type(error).__name__ if error is not None else "",
        wall_s=wall,
    )


def run_assault(config: AssaultConfig | None = None) -> list[TierReport]:
    """Run the campaign; returns one :class:`TierReport` per tier."""
    from repro.runtime import get_executor

    config = config or AssaultConfig()
    if config.workdir is not None:
        root = Path(config.workdir)
        root.mkdir(parents=True, exist_ok=True)
        cleanup = False
    else:
        root = Path(tempfile.mkdtemp(prefix="repro-assault-"))
        cleanup = True

    executor = get_executor(config.jobs, "thread")
    reports: list[TierReport] = []
    try:
        for tier in config.tiers:
            specs = scenarios_for(tier)
            start = time.perf_counter()
            results = executor.map(
                lambda spec: run_scenario(spec, root, config.seed), specs)
            reports.append(TierReport(
                tier=tier,
                results=tuple(results),
                wall_s=time.perf_counter() - start,
                seed=config.seed,
            ))
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
    return reports
