"""The frozen scenario corpus, organized as tiered missions.

Tier taxonomy (mirroring the smoke -> edge/security -> latency staging
of tiered test-mission harnesses):

``smoke``
    The stack's vital signs: cache round-trip, ledger round-trip,
    executor fan-out, a small DC solve, fidelity grading.  Everything
    must complete cleanly -- a smoke FAIL means the repo is broken
    before any adversary shows up.
``edge``
    Malformed *inputs*: broken netlists (dangling nodes, NaN
    parameters, zero-width devices, duplicate elements), out-of-range
    configs, combinational cycles, oversized transient requests.  Each
    must be rejected with a typed :class:`~repro.errors.ReproError`
    subclass naming the offender -- never a raw traceback, never
    silent acceptance.
``storm``
    Chaos against the *infrastructure*: truncated / bit-flipped /
    stale-version-poisoned cache entries, ledger corruption, worker
    death mid-``map``, solver budget exhaustion and forced
    non-convergence, an SEU campaign running concurrently with library
    characterization.  The contract is graceful degradation: misses
    instead of garbage, typed errors instead of tracebacks, recovery
    after the chaos lifts.
``endurance``
    The storm scenarios looped with seeded random interleaving:
    repeated cache churn under corruption, ledger growth under
    periodic damage, solver sweeps under random budgets, executor
    retry storms.  Catches state that only corrupts cumulatively.

Adding a scenario: write a ``run(ctx)`` function and decorate it::

    @scenario("cache_eviction_race", tier="storm",
              description="...", expect=expect_clean(_my_check))
    def _cache_eviction_race(ctx):
        ...
        return observation

The :class:`~repro.assault.scenarios.ScenarioContext` gives every
scenario an isolated cache/ledger sandbox and a seeded
:class:`~repro.assault.chaos.ChaosMonkey`.
"""

from __future__ import annotations

import dataclasses

from repro.assault.scenarios import (
    ScenarioSpec,
    expect_clean,
    expect_error,
)
from repro.errors import (
    ConfigError,
    NetlistError,
    SolverBudgetError,
    SolverError,
    ValidationError,
)

__all__ = ["TIERS", "all_scenarios", "scenario", "scenarios_for"]

#: Canonical tier order (escalating hostility).
TIERS = ("smoke", "edge", "storm", "endurance")

_CORPUS: list[ScenarioSpec] = []


def scenario(name: str, *, tier: str, description: str, expect):
    """Register one frozen scenario in the corpus (decorator)."""
    if tier not in TIERS:
        raise ConfigError(f"unknown tier {tier!r}; pick from {TIERS}",
                          field="tier")
    if any(s.name == name for s in _CORPUS):
        raise ValueError(f"scenario {name!r} already registered")

    def decorate(run):
        _CORPUS.append(ScenarioSpec(name=name, tier=tier,
                                    description=description, run=run,
                                    expect=expect))
        return run

    return decorate


def scenarios_for(tier: str) -> list[ScenarioSpec]:
    """The corpus slice for one tier, in registration order."""
    if tier not in TIERS:
        raise ConfigError(f"unknown tier {tier!r}; pick from {TIERS}",
                          field="tier")
    return [s for s in _CORPUS if s.tier == tier]


def all_scenarios() -> list[ScenarioSpec]:
    return list(_CORPUS)


# ====================================================================== #
# Shared builders (small on purpose: scenarios run on every PR)
# ====================================================================== #
def _square(x):
    """Module-level so it pickles across the process boundary."""
    return x * x


def _stall_on_three(x):
    """A hostile task: item 3 wedges its worker far past the stall
    timeout the scenario configures; everything else is instant."""
    import time

    if x == 3:
        time.sleep(0.8)
    return x * x


def _rc_divider():
    """A linear divider: mid node must land at exactly 0.5 V."""
    from repro.spice import Circuit
    from repro.spice.sources import DC

    c = Circuit("divider")
    c.add_vsource("v1", "a", "0", DC(1.0))
    c.add_resistor("r1", "a", "mid", 1e3)
    c.add_resistor("r2", "mid", "0", 1e3)
    return c


def _inverter():
    """A transistor-level inverter: the smallest nonlinear solve."""
    from repro.device import FinFET, golden_nfet, golden_pfet
    from repro.spice import Circuit
    from repro.spice.sources import DC

    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", DC(0.7))
    c.add_vsource("vin", "in", "0", DC(0.35))
    c.add_finfet("mp", "out", "in", "vdd", FinFET(golden_pfet(nfin=2)))
    c.add_finfet("mn", "out", "in", "0", FinFET(golden_nfet(nfin=2)))
    c.add_capacitor("cl", "out", "0", 1e-15)
    return c


def _record(i: int):
    from repro.provenance import RunRecord

    return RunRecord(experiment=f"assault_probe_{i}", kind="experiment",
                     metrics={"value": float(i)})


# ====================================================================== #
# smoke -- vital signs, everything must work cleanly
# ====================================================================== #
@scenario("cache_roundtrip", tier="smoke",
          description="put/get/membership on a fresh cache",
          expect=expect_clean(lambda obs: obs["hits"] == 3
                              and obs["member"] is True))
def _cache_roundtrip(ctx):
    from repro.runtime import stable_digest

    keys = [stable_digest({"i": i}) for i in range(3)]
    for i, key in enumerate(keys):
        ctx.cache.put(key, {"payload": i})
    hits = sum(ctx.cache.get(k, None) == {"payload": i}
               for i, k in enumerate(keys))
    return {"hits": hits, "member": keys[0] in ctx.cache}


@scenario("ledger_roundtrip", tier="smoke",
          description="append records, read them back in order",
          expect=expect_clean(lambda obs: obs["read"] == 3
                              and obs["latest"] == "assault_probe_2"))
def _ledger_roundtrip(ctx):
    for i in range(3):
        ctx.ledger.append(_record(i))
    records = ctx.ledger.records()
    return {"read": len(records), "latest": records[-1].experiment}


@scenario("executor_fanout", tier="smoke",
          description="thread-pool map matches the serial reference",
          expect=expect_clean(lambda obs: obs["parallel"] == obs["serial"]))
def _executor_fanout(ctx):
    from repro.runtime import get_executor

    items = list(range(16))
    return {
        "parallel": get_executor(2, "thread").map(_square, items),
        "serial": get_executor(1).map(_square, items),
    }


@scenario("solver_dc_divider", tier="smoke",
          description="a trivial DC solve lands on the analytic answer",
          expect=expect_clean(lambda obs: abs(obs["mid"] - 0.5) < 1e-6))
def _solver_dc_divider(ctx):
    from repro.spice import dc_operating_point

    return {"mid": dc_operating_point(_rc_divider())["mid"]}


@scenario("fidelity_grading", tier="smoke",
          description="the PASS/WARN/FAIL machinery grades a clean run",
          expect=expect_clean(lambda obs: obs["verdict"] == "PASS"))
def _fidelity_grading(ctx):
    from repro.provenance import FidelitySpec, metric

    spec = FidelitySpec(metrics=(
        metric("probe", 1.0, lambda r: r["probe"], rel=0.05),
    ))
    return {"verdict": spec.evaluate("probe", {"probe": 1.01}).verdict}


# ====================================================================== #
# edge -- malformed inputs must be rejected with typed errors
# ====================================================================== #
@scenario("netlist_negative_resistance", tier="edge",
          description="R <= 0 rejected at element construction",
          expect=expect_error(NetlistError))
def _netlist_negative_resistance(ctx):
    from repro.spice import Circuit

    Circuit().add_resistor("r1", "a", "0", -50.0)


@scenario("netlist_nan_parameter", tier="edge",
          description="NaN capacitance rejected at element construction",
          expect=expect_error(NetlistError))
def _netlist_nan_parameter(ctx):
    from repro.spice import Circuit

    Circuit().add_capacitor("c1", "a", "0", float("nan"))


@scenario("netlist_duplicate_element", tier="edge",
          description="reusing an element name is rejected",
          expect=expect_error(NetlistError))
def _netlist_duplicate_element(ctx):
    from repro.spice import Circuit

    c = Circuit()
    c.add_resistor("r1", "a", "0", 1e3)
    c.add_resistor("r1", "b", "0", 1e3)


@scenario("netlist_dangling_node", tier="edge",
          description="a resistor into nowhere fails validation, not "
                      "silently solving to 0 V through gmin",
          expect=expect_error(NetlistError))
def _netlist_dangling_node(ctx):
    from repro.spice import Circuit, dc_operating_point
    from repro.spice.sources import DC

    c = Circuit()
    c.add_vsource("v1", "a", "0", DC(1.0))
    c.add_resistor("r1", "a", "nowhere", 1e3)
    dc_operating_point(c)


@scenario("netlist_zero_width_device", tier="edge",
          description="a 0-fin FinFET is rejected before assembly "
                      "(device params or circuit validation, both typed)",
          expect=expect_error(ValidationError))
def _netlist_zero_width_device(ctx):
    from repro.device import FinFET, golden_nfet
    from repro.spice import Circuit, dc_operating_point
    from repro.spice.sources import DC

    broken = dataclasses.replace(golden_nfet(), nfin=0)
    c = Circuit()
    c.add_vsource("vdd", "vdd", "0", DC(0.7))
    c.add_finfet("mn", "vdd", "vdd", "0", FinFET(broken))
    dc_operating_point(c)


@scenario("netlist_unknown_probe_node", tier="edge",
          description="recording an unknown node is rejected up front",
          expect=expect_error(NetlistError))
def _netlist_unknown_probe_node(ctx):
    from repro.spice import transient

    transient(_rc_divider(), t_stop=1e-10, dt=1e-12, record=["ghost"])


@scenario("config_unknown_engine", tier="edge",
          description="an unknown characterization engine is rejected",
          expect=expect_error(ConfigError))
def _config_unknown_engine(ctx):
    from repro.cells import CharacterizationConfig

    CharacterizationConfig(engine="quantum_annealer")


@scenario("config_nan_temperature", tier="edge",
          description="NaN corner temperature is rejected",
          expect=expect_error(ConfigError))
def _config_nan_temperature(ctx):
    from repro.cells import CharacterizationConfig

    CharacterizationConfig(temperature_k=float("nan"))


@scenario("config_zero_shots", tier="edge",
          description="a zero-shot study config is rejected",
          expect=expect_error(ConfigError))
def _config_zero_shots(ctx):
    from repro.core import StudyConfig

    StudyConfig(shots=0)


@scenario("config_bad_soc_geometry", tier="edge",
          description="non-power-of-two cache geometry is rejected",
          expect=expect_error(ConfigError))
def _config_bad_soc_geometry(ctx):
    from repro.synth.soc_builder import SoCConfig

    SoCConfig(line_bytes=48)


@scenario("synth_combinational_cycle", tier="edge",
          description="a cyclic gate netlist is rejected by the "
                      "topological traversal",
          expect=expect_error(NetlistError))
def _synth_combinational_cycle(ctx):
    from repro.synth.netlist import GateNetlist

    n = GateNetlist("loop")
    n.add_gate("INV_X1", {"A": "n2"}, output="n1", name="g1")
    n.add_gate("INV_X1", {"A": "n1"}, output="n2", name="g2")
    n.topological_gates(library={})


@scenario("transient_oversized", tier="edge",
          description="a t_stop/dt pair implying billions of steps is "
                      "rejected instead of grinding or OOMing",
          expect=expect_error(ConfigError))
def _transient_oversized(ctx):
    from repro.spice import transient

    transient(_rc_divider(), t_stop=1.0, dt=1e-12)


@scenario("transient_nonpositive_step", tier="edge",
          description="dt <= 0 is rejected with a typed error",
          expect=expect_error(ConfigError))
def _transient_nonpositive_step(ctx):
    from repro.spice import transient

    transient(_rc_divider(), t_stop=1e-9, dt=0.0)


# ====================================================================== #
# storm -- chaos against the infrastructure
# ====================================================================== #
def _check_cache_chaos(obs):
    if not obs["miss_under_chaos"]:
        return False
    if not obs["not_member_under_chaos"]:
        return False
    if not obs["recovered"]:
        return "degraded entry never recovered after chaos lifted"
    return True


@scenario("cache_truncation", tier="storm",
          description="a truncated entry reads as a miss, never garbage",
          expect=expect_clean(_check_cache_chaos))
def _cache_truncation(ctx):
    from repro.runtime import stable_digest

    key = stable_digest({"cell": "INV_X1"})
    ctx.cache.put(key, {"delay_ps": 12.5})
    with ctx.chaos.truncated_cache_entry(ctx.cache, key):
        miss = ctx.cache.get(key, None) is None
        member = key in ctx.cache
    ctx.cache.put(key, {"delay_ps": 12.5})
    return {
        "miss_under_chaos": miss,
        "not_member_under_chaos": not member,
        "recovered": ctx.cache.get(key, None) == {"delay_ps": 12.5},
    }


@scenario("cache_bitflip", tier="storm",
          description="a bit-flipped entry fails its CRC and misses",
          expect=expect_clean(_check_cache_chaos))
def _cache_bitflip(ctx):
    from repro.runtime import stable_digest

    key = stable_digest({"cell": "NAND2_X1"})
    ctx.cache.put(key, list(range(64)))
    with ctx.chaos.bitflipped_cache_entry(ctx.cache, key):
        miss = ctx.cache.get(key, None) is None
        member = key in ctx.cache
    ctx.cache.put(key, list(range(64)))
    return {
        "miss_under_chaos": miss,
        "not_member_under_chaos": not member,
        "recovered": ctx.cache.get(key, None) == list(range(64)),
    }


@scenario("cache_stale_version_poison", tier="storm",
          description="an entry written under an older cache version is "
                      "invisible, never served",
          expect=expect_clean(lambda obs: obs["poison_invisible"]
                              and obs["real_value_served"]))
def _cache_stale_version_poison(ctx):
    from repro.runtime import stable_digest

    key = stable_digest({"corner": "10K"})
    with ctx.chaos.stale_version_entry(ctx.cache, key, {"POISON": True}):
        poison_invisible = (ctx.cache.get(key, None) is None
                            and key not in ctx.cache)
        ctx.cache.put(key, {"fresh": 1})
        served = ctx.cache.get(key, None)
    return {
        "poison_invisible": poison_invisible,
        "real_value_served": served == {"fresh": 1},
    }


def _check_ledger_chaos(obs):
    if obs["raised"]:
        return False
    if obs["read_under_chaos"] < obs["expected_valid"]:
        return ("readable records dropped below the valid count: "
                f"{obs['read_under_chaos']} < {obs['expected_valid']}")
    return obs["recovered"] == obs["appended"]


def _ledger_chaos(ctx, mode: str, expected_valid: int, appended: int = 3):
    for i in range(appended):
        ctx.ledger.append(_record(i))
    raised = False
    read = 0
    with ctx.chaos.corrupted_ledger(ctx.ledger, mode=mode):
        try:
            read = len(ctx.ledger.records())
        except Exception:  # noqa: BLE001 - the contract is "never raises"
            raised = True
    return {
        "raised": raised,
        "read_under_chaos": read,
        "expected_valid": expected_valid,
        "recovered": len(ctx.ledger.records()),
        "appended": appended,
    }


@scenario("ledger_garbage_line", tier="storm",
          description="an appended garbage line is skipped, valid "
                      "records survive",
          expect=expect_clean(_check_ledger_chaos))
def _ledger_garbage_line(ctx):
    return _ledger_chaos(ctx, "garbage", expected_valid=3)


@scenario("ledger_midfile_corruption", tier="storm",
          description="a record mangled mid-file loses only itself",
          expect=expect_clean(_check_ledger_chaos))
def _ledger_midfile_corruption(ctx):
    return _ledger_chaos(ctx, "midline", expected_valid=2)


@scenario("ledger_binary_junk", tier="storm",
          description="raw binary appended to the ledger is skipped",
          expect=expect_clean(_check_ledger_chaos))
def _ledger_binary_junk(ctx):
    return _ledger_chaos(ctx, "binary", expected_valid=3)


@scenario("executor_worker_death", tier="storm",
          description="a worker hard-killed mid-map is recovered by the "
                      "chunk retry path; results stay bit-identical",
          expect=expect_clean(lambda obs: obs["results"] == obs["expected"]))
def _executor_worker_death(ctx):
    from repro.runtime import get_executor

    items = list(range(8))
    assassin = ctx.chaos.worker_assassin(_square, kill_items={3, 5})
    results = get_executor(2, "process").map(assassin, items, chunksize=2)
    return {"results": results, "expected": [_square(i) for i in items]}


def _check_stalled_worker(obs):
    if obs["results"] != obs["expected"]:
        return "stalled fan-out returned wrong results"
    if obs["completed"] != len(obs["expected"]):
        return (f"heartbeats lost tasks: {obs['completed']} completed "
                f"of {len(obs['expected'])}")
    if obs["stalls"] < 1:
        return "the wedged worker never tripped the stall detector"
    return True


@scenario("executor_stalled_worker", tier="storm",
          description="a worker wedged mid-map trips the heartbeat "
                      "stall detector while the fan-out still returns "
                      "correct, complete results",
          expect=expect_clean(_check_stalled_worker))
def _executor_stalled_worker(ctx):
    from repro.observe import health
    from repro.runtime import get_executor

    items = list(range(8))
    # The watchdog (interval stall_timeout/4) must flag the wedged
    # worker *while* the map is still running -- that is the whole
    # point of live heartbeats over post-hoc span analysis.
    health.enable(stall_timeout_s=0.2, watchdog=True)
    try:
        results = get_executor(2, "thread").map(
            _stall_on_three, items, chunksize=1)
        summary = health.summary()
    finally:
        health.disable()
    return {
        "results": results,
        "expected": [_square(i) for i in items],
        "stalls": len(summary["stall_events"]),
        "completed": summary["tasks_completed"],
    }


@scenario("solver_budget_exhaustion", tier="storm",
          description="a 1-iteration budget surfaces SolverBudgetError, "
                      "not a hang or a raw traceback",
          expect=expect_error(SolverBudgetError))
def _solver_budget_exhaustion(ctx):
    from repro.spice import dc_operating_point
    from repro.spice.solver import SolverBudget

    dc_operating_point(_inverter(), budget=SolverBudget(max_iterations=1))


@scenario("solver_nonconvergence", tier="storm",
          description="a hopeless solve walks the whole escalation "
                      "ladder and raises a typed ConvergenceError",
          expect=expect_error(SolverError))
def _solver_nonconvergence(ctx):
    from repro.spice import dc_operating_point

    with ctx.chaos.hostile_solver(max_iterations=1):
        dc_operating_point(_inverter())


@scenario("grid_eviction_storm", tier="storm",
          description="hostile solver during batched-grid "
                      "characterization: evictions degrade to the "
                      "per-point retry ladder -- notes recorded, zero "
                      "empty tables",
          expect=expect_clean(lambda obs: obs["notes_recorded"]
                              and obs["no_empty_tables"]))
def _grid_eviction_storm(ctx):
    import numpy as np

    from repro.cells import (
        CellCharacterizer,
        CharacterizationConfig,
        TechModels,
        cell_by_name,
    )
    from repro.device import golden_nfet, golden_pfet

    cfg = CharacterizationConfig(
        engine="spice",
        slew_index=(8e-12, 32e-12),
        load_index=(1e-15, 4e-15),
    )
    ch = CellCharacterizer(TechModels(golden_nfet(), golden_pfet()), cfg)
    cell = cell_by_name("NAND2_X1")
    notes: list[str] = []
    # A 1-iteration Newton cap makes every solve hopeless: the batch
    # evicts all replicas, the per-point ladder fails both rungs, and
    # every table point must land on its analytic estimate -- with the
    # degradation recorded in notes and no table left empty.
    with ctx.chaos.hostile_solver(max_iterations=1):
        arc = ch._characterize_arc_spice(cell, "A", notes)
    tables = [arc.cell_rise, arc.cell_fall,
              arc.rise_transition, arc.fall_transition]
    return {
        "notes_recorded": bool(notes),
        "no_empty_tables": all(
            np.isfinite(t.values).all() and (t.values > 0).all()
            for t in tables
        ),
    }


@scenario("seu_storm_during_characterization", tier="storm",
          description="an SEU campaign hammers the ISS while a library "
                      "characterizes; both finish intact",
          expect=expect_clean(lambda obs: obs["coverage_complete"]
                              and obs["outcomes_accounted"]))
def _seu_storm_during_characterization(ctx):
    from concurrent.futures import ThreadPoolExecutor

    import numpy as np

    from repro.cells import (
        CharacterizationConfig,
        TechModels,
        build_library,
    )
    from repro.cells.catalog import full_catalog
    from repro.device import golden_nfet, golden_pfet
    from repro.reliability import CampaignConfig, qec_workload, run_campaign

    def storm():
        rng = np.random.default_rng(ctx.seed)
        bits = rng.integers(0, 2, 45)
        return run_campaign(
            qec_workload(bits, distance=3),
            CampaignConfig(n_injections=10, seed=ctx.seed),
        )

    catalog = [c for c in full_catalog()
               if c.name in ("INV_X1", "NAND2_X1")]
    models = TechModels(golden_nfet(), golden_pfet())
    with ThreadPoolExecutor(max_workers=1) as pool:
        campaign_future = pool.submit(storm)
        library = build_library(
            models, CharacterizationConfig(temperature_k=300.0),
            catalog=catalog, name="under_fire",
        )
        campaign = campaign_future.result(timeout=300)
    return {
        "coverage_complete": library.coverage is None
        or not library.coverage.quarantined,
        "outcomes_accounted": sum(campaign.counts().values()) == 10,
    }


# ====================================================================== #
# endurance -- the storm, looped, with seeded interleaving
# ====================================================================== #
@scenario("cache_churn", tier="endurance",
          description="20 rounds of put/corrupt/get: never garbage, "
                      "membership always consistent with readability",
          expect=expect_clean(lambda obs: obs["violations"] == []))
def _cache_churn(ctx):
    from repro.runtime import stable_digest

    violations = []
    for round_no in range(20):
        key = stable_digest({"round": round_no})
        value = {"round": round_no, "blob": list(range(32))}
        ctx.cache.put(key, value)
        attack = ctx.rng.choice(["truncate", "bitflip", "none"])
        if attack == "truncate":
            chaos = ctx.chaos.truncated_cache_entry(ctx.cache, key)
        elif attack == "bitflip":
            chaos = ctx.chaos.bitflipped_cache_entry(ctx.cache, key)
        else:
            chaos = None
        if chaos is None:
            got = ctx.cache.get(key, None)
            if got != value:
                violations.append(f"round {round_no}: clean entry lost")
            continue
        with chaos:
            got = ctx.cache.get(key, None)
            if got is not None and got != value:
                violations.append(f"round {round_no}: served garbage")
            if (key in ctx.cache) != (ctx.cache.get(key, None) is not None):
                violations.append(
                    f"round {round_no}: membership != readability")
    return {"violations": violations}


@scenario("ledger_growth_under_corruption", tier="endurance",
          description="append/corrupt cycles: reads never raise, the "
                      "valid-record count never regresses",
          expect=expect_clean(lambda obs: obs["violations"] == []))
def _ledger_growth_under_corruption(ctx):
    violations = []
    appended = 0
    for round_no in range(12):
        ctx.ledger.append(_record(round_no))
        appended += 1
        if round_no % 3 == 2:
            mode = ctx.rng.choice(["garbage", "binary", "midline"])
            with ctx.chaos.corrupted_ledger(ctx.ledger, mode=mode):
                try:
                    ctx.ledger.records()
                except Exception as exc:  # noqa: BLE001
                    violations.append(
                        f"round {round_no}: read raised "
                        f"{type(exc).__name__} under {mode}")
        clean = len(ctx.ledger.records())
        if clean != appended:
            violations.append(
                f"round {round_no}: {clean} records after chaos lifted, "
                f"expected {appended}")
    return {"violations": violations}


@scenario("solver_budget_sweep", tier="endurance",
          description="repeated solves under random budgets: every "
                      "outcome is a solution or a typed SolverError",
          expect=expect_clean(lambda obs: obs["violations"] == []
                              and obs["solved"] > 0))
def _solver_budget_sweep(ctx):
    from repro.errors import SolverError
    from repro.spice import dc_operating_point
    from repro.spice.solver import SolverBudget

    violations = []
    solved = 0
    for round_no in range(8):
        cap = ctx.rng.choice([1, 2, 5, None])
        budget = (None if cap is None
                  else SolverBudget(max_iterations=cap))
        try:
            op = dc_operating_point(_inverter(), budget=budget)
        except SolverError:
            continue
        except Exception as exc:  # noqa: BLE001
            violations.append(
                f"round {round_no} (cap={cap}): untyped "
                f"{type(exc).__name__}: {exc}")
            continue
        solved += 1
        if not 0.0 <= op["out"] <= 0.7:
            violations.append(
                f"round {round_no}: out={op['out']} outside the rails")
    return {"violations": violations, "solved": solved}


@scenario("executor_retry_storm", tier="endurance",
          description="flaky items fail once then succeed under "
                      "retries; with retries=0 the typed ExecutorError "
                      "surfaces",
          expect=expect_clean(lambda obs: obs["recovered"]
                              and obs["typed_failure"]))
def _executor_retry_storm(ctx):
    from repro.runtime import ExecutorError, get_executor

    failures: set[int] = set()

    def flaky(item):
        if item % 3 == 0 and item not in failures:
            failures.add(item)
            raise OSError(f"transient fault on {item}")
        return item * 2

    ex = get_executor(1)
    results = ex.map(flaky, range(9), retries=1)
    recovered = results == [i * 2 for i in range(9)]
    failures.clear()
    try:
        ex.map(flaky, range(9), retries=0)
        typed_failure = False
    except ExecutorError:
        typed_failure = True
    return {"recovered": recovered, "typed_failure": typed_failure}


# ---------------------------------------------------------------------- #
# Serving-layer storms (repro.serve): the classification service under
# request floods and hostile clients.
# ---------------------------------------------------------------------- #
def _storm_registry(slow_s: float = 0.0):
    """A tiny warm registry (+ untouched reference model).

    ``slow_s`` > 0 throttles the served model's predict so a request
    flood reliably overruns a small admission queue; the reference
    stays fast for computing expected labels.
    """
    import time as _time

    import numpy as np

    from repro.classify import get_classifier
    from repro.serve import ModelRegistry

    centers = np.array([[[-1.0, 0.0], [1.0, 0.0]],
                        [[0.0, -1.0], [0.0, 1.0]]])
    model = get_classifier("knn").from_centers(centers)
    reference = get_classifier("knn").from_centers(centers)
    if slow_s:
        base = model.predict

        def slow_predict(iq, qubit=None):
            _time.sleep(slow_s)
            return base(iq, qubit=qubit)

        model.predict = slow_predict
    return ModelRegistry({"knn": model}), reference


def _check_request_storm(obs):
    if obs["wrong_labels"]:
        return (f"{obs['wrong_labels']} served label(s) differed from "
                f"direct predict")
    if obs["untyped_errors"]:
        return (f"{obs['untyped_errors']} failure(s) were not the typed "
                f"ServeOverloadError: {obs['error_types']}")
    if not obs["rejected"]:
        return "the flood never tripped the 429 back-pressure path"
    if obs["rejected_counter"] < obs["rejected"]:
        return (f"serve.rejected counter ({obs['rejected_counter']}) "
                f"missed observed 429s ({obs['rejected']})")
    if not obs["recovered"]:
        return "a post-storm request failed: the server did not recover"
    return True


@scenario("serve_request_storm", tier="storm",
          description="a concurrent request flood against a tiny "
                      "admission queue: immediate typed 429s, zero "
                      "wrong labels, full recovery after the flood",
          expect=expect_clean(_check_request_storm))
def _serve_request_storm(ctx):
    import threading

    import numpy as np

    from repro.errors import ServeOverloadError
    from repro.serve import ServeClient, ServeConfig, ServerThread

    registry, reference = _storm_registry(slow_s=0.05)
    config = ServeConfig(max_queue=2, batch_window_ms=1.0,
                         default_deadline_ms=10_000.0)
    rng = np.random.default_rng(ctx.seed)
    points = rng.uniform(-1.5, 1.5, (40, 2))
    expected = reference.predict(points)

    served = 0
    rejected = 0
    wrong = 0
    error_types: list[str] = []
    lock = threading.Lock()
    with ServerThread(registry, config) as handle:
        def flood():
            nonlocal served, rejected, wrong
            try:
                with ServeClient(handle.host, handle.port) as client:
                    labels = client.classify("knn", points)
            except ServeOverloadError:
                with lock:
                    rejected += 1
                return
            except Exception as exc:  # noqa: BLE001 - graded below
                with lock:
                    error_types.append(type(exc).__name__)
                return
            with lock:
                served += 1
                if not np.array_equal(labels, expected):
                    wrong += 1

        threads = [threading.Thread(target=flood) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # The flood is over; one clean request must succeed.
        with ServeClient(handle.host, handle.port) as client:
            recovered = np.array_equal(
                client.classify("knn", points), expected)
        stats = dict(handle.server.stats)
    return {
        "served": served,
        "rejected": rejected,
        "wrong_labels": wrong,
        "untyped_errors": len(error_types),
        "error_types": error_types,
        "rejected_counter": stats["serve.rejected"],
        "recovered": recovered,
    }


def _check_slow_client(obs):
    if not obs["disconnects"]:
        return ("the stalled reader was never evicted "
                "(serve.slow_client_disconnects stayed 0)")
    if not obs["healthy_ok"]:
        return ("a healthy client got wrong labels (or none) while the "
                "stalled one was being evicted")
    return True


@scenario("serve_slow_client", tier="storm",
          description="a client that floods requests but never reads "
                      "responses is evicted by the write-drain timeout "
                      "while healthy clients keep getting exact labels",
          expect=expect_clean(_check_slow_client))
def _serve_slow_client(ctx):
    import socket as socketlib
    import time as _time

    import numpy as np

    from repro.serve import ServeClient, ServeConfig, ServerThread
    from repro.serve.protocol import encode_request

    registry, reference = _storm_registry()
    config = ServeConfig(batch_window_ms=1.0, write_timeout_s=0.3,
                         sndbuf_bytes=8192, max_queue=256,
                         default_deadline_ms=30_000.0)
    rng = np.random.default_rng(ctx.seed ^ 0xC11E)
    points = rng.uniform(-1.5, 1.5, (1000, 2))
    with ServerThread(registry, config) as handle:
        stalled = socketlib.socket()
        stalled.setsockopt(
            socketlib.SOL_SOCKET, socketlib.SO_RCVBUF, 4096)
        stalled.connect((handle.host, handle.port))
        payload = b"".join(
            encode_request(i, "knn", points) for i in range(200))
        try:
            # Never read a byte back: the responses must jam the
            # (deliberately tiny) send path until the drain times out.
            stalled.sendall(payload)
        except OSError:
            pass  # eviction mid-send resets the socket: expected
        deadline = _time.monotonic() + 10.0
        while (_time.monotonic() < deadline
               and not handle.server.stats[
                   "serve.slow_client_disconnects"]):
            _time.sleep(0.05)
        with ServeClient(handle.host, handle.port) as client:
            healthy_ok = np.array_equal(
                client.classify("knn", points[:50]),
                reference.predict(points[:50]))
        stats = dict(handle.server.stats)
        stalled.close()
    return {
        "disconnects": stats["serve.slow_client_disconnects"],
        "healthy_ok": healthy_ok,
        "served": stats["serve.requests"],
    }


def _check_stats_scrape_storm(obs):
    if obs["scrapes"] < obs["expected_scrapes"]:
        return (f"only {obs['scrapes']} of {obs['expected_scrapes']} "
                f"stats scrapes were answered during the flood")
    if obs["slow_scrapes"]:
        return (f"{obs['slow_scrapes']} scrape(s) exceeded the "
                f"{obs['scrape_budget_s']:g} s responsiveness budget")
    if obs["torn"]:
        return (f"{len(obs['torn'])} internally inconsistent "
                f"snapshot(s), e.g. {obs['torn'][0]}")
    if obs["non_monotonic"]:
        return (f"cumulative counters went backwards between scrapes: "
                f"{obs['non_monotonic'][0]}")
    if not obs["flooded"]:
        return "the flood never actually loaded the server"
    if not obs["recovered"]:
        return "a post-storm classify failed: the server did not recover"
    return True


@scenario("serve_stats_scrape_storm", tier="storm",
          description="in-band {'op': 'stats'} scrapes during a request "
                      "flood: every scrape answers fast (admission "
                      "cannot reject it), snapshots are internally "
                      "consistent (no torn reads), counters stay "
                      "monotonic, traffic is undisturbed",
          expect=expect_clean(_check_stats_scrape_storm))
def _serve_stats_scrape_storm(ctx):
    import threading
    import time as _time

    import numpy as np

    from repro.errors import ServeError
    from repro.serve import ServeClient, ServeConfig, ServerThread

    registry, reference = _storm_registry(slow_s=0.01)
    config = ServeConfig(max_queue=4, batch_window_ms=1.0,
                         default_deadline_ms=5_000.0)
    rng = np.random.default_rng(ctx.seed ^ 0x57A7)
    points = rng.uniform(-1.5, 1.5, (200, 2))
    expected = reference.predict(points)
    scrape_budget_s = 1.0
    n_scrapes = 20

    with ServerThread(registry, config) as handle:
        stop = threading.Event()

        def flood():
            with ServeClient(handle.host, handle.port) as client:
                while not stop.is_set():
                    try:
                        client.classify("knn", points)
                    except ServeError:
                        continue  # 429/408 are the flood working

        threads = [threading.Thread(target=flood, daemon=True)
                   for _ in range(8)]
        for t in threads:
            t.start()

        snapshots = []
        durations = []
        with ServeClient(handle.host, handle.port) as scraper:
            for _ in range(n_scrapes):
                t0 = _time.perf_counter()
                snapshots.append(scraper.stats())
                durations.append(_time.perf_counter() - t0)
                _time.sleep(0.02)
        stop.set()
        for t in threads:
            t.join(timeout=15)

        with ServeClient(handle.host, handle.port) as client:
            recovered = np.array_equal(
                client.classify("knn", points), expected)

    # Consistency: the SLO section of each snapshot must be computed
    # from the very counters the same snapshot carries -- a torn read
    # (counters advancing between the two) breaks this identity.
    torn = []
    for i, snap in enumerate(snapshots):
        c = snap["counters"]
        slo_total = snap["slo"]["total"]
        expected_total = (c["serve.requests"] + c["serve.rejected"]
                          + c["serve.deadline_expired"]
                          + c["serve.internal_errors"])
        if slo_total != expected_total:
            torn.append(f"scrape {i}: slo.total {slo_total} != "
                        f"counter sum {expected_total}")
        if snap["inflight"] > snap["max_queue"]:
            torn.append(f"scrape {i}: inflight {snap['inflight']} "
                        f"over max_queue {snap['max_queue']}")
    non_monotonic = []
    for prev, cur in zip(snapshots, snapshots[1:]):
        for key, value in prev["counters"].items():
            if cur["counters"][key] < value:
                non_monotonic.append(
                    f"{key}: {value} -> {cur['counters'][key]}")
    final = snapshots[-1]["counters"]
    return {
        "scrapes": len(snapshots),
        "expected_scrapes": n_scrapes,
        "slow_scrapes": sum(d > scrape_budget_s for d in durations),
        "scrape_budget_s": scrape_budget_s,
        "max_scrape_s": round(max(durations), 4),
        "torn": torn,
        "non_monotonic": non_monotonic,
        "flooded": (final["serve.requests"] + final["serve.rejected"]
                    + final["serve.deadline_expired"]) > 0,
        "recovered": recovered,
    }
