"""Tier reports: aggregate graded scenarios, render, ledger them.

A :class:`TierReport` is the assault analogue of a
:class:`~repro.provenance.fidelity.FidelityReport`: one verdict per
scenario, combined with the same ``worst()`` semantics (any FAIL fails
the tier, any WARN without a FAIL warns it).  Reports render as text
for humans and JSON for CI artifacts, and land in the run ledger as
``kind="assault"`` records so ``repro runs``/``repro report`` history
covers hostile campaigns alongside experiments and benches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.assault.scenarios import ScenarioResult
from repro.errors import ConfigError
from repro.provenance.fidelity import FAIL, PASS, WARN, worst

__all__ = ["TierReport", "record_tier_report", "render_reports"]

_GLYPH = {PASS: "+", WARN: "~", FAIL: "!"}


@dataclass(frozen=True)
class TierReport:
    """All graded scenario results for one tier of one campaign."""

    tier: str
    results: tuple[ScenarioResult, ...] = ()
    wall_s: float = 0.0
    seed: int = 2023

    @property
    def verdict(self) -> str:
        """Tier verdict: the worst scenario verdict (PASS if empty)."""
        return worst(r.status for r in self.results)

    def counts(self) -> dict[str, int]:
        out = {PASS: 0, WARN: 0, FAIL: 0}
        for r in self.results:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def failures(self) -> list[ScenarioResult]:
        return [r for r in self.results if r.status == FAIL]

    # -------------------------------------------------------------- #
    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "verdict": self.verdict,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "counts": self.counts(),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TierReport":
        return cls(
            tier=data.get("tier", "?"),
            results=tuple(ScenarioResult.from_dict(r)
                          for r in data.get("results", [])),
            wall_s=float(data.get("wall_s", 0.0)),
            seed=int(data.get("seed", 2023)),
        )

    # -------------------------------------------------------------- #
    def summary_lines(self) -> list[str]:
        c = self.counts()
        lines = [
            f"tier {self.tier}: {self.verdict}  "
            f"({c[PASS]} pass / {c[WARN]} warn / {c[FAIL]} fail, "
            f"{self.wall_s:.2f}s, seed={self.seed})"
        ]
        for r in self.results:
            mark = _GLYPH.get(r.status, "?")
            line = f"  [{mark}] {r.name:<34} {r.status:<4} {r.wall_s:7.3f}s"
            if r.note and r.status != PASS:
                line += f"  {r.note}"
            lines.append(line)
        return lines


def render_reports(reports: list[TierReport], fmt: str = "text") -> str:
    """Render a campaign's tier reports as ``text`` or ``json``."""
    if fmt == "json":
        campaign = worst(r.verdict for r in reports)
        return json.dumps({"verdict": campaign,
                           "tiers": [r.to_dict() for r in reports]},
                          indent=2, sort_keys=True)
    if fmt != "text":
        raise ConfigError(f"unknown report format {fmt!r}; "
                          "pick 'text' or 'json'", field="format")
    lines: list[str] = []
    for report in reports:
        lines.extend(report.summary_lines())
    campaign = worst(r.verdict for r in reports)
    total = sum(len(r.results) for r in reports)
    lines.append(f"assault campaign: {campaign} "
                 f"({total} scenarios over {len(reports)} tier(s))")
    return "\n".join(lines)


def record_tier_report(report: TierReport, ledger, start_ts: str = ""):
    """Append one tier's report to the run ledger as an assault record.

    The fidelity payload mirrors the shape ``FidelityReport.to_dict``
    produces (verdict + per-check statuses), so ledger consumers that
    understand fidelity verdicts can read assault records unchanged;
    ``build_report`` ignores the ``assault`` kind entirely.
    """
    from repro.provenance import RunRecord

    c = report.counts()
    record = RunRecord(
        experiment=f"assault_{report.tier}",
        kind="assault",
        start_ts=start_ts,
        wall_s=report.wall_s,
        metrics={
            "scenarios": float(len(report.results)),
            "passed": float(c[PASS]),
            "warned": float(c[WARN]),
            "failed": float(c[FAIL]),
            "seed": float(report.seed),
        },
        fidelity={
            "experiment": f"assault_{report.tier}",
            "verdict": report.verdict,
            "checks": [
                {"name": r.name, "status": r.status, "note": r.note}
                for r in report.results
            ],
        },
    )
    ledger.append(record)
    return record
