"""Scenario-tier assault harness: chaos injection for the repro stack.

Where :mod:`repro.reliability` injects faults into the *simulated*
hardware, this package injects faults into the *reproduction
infrastructure itself* -- the result cache, the run ledger, the
executor's worker pool, the SPICE solver -- and grades how the stack
degrades.  Three layers:

* :mod:`repro.assault.chaos` -- seeded, revertible fault injectors
  (:class:`ChaosMonkey`);
* :mod:`repro.assault.corpus` -- the frozen scenario corpus in four
  tiers (``smoke`` -> ``edge`` -> ``storm`` -> ``endurance``), each
  scenario declaring its expected outcome: a typed
  :class:`~repro.errors.ReproError` rejection or graceful degradation,
  never a raw traceback and never a silent wrong answer;
* :mod:`repro.assault.runner` / :mod:`repro.assault.report` -- the
  campaign runner and PASS/WARN/FAIL tier reports that land in the run
  ledger and drive the ``repro assault`` CLI's ``--strict`` exit code.
"""

from repro.assault.chaos import ChaosMonkey, WorkerAssassin
from repro.assault.corpus import TIERS, all_scenarios, scenario, scenarios_for
from repro.assault.report import TierReport, record_tier_report, render_reports
from repro.assault.runner import AssaultConfig, run_assault, run_scenario
from repro.assault.scenarios import (
    Expectation,
    ScenarioContext,
    ScenarioResult,
    ScenarioSpec,
    expect_clean,
    expect_error,
    grade,
)

__all__ = [
    "TIERS",
    "AssaultConfig",
    "ChaosMonkey",
    "Expectation",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioSpec",
    "TierReport",
    "WorkerAssassin",
    "all_scenarios",
    "expect_clean",
    "expect_error",
    "grade",
    "record_tier_report",
    "render_reports",
    "run_assault",
    "run_scenario",
    "scenario",
    "scenarios_for",
]
