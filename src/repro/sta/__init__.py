"""Static timing analysis (PrimeTime substitute) -- see Table 1."""

from repro.sta.analysis import PathPoint, TimingReport, analyze
from repro.sta.hold import HoldReport, analyze_hold

__all__ = ["HoldReport", "PathPoint", "TimingReport", "analyze",
           "analyze_hold"]
