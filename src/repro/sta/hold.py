"""Min-delay (hold) analysis.

Table 1's discussion: "the switching delay of the transistors is similar,
thus the propagation delay of the cells and, thus, the hold times of the
circuit are not impacted" at 10 K.  This module checks that claim the way
a signoff tool would: propagate *earliest* arrivals through the netlist
and verify every capture flop sees its data later than its hold window.

Same-edge check: hold slack = min data arrival - hold time (ideal clock,
zero skew, like the max analysis in :mod:`repro.sta.analysis`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sta.analysis import CLOCK_SLEW, INPUT_SLEW, _net_load
from repro.synth.netlist import GateNetlist
from repro.synth.placement import Placement

__all__ = ["HoldReport", "analyze_hold"]


@dataclass
class HoldReport:
    """Min-path results for one corner."""

    netlist_name: str
    temperature_k: float
    worst_hold_slack: float
    worst_endpoint: str
    endpoint_slacks: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no endpoint violates its hold window."""
        return self.worst_hold_slack >= 0.0


def analyze_hold(
    netlist: GateNetlist,
    library,
    placement: Placement | None = None,
    input_slew: float = INPUT_SLEW,
    input_delay: float = 25e-12,
) -> HoldReport:
    """Propagate earliest arrivals; report the worst hold slack.

    ``input_delay`` models the clock-to-Q of whatever external register
    launches the primary inputs (signoff flows constrain inputs the same
    way); set it to 0 to treat inputs as arriving exactly on the edge.
    """
    # (net, transition) -> earliest arrival, with its slew.
    state: dict[tuple[str, str], tuple[float, float]] = {}

    def relax(key, arrival, slew) -> None:
        if key not in state or arrival < state[key][0]:
            state[key] = (arrival, slew)

    for net in netlist.inputs:
        for tr in ("rise", "fall"):
            relax((net, tr), input_delay, input_slew)

    seq = netlist.sequential_gates(library)
    for gate in seq:
        cell = library[gate.cell]
        load = _net_load(netlist, gate.output, library, placement)
        arc = cell.arc_from(cell.clock_pin)
        for tr in ("rise", "fall"):
            relax(
                (gate.output, tr),
                arc.delay(tr, CLOCK_SLEW, load),
                arc.output_slew(tr, CLOCK_SLEW, load),
            )
    for macro in netlist.macros.values():
        for net in macro.outputs:
            for tr in ("rise", "fall"):
                relax((net, tr), macro.clk_to_out, input_slew)

    for gate in netlist.topological_gates(library):
        cell = library[gate.cell]
        load = _net_load(netlist, gate.output, library, placement)
        for pin, net in gate.pins.items():
            try:
                arc = cell.arc_from(pin)
            except KeyError:
                continue
            for in_tr in ("rise", "fall"):
                key = (net, in_tr)
                if key not in state:
                    continue
                arrival, slew = state[key]
                if arc.sense == "positive_unate":
                    out_trs = [in_tr]
                elif arc.sense == "negative_unate":
                    out_trs = ["fall" if in_tr == "rise" else "rise"]
                else:
                    out_trs = ["rise", "fall"]
                for out_tr in out_trs:
                    relax(
                        (gate.output, out_tr),
                        arrival + arc.delay(out_tr, slew, load),
                        arc.output_slew(out_tr, slew, load),
                    )

    slacks: dict[str, float] = {}
    for gate in seq:
        cell = library[gate.cell]
        d_net = gate.pins.get(cell.data_pin)
        if not d_net:
            continue
        arrivals = [
            state[(d_net, tr)][0]
            for tr in ("rise", "fall")
            if (d_net, tr) in state
        ]
        if not arrivals:
            continue
        slacks[f"{gate.name}/{cell.data_pin}"] = min(arrivals) - cell.hold_time

    if not slacks:
        raise ValueError("design has no hold endpoints")
    worst = min(slacks, key=slacks.get)
    return HoldReport(
        netlist_name=netlist.name,
        temperature_k=library.temperature_k,
        worst_hold_slack=slacks[worst],
        worst_endpoint=worst,
        endpoint_slacks=slacks,
    )
