"""Graph-based static timing analysis over NLDM libraries.

The PrimeTime substitute: propagates (arrival, slew) pairs per transition
through the mapped netlist in topological order, handles unateness, prices
net loads from pin capacitances plus placed wire length, and reports the
critical path, the minimum clock period, and per-endpoint slack --
the quantities behind the paper's Table 1.

Start points: flop Q pins (clock-to-Q from the library), macro data
outputs (scaled access time), primary inputs.  Endpoints: flop D pins
(setup from the library), macro data inputs, primary outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.synth.netlist import GateNetlist
from repro.synth.placement import Placement

__all__ = ["TimingReport", "PathPoint", "analyze"]

#: Default primary-input slew (s).
INPUT_SLEW = 10e-12

#: Slew assumed at flop clock pins (ideal clock tree).
CLOCK_SLEW = 8e-12


@dataclass(frozen=True)
class PathPoint:
    """One hop on a timing path."""

    net: str
    transition: str
    arrival: float
    gate: str
    cell: str


@dataclass
class TimingReport:
    """STA results for one corner."""

    netlist_name: str
    temperature_k: float
    critical_path_delay: float
    critical_endpoint: str
    path: list[PathPoint] = field(default_factory=list)
    endpoint_arrivals: dict[str, float] = field(default_factory=dict)

    @property
    def fmax_hz(self) -> float:
        """Maximum clock frequency implied by the critical path."""
        return 1.0 / self.critical_path_delay

    def slack(self, clock_period: float) -> float:
        """Worst setup slack at a given clock period."""
        return clock_period - self.critical_path_delay

    def worst_endpoints(self, n: int = 5) -> list[tuple[str, float]]:
        """The n endpoints with the largest arrival+setup."""
        ranked = sorted(
            self.endpoint_arrivals.items(), key=lambda kv: -kv[1]
        )
        return ranked[:n]


def _net_load(netlist, net, library, placement) -> float:
    total = placement.net_wire_cap(net) if placement else 0.0
    for inst, pin in netlist.loads_of(net):
        if inst in netlist.gates:
            total += library[netlist.gates[inst].cell].pin_capacitance(pin)
        else:
            total += 1.0e-15
    return total


def analyze(
    netlist: GateNetlist,
    library,
    placement: Placement | None = None,
    macro_delay_scale: float = 1.0,
    input_slew: float = INPUT_SLEW,
) -> TimingReport:
    """Run STA; returns the worst-path report.

    ``macro_delay_scale`` scales every macro's fixed timing numbers to the
    library corner (SRAM transistors slow down with the logic).
    """
    # (net, transition) -> (arrival, slew, predecessor key, via-gate)
    state: dict[tuple[str, str], tuple[float, float, tuple | None, str]] = {}

    def relax(key, arrival, slew, pred, gate) -> None:
        if key not in state or arrival > state[key][0]:
            state[key] = (arrival, slew, pred, gate)

    # Start points -------------------------------------------------------
    for net in netlist.inputs:
        for tr in ("rise", "fall"):
            relax((net, tr), 0.0, input_slew, None, "@input")

    seq = netlist.sequential_gates(library)
    for gate in seq:
        cell = library[gate.cell]
        load = _net_load(netlist, gate.output, library, placement)
        arc = cell.arc_from(cell.clock_pin)
        for tr in ("rise", "fall"):
            d = arc.delay(tr, CLOCK_SLEW, load)
            s = arc.output_slew(tr, CLOCK_SLEW, load)
            relax((gate.output, tr), d, s, None, gate.name)

    for macro in netlist.macros.values():
        for net in macro.outputs:
            for tr in ("rise", "fall"):
                relax(
                    (net, tr),
                    macro.clk_to_out * macro_delay_scale,
                    input_slew,
                    None,
                    macro.name,
                )

    # Propagation ---------------------------------------------------------
    # Per arc, every query that lands in the same NLDM table is batched
    # into one array-valued lookup (see NLDMTable.lookup): one
    # searchsorted per axis instead of one Python call per (in, out)
    # transition pair.  Relaxation order per key matches the scalar loop
    # this replaces, so results are identical bit for bit.
    for gate in netlist.topological_gates(library):
        cell = library[gate.cell]
        load = _net_load(netlist, gate.output, library, placement)
        for pin, net in gate.pins.items():
            try:
                arc = cell.arc_from(pin)
            except KeyError:
                continue
            queries: dict[str, list[tuple[tuple, float, float]]] = {
                "rise": [], "fall": []
            }
            for in_tr in ("rise", "fall"):
                key = (net, in_tr)
                if key not in state:
                    continue
                arrival, slew, _, _ = state[key]
                if arc.sense == "positive_unate":
                    out_trs = [in_tr]
                elif arc.sense == "negative_unate":
                    out_trs = ["fall" if in_tr == "rise" else "rise"]
                else:
                    out_trs = ["rise", "fall"]
                for out_tr in out_trs:
                    queries[out_tr].append((key, arrival, slew))
            for out_tr, items in queries.items():
                if not items:
                    continue
                slews = np.array([slew for _, _, slew in items])
                ds = arc.delay(out_tr, slews, load)
                ss = arc.output_slew(out_tr, slews, load)
                for (key, arrival, _), d, s in zip(items, ds, ss):
                    relax(
                        (gate.output, out_tr),
                        arrival + float(d),
                        float(s),
                        key,
                        gate.name,
                    )

    # Endpoints ------------------------------------------------------------
    endpoint_arrivals: dict[str, float] = {}

    def endpoint(net: str, label: str, setup: float) -> None:
        worst = None
        for tr in ("rise", "fall"):
            if (net, tr) in state:
                a = state[(net, tr)][0] + setup
                if worst is None or a > worst:
                    worst = a
        if worst is not None:
            endpoint_arrivals[label] = worst

    for gate in seq:
        cell = library[gate.cell]
        d_net = gate.pins.get(cell.data_pin)
        if d_net:
            endpoint(d_net, f"{gate.name}/{cell.data_pin}", cell.setup_time)
    for macro in netlist.macros.values():
        for net in macro.inputs:
            endpoint(
                net,
                f"{macro.name}/{net}",
                macro.input_setup * macro_delay_scale,
            )
    for net in netlist.outputs:
        endpoint(net, f"out:{net}", 0.0)

    if not endpoint_arrivals:
        raise ValueError("design has no timing endpoints")

    critical_endpoint = max(endpoint_arrivals, key=endpoint_arrivals.get)
    critical = endpoint_arrivals[critical_endpoint]

    # Path recovery ----------------------------------------------------------
    path: list[PathPoint] = []
    # The endpoint label maps back to a net; find its worst transition.
    end_net = (
        critical_endpoint.split("/")[0]
        if critical_endpoint.startswith("out:")
        else None
    )
    if critical_endpoint.startswith("out:"):
        end_net = critical_endpoint[4:]
    else:
        inst, pin = critical_endpoint.rsplit("/", 1)
        if inst in netlist.gates:
            end_net = netlist.gates[inst].pins.get(pin)
        else:
            end_net = pin
    if end_net is not None:
        best_key = None
        for tr in ("rise", "fall"):
            key = (end_net, tr)
            if key in state and (
                best_key is None or state[key][0] > state[best_key][0]
            ):
                best_key = key
        key = best_key
        while key is not None:
            arrival, _, pred, gate_name = state[key]
            cell_name = (
                netlist.gates[gate_name].cell
                if gate_name in netlist.gates
                else gate_name
            )
            path.append(
                PathPoint(
                    net=key[0],
                    transition=key[1],
                    arrival=arrival,
                    gate=gate_name,
                    cell=cell_name,
                )
            )
            key = pred
        path.reverse()

    return TimingReport(
        netlist_name=netlist.name,
        temperature_k=library.temperature_k,
        critical_path_delay=critical,
        critical_endpoint=critical_endpoint,
        path=path,
        endpoint_arrivals=endpoint_arrivals,
    )
