"""Power layer: activity-based dynamic + leakage analysis, SRAM macros.

The Cadence-Voltus substitute driving the paper's Fig. 6: workload-derived
switching activity, placed wire loads, short-circuit scaling with
temperature, SRAM hold leakage from the calibrated bitcell model.
"""

from repro.power.activity import (
    WorkloadActivity,
    activity_from_profile,
    activity_from_trace,
    uniform_activity,
)
from repro.power.analysis import (
    PowerReport,
    UncoreModel,
    analyze_power,
    short_circuit_factor,
)
from repro.power.sram import SRAMMacroPower, SRAMPowerModel

__all__ = [
    "PowerReport",
    "UncoreModel",
    "SRAMMacroPower",
    "SRAMPowerModel",
    "WorkloadActivity",
    "activity_from_profile",
    "activity_from_trace",
    "analyze_power",
    "short_circuit_factor",
    "uniform_activity",
]
