"""Switching-activity models for power analysis.

The paper stresses that "statistical switching activities do not reflect
the actual power consumption because, for simpler tasks ... only parts of
the SoC have to be engaged", and instead simulates the workloads on the
gate-level netlist.  We support both:

* :class:`WorkloadActivity` -- per-module toggle rates derived from an
  architectural simulation (the ISS reports how often the ALU, register
  file, caches etc. are engaged per cycle for the actual kNN/HDC/Dhrystone
  code);
* :func:`uniform_activity` -- the classic "20 % of all cells toggle per
  cycle" statistical assumption the paper argues against (kept for the
  comparison bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkloadActivity", "uniform_activity", "activity_from_profile",
           "activity_from_trace"]

#: Toggle rate of an actively computing module's internal nets
#: (toggles per net per cycle when the module is engaged).
ENGAGED_TOGGLE_RATE = 0.18


@dataclass
class WorkloadActivity:
    """Per-module switching activity plus memory access rates.

    ``module_activity`` maps netlist module tags to average toggles per
    net per cycle.  ``sram_reads_per_cycle`` / ``writes`` are word-access
    rates per macro kind.
    """

    name: str
    module_activity: dict[str, float] = field(default_factory=dict)
    sram_reads_per_cycle: dict[str, float] = field(default_factory=dict)
    sram_writes_per_cycle: dict[str, float] = field(default_factory=dict)

    def activity_of(self, module: str) -> float:
        """Toggle rate for a module tag (default: idle clock-gated 2 %)."""
        return self.module_activity.get(module, 0.02)

    def scaled(self, factor: float, name: str | None = None) -> "WorkloadActivity":
        """Uniformly scale all rates (duty-cycling experiments)."""
        return WorkloadActivity(
            name=name or f"{self.name}_x{factor:g}",
            module_activity={
                k: v * factor for k, v in self.module_activity.items()
            },
            sram_reads_per_cycle={
                k: v * factor for k, v in self.sram_reads_per_cycle.items()
            },
            sram_writes_per_cycle={
                k: v * factor for k, v in self.sram_writes_per_cycle.items()
            },
        )


def uniform_activity(alpha: float = 0.20) -> WorkloadActivity:
    """The statistical activity assumption (every module at ``alpha``)."""
    modules = [
        "ifu", "decode", "regfile", "alu", "mul", "l1d", "l1i", "l2",
        "wb", "buftree", "ctrl", "core",
    ]
    return WorkloadActivity(
        name=f"uniform_{alpha:g}",
        module_activity={m: alpha for m in modules},
        sram_reads_per_cycle={"l1i_data": 1.0, "l1d_data": 0.5,
                              "l1d_tags": 0.5, "l2_data": 0.1},
        sram_writes_per_cycle={"l1d_data": 0.2, "l2_data": 0.05},
    )


def activity_from_profile(name: str, profile: dict[str, float]) -> WorkloadActivity:
    """Build module activities from an ISS execution profile.

    ``profile`` carries per-cycle architectural event rates:

    * ``alu_per_cycle``, ``mul_per_cycle``, ``mem_per_cycle`` (loads +
      stores), ``branch_per_cycle``, ``regread_per_cycle``,
      ``regwrite_per_cycle``, ``fetch_per_cycle``,
      ``l1d_miss_per_cycle``, ``l1i_miss_per_cycle``.

    A module toggles at ``ENGAGED_TOGGLE_RATE`` scaled by how often the
    corresponding event fires.
    """
    alu = profile.get("alu_per_cycle", 0.0)
    mul = profile.get("mul_per_cycle", 0.0)
    mem = profile.get("mem_per_cycle", 0.0)
    fetch = profile.get("fetch_per_cycle", 0.0)
    rd = profile.get("regread_per_cycle", 0.0)
    wr = profile.get("regwrite_per_cycle", 0.0)
    l1d_miss = profile.get("l1d_miss_per_cycle", 0.0)
    l1i_miss = profile.get("l1i_miss_per_cycle", 0.0)

    r = ENGAGED_TOGGLE_RATE
    return WorkloadActivity(
        name=name,
        module_activity={
            "ifu": r * min(fetch, 1.0),
            "decode": r * min(fetch, 1.0),
            "regfile": r * min((rd + wr) / 3.0, 1.0) * 0.25,
            "alu": r * min(alu, 1.0),
            "mul": r * min(mul, 1.0),
            "l1d": r * min(mem, 1.0),
            "l1i": r * min(fetch, 1.0),
            "wb": r * min(wr, 1.0),
            "buftree": r * 0.5,
            "ctrl": r * min(fetch, 1.0),
            "core": r * 0.5,
        },
        sram_reads_per_cycle={
            "l1i_data": min(fetch, 1.0),
            "l1d_data": mem * 0.7,
            "l1d_tags": mem,
            "l2_data": (l1d_miss + l1i_miss) * 8.0,
        },
        sram_writes_per_cycle={
            "l1d_data": mem * 0.3,
            "l2_data": (l1d_miss + l1i_miss) * 8.0,
        },
    )


def activity_from_trace(
    name: str,
    netlist,
    trace,
    sram_reads_per_cycle: dict[str, float] | None = None,
    sram_writes_per_cycle: dict[str, float] | None = None,
) -> WorkloadActivity:
    """Per-module activity measured from a gate-level simulation trace.

    This is the paper's preferred method verbatim: "the two classification
    algorithms ... are simulated with the gate-level netlist.  The actual
    switching activity numbers are extracted from these simulations."

    ``trace`` is a :class:`repro.synth.simulate.ActivityTrace`; toggle
    counts are averaged per module tag so the power model sees measured
    rather than assumed activity.
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for gate in netlist.gates.values():
        totals[gate.module] = totals.get(gate.module, 0.0) + trace.activity(
            gate.output
        )
        counts[gate.module] = counts.get(gate.module, 0) + 1
    module_activity = {
        module: totals[module] / counts[module] for module in totals
    }
    return WorkloadActivity(
        name=name,
        module_activity=module_activity,
        sram_reads_per_cycle=dict(sram_reads_per_cycle or {}),
        sram_writes_per_cycle=dict(sram_writes_per_cycle or {}),
    )
