"""SRAM macro power model (the power the ASAP7 IP does not ship with).

The paper: "these IP cores only include the physical size and timing but
not their power consumption.  We add the missing power values based on our
previous work [24]" -- i.e., an SRAM cell + periphery model built on the
same calibrated transistor compact model.  This module is that model:

* **hold leakage** per bit from the bitcell's OFF devices.  The paper's
  arrays use *ultra-low-Vth* transistors at nominal supply ("operating at
  nominal supply voltage combined with ultra-low-Vth transistors results
  in such a high SRAM leakage"), modelled as a Vth offset and a raised
  source-drain tunneling floor relative to the logic devices;
* **read/write access energy** from bitline/wordline capacitance swings
  plus sense-amp and driver overheads;
* everything evaluated at any temperature through the compact model, so
  the 300 K -> 10 K collapse (193 mW -> sub-mW, Fig. 6) is a *prediction*
  of the device physics, not an input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.characterize import TechModels
from repro.device.finfet import FinFET

__all__ = ["SRAMPowerModel", "SRAMMacroPower"]

#: Ultra-low-Vth offset of the bitcell transistors relative to logic (V).
BITCELL_VTH_OFFSET = -0.064

#: Source-drain tunneling floor multiplier for the low-barrier bitcell
#: devices (short-channel + quantum tunneling, paper Section VI-B).
BITCELL_TUNNELING_FACTOR = 30.0

#: Leaking devices per 6T bitcell in a stable state (one OFF NMOS, one OFF
#: PMOS, two OFF access devices at reduced bias ~ 0.5 each).
_N_LEAK_N = 2.0
_N_LEAK_P = 1.0

#: Bitline capacitance per bitcell attached (F) and read swing (V).
_C_BITLINE_PER_CELL = 0.10e-15
_READ_SWING = 0.12

#: Wordline capacitance per cell on the row (F).
_C_WORDLINE_PER_CELL = 0.12e-15

#: Sense-amp + column mux + driver energy per accessed bit (J) at 0.7 V.
_E_PERIPHERY_PER_BIT = 2.2e-15


@dataclass(frozen=True)
class SRAMMacroPower:
    """Per-macro power figures at one corner."""

    bits: int
    leakage_w: float
    read_energy_j: float
    """Energy per 64-bit read access."""
    write_energy_j: float
    """Energy per 64-bit write access."""

    def access_power(self, reads_per_s: float, writes_per_s: float) -> float:
        """Dynamic power for a given access rate (W)."""
        return (
            self.read_energy_j * reads_per_s
            + self.write_energy_j * writes_per_s
        )


class SRAMPowerModel:
    """Evaluates SRAM power at a given temperature from device models."""

    def __init__(
        self,
        models: TechModels,
        temperature_k: float,
        vdd: float = 0.70,
        rows_per_bank: int = 256,
        word_bits: int = 64,
    ):
        self.temperature_k = temperature_k
        self.vdd = vdd
        self.rows_per_bank = rows_per_bank
        self.word_bits = word_bits

        bit_n = FinFET(
            models.nfet.copy(
                VTH0=models.nfet.VTH0 + BITCELL_VTH_OFFSET,
                ITUN=models.nfet.ITUN * BITCELL_TUNNELING_FACTOR,
            )
        )
        bit_p = FinFET(
            models.pfet.copy(
                VTH0=models.pfet.VTH0 + BITCELL_VTH_OFFSET,
                ITUN=models.pfet.ITUN * BITCELL_TUNNELING_FACTOR,
            )
        )
        self._ioff_n = bit_n.ioff(temperature_k, vdd)
        self._ioff_p = bit_p.ioff(temperature_k, vdd)

    # ------------------------------------------------------------------ #
    @property
    def leakage_per_bit(self) -> float:
        """Hold leakage power of one bitcell (W)."""
        current = _N_LEAK_N * self._ioff_n + _N_LEAK_P * self._ioff_p
        return current * self.vdd

    def _access_energy(self, write: bool) -> float:
        """Energy of one word access (J)."""
        c_bl = _C_BITLINE_PER_CELL * self.rows_per_bank
        swing = self.vdd if write else _READ_SWING
        bitline = self.word_bits * 2 * c_bl * swing * self.vdd
        wordline = (
            _C_WORDLINE_PER_CELL * self.word_bits * self.vdd * self.vdd
        )
        periphery = _E_PERIPHERY_PER_BIT * self.word_bits
        return bitline + wordline + periphery

    @property
    def read_energy(self) -> float:
        """Energy per word read (J)."""
        return self._access_energy(write=False)

    @property
    def write_energy(self) -> float:
        """Energy per word write (J)."""
        return self._access_energy(write=True)

    def macro(self, bits: int) -> SRAMMacroPower:
        """Power record for a macro of the given capacity."""
        if bits <= 0:
            raise ValueError("macro needs a positive bit count")
        return SRAMMacroPower(
            bits=bits,
            leakage_w=bits * self.leakage_per_bit,
            read_energy_j=self.read_energy,
            write_energy_j=self.write_energy,
        )

    def total_leakage(self, total_bits: int) -> float:
        """Hold leakage of the whole memory inventory (W)."""
        return total_bits * self.leakage_per_bit
